//! The serving runtime: bounded admission, per-request deadlines,
//! retry/re-route of faulted executions, and the array-health state
//! machine with golden-probe re-admission.
//!
//! Concurrency shape: one `Mutex<Inner>` holds the queue, the health
//! states and every counter; three condvars signal workers (`work_cv`),
//! blocked submitters (`space_cv`) and drainers (`idle_cv`). Each array
//! is one OS worker thread owning its [`ArrayBackend`]; executions and
//! probes run outside the lock.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bfp_arith::cancel::CancelToken;
use bfp_arith::error::ArithError;
use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_arith::{AddVariant, HwFp32Add, HwFp32Mul, MulVariant};
use bfp_faults::FleetLedger;
use bfp_platform::{ArrayHealth, ArrayServeStats, HealthEvent, ServeStats, System, SystemStats};
use bfp_telemetry::Tracer;

use crate::backend::{ArrayBackend, ArrayFaultPlan, SimArrayBackend, Telemetry};
use crate::config::{Backpressure, ServeConfig};
use crate::error::ServeError;
use crate::ticket::{AttemptRecord, RequestTimeline, ServeResponse, Ticket, TicketInner};

/// One GEMM request. The deadline budget (if any) starts counting at
/// admission.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Left operand.
    pub a: MatF32,
    /// Right operand.
    pub b: MatF32,
    /// Per-request deadline budget; `None` uses the config default.
    pub budget: Option<Duration>,
}

impl ServeRequest {
    /// A request with the config-default deadline.
    pub fn new(a: MatF32, b: MatF32) -> Self {
        ServeRequest { a, b, budget: None }
    }

    /// A request with an explicit deadline budget.
    pub fn with_budget(a: MatF32, b: MatF32, budget: Duration) -> Self {
        ServeRequest {
            a,
            b,
            budget: Some(budget),
        }
    }
}

struct Job {
    id: u64,
    a: MatF32,
    b: MatF32,
    deadline: Option<Instant>,
    cancel: CancelToken,
    submitted_at: Instant,
    first_dispatch: Option<Instant>,
    attempts: u32,
    attempt_log: Vec<AttemptRecord>,
    not_before: Instant,
    last_array: Option<usize>,
    ticket: Arc<TicketInner>,
}

struct ArrayState {
    health: ArrayHealth,
    strikes: u32,
    clean_run: u32,
    probe_due: Instant,
    probe_backoff: Duration,
    probe_streak: u32,
    stats: ArrayServeStats,
}

impl ArrayState {
    fn new(now: Instant) -> Self {
        ArrayState {
            health: ArrayHealth::Healthy,
            strikes: 0,
            clean_run: 0,
            probe_due: now,
            probe_backoff: Duration::ZERO,
            probe_streak: 0,
            stats: ArrayServeStats::new(),
        }
    }
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    admitted: u64,
    rejected: u64,
    shed: u64,
    completed: u64,
    failed: u64,
    deadline_missed: u64,
    retries: u64,
    degraded_executions: u64,
    queue_depth_high_water: usize,
}

struct Inner {
    queue: VecDeque<Job>,
    inflight: usize,
    shutdown: bool,
    next_id: u64,
    seq: u64,
    counters: Counters,
    arrays: Vec<ArrayState>,
    ledger: FleetLedger,
}

struct Shared {
    m: Mutex<Inner>,
    work_cv: Condvar,
    space_cv: Condvar,
    idle_cv: Condvar,
    cfg: ServeConfig,
    golden: Golden,
    /// Optional span tracer ([`Server::attach_tracer`]); absent, every
    /// emission site is a branch on an unset `OnceLock` and nothing else.
    tracer: OnceLock<Tracer>,
}

/// The attached tracer, if any.
fn tr(shared: &Shared) -> Option<&Tracer> {
    shared.tracer.get()
}

/// The golden self-test GEMM: small integer matrices on which bfp8 is
/// exact, with the expected bits cross-checked at startup against a
/// scalar softfp reference ([`HwFp32Mul`]/[`HwFp32Add`] exact variants).
struct Golden {
    a: MatF32,
    b: MatF32,
    expected: MatF32,
}

impl Golden {
    fn build() -> Self {
        let a = MatF32::from_fn(16, 16, |i, j| ((i * 7 + j * 5) % 3) as f32 - 1.0);
        let b = MatF32::from_fn(16, 16, |i, j| ((i * 3 + j * 11) % 3) as f32 - 1.0);
        let q = Quantizer::paper();
        let expected = q
            .quantize(&a)
            .expect("golden operand quantizes")
            .try_matmul(&q.quantize(&b).expect("golden operand quantizes"))
            .expect("golden GEMM executes");
        // Cross-check: on these integer inputs bfp8 must agree bit-for-
        // bit with the scalar softfp reference, so a probe pass really
        // certifies exact arithmetic, not just self-consistency.
        let mul = HwFp32Mul::new(MulVariant::Exact);
        let add = HwFp32Add::new(AddVariant::Exact48);
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc = add.add(acc, mul.mul(a.get(i, k), b.get(k, j)));
                }
                assert_eq!(
                    acc.to_bits(),
                    expected.get(i, j).to_bits(),
                    "golden GEMM must be bfp8-exact at ({i},{j})"
                );
            }
        }
        Golden { a, b, expected }
    }
}

/// The serving runtime. See the crate docs for the full lifecycle; in
/// short: [`Server::submit`] → [`Ticket::wait`], [`Server::drain`] for
/// graceful quiesce, [`Server::stats`] for the observability snapshot.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start a runtime over caller-supplied backends (one per array;
    /// `cfg.arrays` is overridden by `backends.len()`).
    ///
    /// # Panics
    /// Panics if `backends` is empty.
    pub fn new(mut cfg: ServeConfig, backends: Vec<Box<dyn ArrayBackend>>) -> Self {
        assert!(!backends.is_empty(), "a fleet needs at least one array");
        cfg.arrays = backends.len();
        let now = Instant::now();
        let arrays = backends.len();
        let shared = Arc::new(Shared {
            m: Mutex::new(Inner {
                queue: VecDeque::with_capacity(cfg.queue_capacity),
                inflight: 0,
                shutdown: false,
                next_id: 0,
                seq: 0,
                counters: Counters::default(),
                arrays: (0..arrays).map(|_| ArrayState::new(now)).collect(),
                ledger: FleetLedger::new(arrays),
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            cfg,
            golden: Golden::build(),
            tracer: OnceLock::new(),
        });
        let workers = backends
            .into_iter()
            .enumerate()
            .map(|(i, backend)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("bfp-serve-{i}"))
                    .spawn(move || worker_loop(shared, i, backend))
                    .expect("spawn worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// A fleet of [`SimArrayBackend`]s at the paper's calibrated
    /// operating point, its measured card throughput split evenly across
    /// `plans.len()` arrays.
    ///
    /// # Panics
    /// Panics if `plans` is empty.
    pub fn simulated(cfg: ServeConfig, plans: Vec<ArrayFaultPlan>) -> Self {
        let sys = System::paper();
        let per_array_gops = sys.measured_bfp_gops(64) / sys.cfg.total_arrays().max(1) as f64;
        let backends: Vec<Box<dyn ArrayBackend>> = plans
            .into_iter()
            .map(|p| Box::new(SimArrayBackend::new(per_array_gops, p)) as Box<dyn ArrayBackend>)
            .collect();
        Server::new(cfg, backends)
    }

    /// Attach a span [`Tracer`]: per-request lifecycle events (queue
    /// wait, executions, retries, faults, deadline misses, admission
    /// refusals) are recorded into it from here on. One tracer per
    /// server lifetime; returns `false` if one was already attached.
    pub fn attach_tracer(&self, tracer: Tracer) -> bool {
        self.shared.tracer.set(tracer).is_ok()
    }

    /// Offer a request. `Ok(Ticket)` means admitted; the typed errors
    /// are the admission-time refusals.
    pub fn submit(&self, req: ServeRequest) -> Result<Ticket, ServeError> {
        let cfg = &self.shared.cfg;
        let mut inner = self.shared.m.lock().unwrap();
        inner.counters.submitted += 1;
        if inner.shutdown {
            inner.counters.rejected += 1;
            if let Some(t) = tr(&self.shared) {
                t.instant("serve.reject", "serve");
            }
            return Err(ServeError::Shutdown);
        }

        if inner.queue.len() >= cfg.queue_capacity {
            match cfg.backpressure {
                Backpressure::Reject => {
                    inner.counters.rejected += 1;
                    if let Some(t) = tr(&self.shared) {
                        t.instant("serve.reject", "serve");
                    }
                    return Err(ServeError::QueueFull);
                }
                Backpressure::ShedOldest => {
                    if let Some(victim) = inner.queue.pop_front() {
                        victim.cancel.cancel();
                        inner.counters.shed += 1;
                        if let Some(t) = tr(&self.shared) {
                            t.instant_with("serve.shed", "serve", vec![("req", victim.id)]);
                        }
                        resolve(&mut inner, &victim.ticket, Err(ServeError::Shed));
                    }
                }
                Backpressure::Block { timeout } => {
                    let gate = Instant::now() + timeout;
                    while inner.queue.len() >= cfg.queue_capacity && !inner.shutdown {
                        let now = Instant::now();
                        if now >= gate {
                            inner.counters.rejected += 1;
                            if let Some(t) = tr(&self.shared) {
                                t.instant("serve.reject", "serve");
                            }
                            return Err(ServeError::AdmissionTimeout);
                        }
                        let (guard, _) = self
                            .shared
                            .space_cv
                            .wait_timeout(inner, gate - now)
                            .unwrap();
                        inner = guard;
                    }
                    if inner.shutdown {
                        inner.counters.rejected += 1;
                        if let Some(t) = tr(&self.shared) {
                            t.instant("serve.reject", "serve");
                        }
                        return Err(ServeError::Shutdown);
                    }
                }
            }
        }

        let now = Instant::now();
        let budget = req.budget.or(cfg.default_budget);
        let deadline = budget.map(|b| now + b);
        let cancel = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let id = inner.next_id;
        inner.next_id += 1;
        let ticket_inner = TicketInner::new();
        inner.queue.push_back(Job {
            id,
            a: req.a,
            b: req.b,
            deadline,
            cancel,
            submitted_at: now,
            first_dispatch: None,
            attempts: 0,
            attempt_log: Vec::new(),
            not_before: now,
            last_array: None,
            ticket: ticket_inner.clone(),
        });
        inner.counters.admitted += 1;
        let depth = inner.queue.len();
        if depth > inner.counters.queue_depth_high_water {
            inner.counters.queue_depth_high_water = depth;
        }
        if let Some(t) = tr(&self.shared) {
            t.counter("serve.queue_depth", "serve", depth as f64);
        }
        drop(inner);
        self.shared.work_cv.notify_all();
        Ok(Ticket::new(id, ticket_inner))
    }

    /// Block until every admitted request has resolved (the queue is
    /// empty and no execution is in flight). New submissions during the
    /// wait extend it.
    pub fn drain(&self) {
        let mut inner = self.shared.m.lock().unwrap();
        while !(inner.queue.is_empty() && inner.inflight == 0) {
            inner = self.shared.idle_cv.wait(inner).unwrap();
        }
    }

    /// Stop accepting work, fail everything still queued with
    /// [`ServeError::Shutdown`], let in-flight executions finish, and
    /// join the workers. Called automatically on drop.
    pub fn shutdown(&mut self) {
        {
            let mut inner = self.shared.m.lock().unwrap();
            if inner.shutdown && self.workers.is_empty() {
                return;
            }
            inner.shutdown = true;
            let victims: Vec<Job> = inner.queue.drain(..).collect();
            for job in victims {
                job.cancel.cancel();
                resolve(&mut inner, &job.ticket, Err(ServeError::Shutdown));
            }
            if inner.inflight == 0 {
                self.shared.idle_cv.notify_all();
            }
        }
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Snapshot of the runtime counters and per-array health, taken
    /// under one lock acquisition so the accounting identity
    /// `admitted == completed + failed + queued + in_flight` holds in
    /// every snapshot, not just at quiescence.
    pub fn stats(&self) -> ServeStats {
        let inner = self.shared.m.lock().unwrap();
        let c = &inner.counters;
        ServeStats {
            submitted: c.submitted,
            admitted: c.admitted,
            rejected: c.rejected,
            shed: c.shed,
            completed: c.completed,
            failed: c.failed,
            deadline_missed: c.deadline_missed,
            retries: c.retries,
            degraded_executions: c.degraded_executions,
            queue_depth_high_water: c.queue_depth_high_water,
            queued: inner.queue.len(),
            in_flight: inner.inflight,
            per_array: inner
                .arrays
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    let mut s = a.stats.clone();
                    s.health = a.health;
                    s.faults = *inner.ledger.total(i);
                    s
                })
                .collect(),
        }
    }

    /// The serving snapshot in platform clothing: a [`SystemStats`]
    /// whose `serve` field is populated and whose `faults` is the
    /// fleet-wide merged report.
    pub fn system_stats(&self) -> SystemStats {
        let serve = self.stats();
        let faults = self.shared.m.lock().unwrap().ledger.fleet_total();
        SystemStats {
            faults,
            serve: Some(serve),
            ..SystemStats::default()
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Fill a ticket and book the outcome into the counters. No-op on a
/// ticket that already resolved (e.g. shed racing completion).
fn resolve(inner: &mut Inner, ticket: &Arc<TicketInner>, result: Result<ServeResponse, ServeError>) {
    let failure = match &result {
        Ok(_) => None,
        Err(e) => Some(e.clone()),
    };
    if !ticket.resolve(result) {
        return;
    }
    match failure {
        None => inner.counters.completed += 1,
        Some(e) => {
            inner.counters.failed += 1;
            if e == ServeError::DeadlineExceeded {
                inner.counters.deadline_missed += 1;
            }
        }
    }
}

/// Record a health transition.
fn transition(inner: &mut Inner, array: usize, to: ArrayHealth) {
    let from = inner.arrays[array].health;
    if from == to {
        return;
    }
    let seq = inner.seq;
    inner.seq += 1;
    let st = &mut inner.arrays[array];
    st.health = to;
    st.stats.history.push(HealthEvent { seq, from, to });
    st.stats.health = to;
}

/// Apply one user-execution outcome to the strike machine.
fn note_execution(inner: &mut Inner, array: usize, faulted: bool, shared: &Shared) {
    let policy = &shared.cfg.health;
    let st = &mut inner.arrays[array];
    if faulted {
        st.strikes = st.strikes.saturating_add(1);
        st.clean_run = 0;
        st.stats.faulted_executions += 1;
        inner.counters.degraded_executions += 1;
    } else {
        st.clean_run += 1;
        if st.clean_run >= policy.clean_streak && st.strikes > 0 {
            st.strikes -= 1;
            st.clean_run = 0;
        }
    }
    let strikes = inner.arrays[array].strikes;
    let target = if strikes >= policy.quarantine_strikes {
        ArrayHealth::Quarantined
    } else if strikes >= policy.degrade_strikes {
        ArrayHealth::Degraded
    } else {
        ArrayHealth::Healthy
    };
    let current = inner.arrays[array].health;
    if target == ArrayHealth::Quarantined && current != ArrayHealth::Quarantined {
        transition(inner, array, ArrayHealth::Quarantined);
        let st = &mut inner.arrays[array];
        st.probe_backoff = policy.probe_interval;
        st.probe_due = Instant::now() + policy.probe_interval;
        st.probe_streak = 0;
    } else if target != ArrayHealth::Quarantined && current.serves() && target != current {
        transition(inner, array, target);
    }
}

/// Resolve every queued job whose deadline has already passed. Runs on
/// each worker wake-up so expired requests clear even when no array can
/// serve (e.g. the whole fleet quarantined).
fn sweep_expired(inner: &mut Inner, shared: &Shared, now: Instant) {
    let mut i = 0;
    while i < inner.queue.len() {
        let expired = inner.queue[i].deadline.is_some_and(|d| now >= d);
        if expired {
            let job = inner.queue.remove(i).unwrap();
            job.cancel.cancel();
            if let Some(t) = tr(shared) {
                t.instant_with("serve.deadline_miss", "serve", vec![("req", job.id)]);
            }
            resolve(inner, &job.ticket, Err(ServeError::DeadlineExceeded));
            shared.space_cv.notify_one();
        } else {
            i += 1;
        }
    }
    if inner.queue.is_empty() && inner.inflight == 0 {
        shared.idle_cv.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>, array: usize, mut backend: Box<dyn ArrayBackend>) {
    let mut inner = shared.m.lock().unwrap();
    loop {
        let now = Instant::now();
        sweep_expired(&mut inner, &shared, now);
        if inner.shutdown && inner.queue.is_empty() {
            return;
        }

        match inner.arrays[array].health {
            ArrayHealth::Quarantined | ArrayHealth::Probing => {
                let due = inner.arrays[array].probe_due;
                if now < due {
                    let (guard, _) = shared.work_cv.wait_timeout(inner, due - now).unwrap();
                    inner = guard;
                    continue;
                }
                transition(&mut inner, array, ArrayHealth::Probing);
                inner.arrays[array].stats.probes_run += 1;
                drop(inner);
                let t0 = Instant::now();
                let probe = backend.execute(&shared.golden.a, &shared.golden.b, &CancelToken::new());
                let t1 = Instant::now();
                inner = shared.m.lock().unwrap();
                let policy = &shared.cfg.health;
                let passed = match probe {
                    Ok((out, t)) => {
                        inner.arrays[array].stats.modelled_busy_s += t.modelled_s;
                        let ledger = &mut inner.ledger;
                        ledger.record_delta(array, &t.faults);
                        t.faults.detected == 0 && out == shared.golden.expected
                    }
                    Err(_) => false,
                };
                if let Some(t) = tr(&shared) {
                    t.complete_between_with(
                        "serve.probe",
                        "serve",
                        t0,
                        t1,
                        vec![("array", array as u64), ("passed", passed as u64)],
                    );
                }
                if passed {
                    inner.arrays[array].stats.probes_passed += 1;
                    inner.arrays[array].probe_streak += 1;
                    if inner.arrays[array].probe_streak >= policy.probes_to_readmit {
                        // Re-admission forgives history: strikes and the
                        // fault ledger restart from zero.
                        let st = &mut inner.arrays[array];
                        st.strikes = 0;
                        st.clean_run = 0;
                        inner.ledger.reset(array);
                        transition(&mut inner, array, ArrayHealth::Healthy);
                        shared.work_cv.notify_all();
                    } else {
                        let st = &mut inner.arrays[array];
                        st.probe_due = Instant::now() + policy.probe_interval;
                        transition(&mut inner, array, ArrayHealth::Quarantined);
                    }
                } else {
                    let st = &mut inner.arrays[array];
                    st.probe_streak = 0;
                    st.probe_backoff = (st.probe_backoff * 2)
                        .max(policy.probe_interval)
                        .min(policy.probe_interval_cap);
                    st.probe_due = Instant::now() + st.probe_backoff;
                    transition(&mut inner, array, ArrayHealth::Quarantined);
                }
                continue;
            }
            ArrayHealth::Healthy | ArrayHealth::Degraded => {}
        }

        // Pick the first runnable job. A retry avoids the array that
        // just faulted on it whenever another serving array exists.
        let serving = inner.arrays.iter().filter(|a| a.health.serves()).count();
        let mut pick = None;
        let mut soonest: Option<Instant> = None;
        for (i, job) in inner.queue.iter().enumerate() {
            if job.not_before > now {
                soonest = Some(soonest.map_or(job.not_before, |s| s.min(job.not_before)));
                continue;
            }
            if job.last_array == Some(array) && serving > 1 {
                continue;
            }
            pick = Some(i);
            break;
        }
        let Some(i) = pick else {
            if inner.shutdown {
                return;
            }
            let wait = soonest
                .map(|s| s.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(20));
            let (guard, _) = shared
                .work_cv
                .wait_timeout(inner, wait.max(Duration::from_micros(100)))
                .unwrap();
            inner = guard;
            continue;
        };

        let mut job = inner.queue.remove(i).unwrap();
        inner.inflight += 1;
        shared.space_cv.notify_one();
        drop(inner);

        let dispatched = Instant::now();
        if job.first_dispatch.is_none() {
            job.first_dispatch = Some(dispatched);
            if let Some(t) = tr(&shared) {
                t.complete_between_with(
                    "serve.queue_wait",
                    "serve",
                    job.submitted_at,
                    dispatched,
                    vec![("req", job.id)],
                );
            }
        }
        job.attempts += 1;
        let outcome = backend.execute(&job.a, &job.b, &job.cancel);
        if let Some(t) = tr(&shared) {
            t.complete_between_with(
                "serve.execute",
                "serve",
                dispatched,
                Instant::now(),
                vec![
                    ("req", job.id),
                    ("array", array as u64),
                    ("attempt", job.attempts as u64),
                ],
            );
        }

        inner = shared.m.lock().unwrap();
        let wall_s = job.submitted_at.elapsed().as_secs_f64();
        let queue_wait_s = job
            .first_dispatch
            .map_or(0.0, |d| (d - job.submitted_at).as_secs_f64());
        match outcome {
            Ok((out, Telemetry { faults, modelled_s })) => {
                inner.arrays[array].stats.modelled_busy_s += modelled_s;
                inner.ledger.record_delta(array, &faults);
                // Two severities: any detection strikes the array's
                // health, but only *uncorrected* detections poison the
                // output — an ABFT-corrected execution is bit-exact and
                // servable.
                let flagged = faults.detected > 0;
                let faulted = faults.uncorrected_detections() > 0;
                job.attempt_log.push(AttemptRecord {
                    array,
                    modelled_s,
                    faulted,
                });
                if flagged {
                    if let Some(t) = tr(&shared) {
                        t.instant_with(
                            "serve.fault",
                            "serve",
                            vec![
                                ("req", job.id),
                                ("array", array as u64),
                                ("detected", faults.detected),
                                ("corrected", faults.abft_corrections),
                            ],
                        );
                    }
                }
                note_execution(&mut inner, array, flagged, &shared);
                if !faulted {
                    inner.arrays[array].stats.completed += 1;
                    resolve(
                        &mut inner,
                        &job.ticket,
                        Ok(ServeResponse {
                            out,
                            array,
                            attempts: job.attempts,
                            modelled_s,
                            wall_s,
                            timeline: RequestTimeline {
                                queue_wait_s,
                                attempts: std::mem::take(&mut job.attempt_log),
                                total_s: wall_s,
                            },
                        }),
                    );
                } else if job.attempts >= shared.cfg.max_attempts {
                    resolve(
                        &mut inner,
                        &job.ticket,
                        Err(ServeError::FaultsExhausted {
                            attempts: job.attempts,
                        }),
                    );
                } else if inner.shutdown {
                    resolve(&mut inner, &job.ticket, Err(ServeError::Shutdown));
                } else {
                    // Discard the suspect output; retry later, elsewhere.
                    // Requeue and notify without releasing the lock: the
                    // whole post-execution section is one critical
                    // section, so a concurrent `stats()` never sees the
                    // job double-counted as both queued and in-flight.
                    inner.counters.retries += 1;
                    job.not_before = Instant::now() + shared.cfg.retry_backoff(job.attempts);
                    job.last_array = Some(array);
                    inner.queue.push_back(job);
                    shared.work_cv.notify_all();
                }
            }
            Err(ArithError::Cancelled { expired }) => {
                let err = if expired || job.deadline.is_some_and(|d| Instant::now() >= d) {
                    ServeError::DeadlineExceeded
                } else {
                    ServeError::Shutdown
                };
                if err == ServeError::DeadlineExceeded {
                    if let Some(t) = tr(&shared) {
                        t.instant_with("serve.deadline_miss", "serve", vec![("req", job.id)]);
                    }
                }
                resolve(&mut inner, &job.ticket, Err(err));
            }
            Err(_) => {
                // Guardrail errors (shape/finite) are deterministic: a
                // retry cannot help, so fail the request as exhausted.
                resolve(
                    &mut inner,
                    &job.ticket,
                    Err(ServeError::FaultsExhausted {
                        attempts: job.attempts,
                    }),
                );
            }
        }
        inner.inflight -= 1;
        if inner.queue.is_empty() && inner.inflight == 0 {
            shared.idle_cv.notify_all();
        }
    }
}
