//! Runtime policy knobs: admission, retries, and the health state machine.

use std::time::Duration;

/// What `submit` does when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Refuse the new request immediately ([`crate::ServeError::QueueFull`]).
    Reject,
    /// Admit the new request by evicting the oldest queued one, which
    /// resolves with [`crate::ServeError::Shed`].
    ShedOldest,
    /// Block the submitter until space frees up, for at most `timeout`;
    /// then refuse with [`crate::ServeError::AdmissionTimeout`].
    Block {
        /// Longest a submitter may be held at the gate.
        timeout: Duration,
    },
}

/// Strike/probe policy driving the per-array health state machine
/// (see [`bfp_platform::ArrayHealth`] for the state diagram).
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Detected-fault strikes at which an array turns `Degraded`.
    pub degrade_strikes: u32,
    /// Strikes at which it is drained into `Quarantined`.
    pub quarantine_strikes: u32,
    /// Consecutive clean executions that forgive one strike.
    pub clean_streak: u32,
    /// Delay from quarantine to the first golden probe; also the gap
    /// between consecutive passing probes.
    pub probe_interval: Duration,
    /// Cap on the probe interval as failed probes back it off (doubling).
    pub probe_interval_cap: Duration,
    /// Consecutive probe passes required to re-admit the array.
    pub probes_to_readmit: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degrade_strikes: 2,
            quarantine_strikes: 4,
            clean_streak: 8,
            probe_interval: Duration::from_millis(10),
            probe_interval_cap: Duration::from_millis(200),
            probes_to_readmit: 2,
        }
    }
}

/// Full serving-runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Arrays in the fleet (one worker thread each).
    pub arrays: usize,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Behaviour when the queue is full.
    pub backpressure: Backpressure,
    /// Deadline budget applied to requests that do not carry their own.
    /// `None` means such requests never expire.
    pub default_budget: Option<Duration>,
    /// Total executions a request may consume (first try + retries)
    /// before it fails with [`crate::ServeError::FaultsExhausted`].
    pub max_attempts: u32,
    /// Base delay before a faulted request is retried (on a different
    /// array where possible); doubles per attempt.
    pub retry_backoff_base: Duration,
    /// Cap on the retry backoff.
    pub retry_backoff_cap: Duration,
    /// Health state machine policy.
    pub health: HealthPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            arrays: 4,
            queue_capacity: 64,
            backpressure: Backpressure::Reject,
            default_budget: None,
            max_attempts: 3,
            retry_backoff_base: Duration::from_millis(1),
            retry_backoff_cap: Duration::from_millis(50),
            health: HealthPolicy::default(),
        }
    }
}

impl ServeConfig {
    /// Retry delay before attempt `attempt` (1-based count of executions
    /// already consumed): `base << (attempt - 1)`, saturating at the cap.
    pub fn retry_backoff(&self, attempt: u32) -> Duration {
        if self.retry_backoff_base.is_zero() || attempt == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(20);
        self.retry_backoff_base
            .checked_mul(1u32 << shift)
            .unwrap_or(self.retry_backoff_cap)
            .min(self.retry_backoff_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let cfg = ServeConfig {
            retry_backoff_base: Duration::from_millis(2),
            retry_backoff_cap: Duration::from_millis(9),
            ..Default::default()
        };
        assert_eq!(cfg.retry_backoff(0), Duration::ZERO);
        assert_eq!(cfg.retry_backoff(1), Duration::from_millis(2));
        assert_eq!(cfg.retry_backoff(2), Duration::from_millis(4));
        assert_eq!(cfg.retry_backoff(3), Duration::from_millis(8));
        assert_eq!(cfg.retry_backoff(4), Duration::from_millis(9));
        assert_eq!(cfg.retry_backoff(u32::MAX), Duration::from_millis(9));
        let zero = ServeConfig {
            retry_backoff_base: Duration::ZERO,
            ..Default::default()
        };
        assert_eq!(zero.retry_backoff(5), Duration::ZERO);
    }
}
