//! Runtime policy knobs: admission, tenancy, retries, the brownout
//! ladder, and the health state machine.

use std::time::Duration;

use bfp_platform::TenantId;

use crate::observatory::ObservatoryConfig;

/// What `submit` does when the admission queue is full. All three
/// policies are priority-aware: shedding always picks a victim from the
/// lowest non-`Critical` class at or below the incoming request's
/// priority — `Critical` work is never evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Refuse the new request immediately ([`crate::ServeError::QueueFull`]).
    Reject,
    /// Admit the new request by evicting the oldest queued one of the
    /// lowest eligible priority, which resolves with
    /// [`crate::ServeError::Shed`]. Falls back to rejecting the newcomer
    /// when no eligible victim exists (e.g. everything queued is
    /// `Critical`).
    ShedOldest,
    /// Block the submitter until space frees up, for at most `timeout`
    /// — further capped by the request's own remaining deadline. A wait
    /// that exhausts `timeout` refuses with
    /// [`crate::ServeError::AdmissionTimeout`]; one that exhausts the
    /// *deadline* refuses with [`crate::ServeError::DeadlineExceeded`]
    /// and is booked as a deadline miss, not an admission timeout.
    Block {
        /// Longest a submitter may be held at the gate.
        timeout: Duration,
    },
}

/// Per-tenant admission quota and scheduling weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Deficit-weighted-round-robin share (relative to other tenants in
    /// the same priority class). Clamped to ≥ 1.
    pub weight: u32,
    /// Token-bucket refill rate, requests/second. `<= 0.0` means
    /// unlimited (no bucket is consulted).
    pub rate_rps: f64,
    /// Token-bucket capacity (burst allowance), in requests. Clamped to
    /// ≥ 1 whenever the bucket is active.
    pub burst: f64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            weight: 1,
            rate_rps: 0.0,
            burst: 8.0,
        }
    }
}

/// Per-tenant circuit breaker: after `trip_after` consecutive
/// rejections/failures the tenant's work is refused outright
/// ([`crate::ServeError::CircuitOpen`]) for `cooldown`, then a
/// half-open window admits `half_open_probes` probe requests — one
/// success closes the breaker, one failure re-opens it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitPolicy {
    /// Consecutive bad outcomes (admission rejections or post-admission
    /// failures) that trip the breaker. `0` disables breakers entirely.
    pub trip_after: u32,
    /// How long an open breaker refuses before going half-open.
    pub cooldown: Duration,
    /// Probe admissions allowed in the half-open state.
    pub half_open_probes: u32,
}

impl Default for CircuitPolicy {
    fn default() -> Self {
        CircuitPolicy {
            trip_after: 0,
            cooldown: Duration::from_millis(50),
            half_open_probes: 1,
        }
    }
}

/// The overload brownout ladder. Pressure is
/// `max(queued / queue_capacity, queue_wait_ewma / latency_target)`;
/// tier 0 serves exact, tier 1 switches nonlinear epilogues to the fast
/// kernels, tier 2 additionally sheds `Bulk` work. Escalation is
/// immediate; de-escalation waits out `min_dwell` (hysteresis) so the
/// ladder cannot flap on queue noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutPolicy {
    /// Pressure at or above which tier 1 engages.
    pub tier1_pressure: f64,
    /// Pressure at or above which tier 2 engages.
    pub tier2_pressure: f64,
    /// Minimum time at a tier before the ladder may step *down*.
    pub min_dwell: Duration,
    /// Queue-wait target feeding the latency half of the pressure
    /// signal.
    pub latency_target: Duration,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        BrownoutPolicy {
            tier1_pressure: 0.5,
            tier2_pressure: 0.85,
            min_dwell: Duration::from_millis(20),
            latency_target: Duration::from_millis(20),
        }
    }
}

/// Strike/probe policy driving the per-array health state machine
/// (see [`bfp_platform::ArrayHealth`] for the state diagram).
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Detected-fault strikes at which an array turns `Degraded`.
    pub degrade_strikes: u32,
    /// Strikes at which it is drained into `Quarantined`.
    pub quarantine_strikes: u32,
    /// Consecutive clean executions that forgive one strike.
    pub clean_streak: u32,
    /// Delay from quarantine to the first golden probe; also the gap
    /// between consecutive passing probes.
    pub probe_interval: Duration,
    /// Cap on the probe interval as failed probes back it off (doubling).
    pub probe_interval_cap: Duration,
    /// Consecutive probe passes required to re-admit the array.
    pub probes_to_readmit: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degrade_strikes: 2,
            quarantine_strikes: 4,
            clean_streak: 8,
            probe_interval: Duration::from_millis(10),
            probe_interval_cap: Duration::from_millis(200),
            probes_to_readmit: 2,
        }
    }
}

/// Full serving-runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Arrays in the fleet (one worker thread each).
    pub arrays: usize,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Behaviour when the queue is full.
    pub backpressure: Backpressure,
    /// Deadline budget applied to requests that do not carry their own.
    /// `None` means such requests never expire.
    pub default_budget: Option<Duration>,
    /// Total executions a request may consume (first try + retries)
    /// before it fails with [`crate::ServeError::FaultsExhausted`].
    pub max_attempts: u32,
    /// Base delay before a faulted request is retried (on a different
    /// array where possible); doubles per attempt.
    pub retry_backoff_base: Duration,
    /// Cap on the retry backoff.
    pub retry_backoff_cap: Duration,
    /// Health state machine policy.
    pub health: HealthPolicy,
    /// Per-tenant quotas/weights; tenants not listed use
    /// `default_quota`.
    pub quotas: Vec<(TenantId, TenantQuota)>,
    /// Quota applied to tenants absent from `quotas`.
    pub default_quota: TenantQuota,
    /// Per-tenant circuit breaker policy (disabled by default).
    pub breaker: CircuitPolicy,
    /// Overload brownout ladder.
    pub brownout: BrownoutPolicy,
    /// Refuse requests whose deadline budget is below the calibrated
    /// service estimate ([`crate::ServeError::DeadlineUnmeetable`])
    /// instead of queueing doomed work. Inactive until enough
    /// executions have calibrated the estimate.
    pub deadline_gate: bool,
    /// Serve-time observatory: flight recorder, SLO burn tracking, and
    /// the shadow-execution lane.
    pub observatory: ObservatoryConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            arrays: 4,
            queue_capacity: 64,
            backpressure: Backpressure::Reject,
            default_budget: None,
            max_attempts: 3,
            retry_backoff_base: Duration::from_millis(1),
            retry_backoff_cap: Duration::from_millis(50),
            health: HealthPolicy::default(),
            quotas: Vec::new(),
            default_quota: TenantQuota::default(),
            breaker: CircuitPolicy::default(),
            brownout: BrownoutPolicy::default(),
            deadline_gate: true,
            observatory: ObservatoryConfig::default(),
        }
    }
}

impl ServeConfig {
    /// The quota in force for `tenant`.
    pub fn quota_for(&self, tenant: TenantId) -> TenantQuota {
        self.quotas
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, q)| *q)
            .unwrap_or(self.default_quota)
    }

    /// Retry delay before attempt `attempt` (1-based count of executions
    /// already consumed): `base << (attempt - 1)`, saturating at the cap.
    pub fn retry_backoff(&self, attempt: u32) -> Duration {
        if self.retry_backoff_base.is_zero() || attempt == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(20);
        self.retry_backoff_base
            .checked_mul(1u32 << shift)
            .unwrap_or(self.retry_backoff_cap)
            .min(self.retry_backoff_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let cfg = ServeConfig {
            retry_backoff_base: Duration::from_millis(2),
            retry_backoff_cap: Duration::from_millis(9),
            ..Default::default()
        };
        assert_eq!(cfg.retry_backoff(0), Duration::ZERO);
        assert_eq!(cfg.retry_backoff(1), Duration::from_millis(2));
        assert_eq!(cfg.retry_backoff(2), Duration::from_millis(4));
        assert_eq!(cfg.retry_backoff(3), Duration::from_millis(8));
        assert_eq!(cfg.retry_backoff(4), Duration::from_millis(9));
        assert_eq!(cfg.retry_backoff(u32::MAX), Duration::from_millis(9));
        let zero = ServeConfig {
            retry_backoff_base: Duration::ZERO,
            ..Default::default()
        };
        assert_eq!(zero.retry_backoff(5), Duration::ZERO);
    }

    #[test]
    fn quota_lookup_falls_back_to_default() {
        let cfg = ServeConfig {
            quotas: vec![(
                TenantId(3),
                TenantQuota {
                    weight: 4,
                    rate_rps: 10.0,
                    burst: 2.0,
                },
            )],
            default_quota: TenantQuota {
                weight: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(cfg.quota_for(TenantId(3)).weight, 4);
        assert_eq!(cfg.quota_for(TenantId(9)).weight, 2);
        assert_eq!(cfg.quota_for(TenantId(9)).rate_rps, 0.0);
    }
}
