//! Typed request-level failures.

use std::fmt;

/// Why a request could not be answered. Every failure a caller can see
/// is one of these — suspect (faulted) outputs are never returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Refused at admission: the queue was full under
    /// [`crate::Backpressure::Reject`].
    QueueFull,
    /// Refused at admission: the queue stayed full for the whole
    /// [`crate::Backpressure::Block`] timeout.
    AdmissionTimeout,
    /// Admitted, then evicted by [`crate::Backpressure::ShedOldest`] to
    /// make room for a newer request.
    Shed,
    /// The deadline budget elapsed before a clean answer was produced
    /// (while queued or mid-execution — the array is released either way).
    DeadlineExceeded,
    /// Every allowed attempt hit a detected fault; the suspect outputs
    /// were discarded rather than returned.
    FaultsExhausted {
        /// Executions consumed.
        attempts: u32,
    },
    /// The runtime shut down before the request resolved.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "admission queue full"),
            ServeError::AdmissionTimeout => write!(f, "admission blocked past its timeout"),
            ServeError::Shed => write!(f, "shed from the queue to admit newer work"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::FaultsExhausted { attempts } => {
                write!(f, "all {attempts} attempts hit detected faults")
            }
            ServeError::Shutdown => write!(f, "runtime shut down"),
        }
    }
}

impl std::error::Error for ServeError {}
