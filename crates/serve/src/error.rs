//! Typed request-level failures.

use std::fmt;

/// Why a request could not be answered. Every failure a caller can see
/// is one of these — suspect (faulted) outputs are never returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Refused at admission: the queue was full under
    /// [`crate::Backpressure::Reject`].
    QueueFull,
    /// Refused at admission: the queue stayed full for the whole
    /// [`crate::Backpressure::Block`] timeout.
    AdmissionTimeout,
    /// Refused at admission: the tenant's token bucket was empty.
    QuotaExceeded,
    /// Refused at admission: the tenant's circuit breaker is open
    /// (sustained rejections/failures; it re-probes after a cooldown).
    CircuitOpen,
    /// Refused at admission: the request's deadline budget is below the
    /// calibrated service estimate — queueing it could only produce a
    /// deadline miss.
    DeadlineUnmeetable,
    /// Refused at admission: the brownout ladder is at tier 2 and the
    /// request is `Bulk` priority.
    Brownout,
    /// Admitted, then evicted — by [`crate::Backpressure::ShedOldest`]
    /// making room for newer work, or by tier-2 brownout shedding of
    /// `Bulk` requests.
    Shed,
    /// The deadline budget elapsed before a clean answer was produced
    /// (while queued or mid-execution — the array is released either way).
    DeadlineExceeded,
    /// Every allowed attempt hit a detected fault; the suspect outputs
    /// were discarded rather than returned.
    FaultsExhausted {
        /// Executions consumed.
        attempts: u32,
    },
    /// The runtime shut down before the request resolved.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "admission queue full"),
            ServeError::AdmissionTimeout => write!(f, "admission blocked past its timeout"),
            ServeError::QuotaExceeded => write!(f, "tenant quota exhausted"),
            ServeError::CircuitOpen => write!(f, "tenant circuit breaker open"),
            ServeError::DeadlineUnmeetable => {
                write!(f, "deadline budget below the calibrated service estimate")
            }
            ServeError::Brownout => write!(f, "bulk work refused at brownout tier 2"),
            ServeError::Shed => write!(f, "shed from the queue to admit newer work"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::FaultsExhausted { attempts } => {
                write!(f, "all {attempts} attempts hit detected faults")
            }
            ServeError::Shutdown => write!(f, "runtime shut down"),
        }
    }
}

impl std::error::Error for ServeError {}
