//! The caller's handle on an in-flight request.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bfp_arith::matrix::MatF32;
use bfp_core::prelude::NonlinearMode;
use bfp_platform::{Priority, TenantId};

use crate::error::ServeError;

/// One execution attempt in a request's [`RequestTimeline`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttemptRecord {
    /// Array the attempt ran on.
    pub array: usize,
    /// Modelled array-occupancy seconds of this execution.
    pub modelled_s: f64,
    /// Whether the detection layer flagged the execution (its output was
    /// discarded and the request re-routed).
    pub faulted: bool,
    /// Nonlinear mode the attempt was dispatched in (set by the
    /// brownout ladder tier at dispatch time).
    pub mode: NonlinearMode,
}

/// Where one request spent its life, attempt by attempt — the per-request
/// lifecycle record returned with the ticket's [`ServeResponse`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequestTimeline {
    /// Seconds from admission until a worker first picked the request up.
    pub queue_wait_s: f64,
    /// Every execution attempt, in order; the last one is the accepted
    /// execution, earlier entries are discarded faulted runs.
    pub attempts: Vec<AttemptRecord>,
    /// Wall-clock seconds from admission to resolution.
    pub total_s: f64,
}

impl RequestTimeline {
    /// Seconds not accounted to queue wait or modelled execution:
    /// retry backoff, host scheduling, and lock hand-off.
    pub fn overhead_s(&self) -> f64 {
        let exec: f64 = self.attempts.iter().map(|a| a.modelled_s).sum();
        (self.total_s - self.queue_wait_s - exec).max(0.0)
    }
}

/// A successful answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The result — bit-identical to the fault-free path *for the
    /// nonlinear mode in `mode`* (see `bfp_serve::reference_bits`).
    pub out: MatF32,
    /// Array that produced the accepted execution.
    pub array: usize,
    /// Tenant the request was submitted under.
    pub tenant: TenantId,
    /// Priority class the request ran at.
    pub priority: Priority,
    /// Nonlinear mode of the accepted execution (the brownout tier it
    /// actually ran in).
    pub mode: NonlinearMode,
    /// Executions consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Modelled array-occupancy seconds of the accepted execution.
    pub modelled_s: f64,
    /// Wall-clock seconds from admission to resolution (queueing +
    /// retries + execution, as the submitter experiences it).
    pub wall_s: f64,
    /// Where the request spent that wall-clock, attempt by attempt.
    pub timeline: RequestTimeline,
}

pub(crate) struct TicketInner {
    slot: Mutex<Option<Result<ServeResponse, ServeError>>>,
    cv: Condvar,
}

impl TicketInner {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketInner {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// Fill the slot exactly once; later calls are ignored (a request
    /// can race shed/deadline/completion, first resolution wins).
    /// Returns whether this call was the resolving one.
    pub(crate) fn resolve(&self, result: Result<ServeResponse, ServeError>) -> bool {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_some() {
            return false;
        }
        *slot = Some(result);
        self.cv.notify_all();
        true
    }
}

/// Handle returned by [`crate::Server::submit`]: wait on it for the
/// response. Dropping the ticket does not cancel the request.
#[derive(Clone)]
pub struct Ticket {
    id: u64,
    pub(crate) inner: Arc<TicketInner>,
}

impl Ticket {
    pub(crate) fn new(id: u64, inner: Arc<TicketInner>) -> Self {
        Ticket { id, inner }
    }

    /// Runtime-assigned request id (monotonic per server).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request resolves.
    pub fn wait(&self) -> Result<ServeResponse, ServeError> {
        let mut slot = self.inner.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.inner.cv.wait(slot).unwrap();
        }
        slot.clone().unwrap()
    }

    /// Block for at most `timeout`; `None` if still unresolved.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServeResponse, ServeError>> {
        let slot = self.inner.slot.lock().unwrap();
        let (slot, _timed_out) = self
            .inner
            .cv
            .wait_timeout_while(slot, timeout, |s| s.is_none())
            .unwrap();
        slot.clone()
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<Result<ServeResponse, ServeError>> {
        self.inner.slot.lock().unwrap().clone()
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_exactly_once() {
        let inner = TicketInner::new();
        let t = Ticket::new(7, inner.clone());
        assert!(t.try_get().is_none());
        assert!(t.wait_timeout(Duration::from_millis(1)).is_none());
        assert!(inner.resolve(Err(ServeError::Shed)));
        assert!(!inner.resolve(Err(ServeError::Shutdown)));
        assert_eq!(t.wait(), Err(ServeError::Shed));
        assert_eq!(t.id(), 7);
    }
}
