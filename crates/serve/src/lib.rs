//! # bfp-serve — overload-robust multi-tenant serving over the simulated fleet
//!
//! The paper's deployment argument is that a bfp8 multi-mode card can
//! hold up *production* Transformer serving. This crate supplies the
//! runtime side of that claim: a synchronous-core, thread-pooled server
//! that owns N simulated accelerator arrays and keeps answering —
//! correctly — while individual arrays fault and while the offered load
//! exceeds capacity.
//!
//! * **Tenancy** — every [`ServeRequest`] carries a
//!   [`TenantId`] and a [`Priority`] (`Bulk` < `Standard` <
//!   `Critical`). Scheduling is strict across priority classes and
//!   deficit-weighted round robin across tenants *within* a class, so
//!   one abusive tenant cannot starve the others (weights come from
//!   [`TenantQuota`]).
//! * **Admission control** — applied in order at `submit`: per-tenant
//!   circuit breaker ([`CircuitPolicy`]), token-bucket quota
//!   ([`TenantQuota`]), brownout refusal of `Bulk` at tier 2, the
//!   early-deadline gate (a budget below the calibrated service
//!   estimate is refused as [`ServeError::DeadlineUnmeetable`] instead
//!   of queueing doomed work), then queue capacity under the configured
//!   [`Backpressure`]. Shedding is priority-aware — `Critical` work is
//!   never evicted.
//! * **Brownout ladder** — under pressure the runtime sheds *quality*
//!   before *work* ([`BrownoutPolicy`]): tier 1 switches nonlinear
//!   epilogues to the fast LUT/polynomial kernels, tier 2 additionally
//!   refuses and sheds `Bulk`. Escalation is immediate, de-escalation
//!   waits out a dwell, and every transition is a trace instant.
//! * **Deadlines** — per-request budgets propagate into the engine as a
//!   [`bfp_arith::cancel::CancelToken`]; an expired request never
//!   occupies an array past the next cancellation point and fails fast
//!   with [`ServeError::DeadlineExceeded`]. A [`Backpressure::Block`]
//!   wait is capped by the remaining budget and booked as a deadline
//!   miss, not an admission timeout.
//! * **Fault handling** — executions run on the checksum-protected
//!   (ABFT) kernel. A detected single-element upset is *corrected in
//!   place* and served bit-exact; anything uncorrectable is *discarded*
//!   (never returned) and retried with capped backoff — on a different
//!   array while one is available, on the same array after a grace
//!   window otherwise (a fleet of one never starves a retry).
//! * **Health state machine** — per array, `Healthy → Degraded →
//!   Quarantined → Probing` (see [`bfp_platform::ArrayHealth`]):
//!   quarantined arrays are drained and periodically re-certified by a
//!   golden self-test GEMM bit-checked against the softfp reference,
//!   then re-admitted.
//! * **Observability** — [`Server::stats`] snapshots the
//!   [`bfp_platform::ServeStats`] counters (admission, per-tenant and
//!   per-priority rollups, brownout state, per-array health history)
//!   under one lock, so the identity
//!   `admitted == completed + failed + queued + in_flight` holds in
//!   every snapshot — fleet-wide, per tenant, and per priority class;
//!   [`Server::system_stats`] surfaces them through
//!   [`bfp_platform::SystemStats`]. Every [`ServeResponse`] carries a
//!   [`RequestTimeline`] (queue wait + per-attempt execution records)
//!   and the [`NonlinearMode`] it actually ran in, and
//!   [`Server::attach_tracer`] streams the same lifecycle as
//!   spans/instants into a [`bfp_telemetry::Tracer`] for Perfetto.
//!
//! The degradation ladder, in order: ABFT in-place correction (free) →
//! retry (same request, different array) → re-route (health-aware
//! dispatch) → fast nonlinear kernels (brownout tier 1) → shed `Bulk`
//! (tier 2) → quarantine (array level) → reject (request level, typed
//! error). Wrong bits are structurally impossible in a response: only
//! executions whose fault report carries no *uncorrected* detections
//! resolve tickets, and every completed response is bit-exact *for the
//! mode it ran in* (see [`reference_bits`]).
//!
//! ## Quickstart
//!
//! ```
//! use bfp_serve::{ArrayFaultPlan, ServeConfig, ServeRequest, Server};
//! use bfp_arith::matrix::MatF32;
//!
//! let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
//! let a = MatF32::from_fn(16, 16, |i, j| (i + j) as f32);
//! let b = MatF32::from_fn(16, 16, |i, j| (i as f32 - j as f32));
//! let ticket = server.submit(ServeRequest::new(a, b)).unwrap();
//! let resp = ticket.wait().unwrap();
//! assert_eq!(resp.out.rows(), 16);
//! server.drain();
//! ```
//!
//! ## Multi-tenant quickstart
//!
//! ```
//! use bfp_serve::{
//!     ArrayFaultPlan, Priority, ServeConfig, ServeOp, ServeRequest, Server, TenantId,
//!     TenantQuota,
//! };
//! use bfp_arith::matrix::MatF32;
//!
//! let cfg = ServeConfig {
//!     quotas: vec![
//!         // An interactive tenant with 4x the scheduling share…
//!         (TenantId(1), TenantQuota { weight: 4, ..Default::default() }),
//!         // …and a rate-limited batch tenant.
//!         (TenantId(2), TenantQuota { weight: 1, rate_rps: 50.0, burst: 8.0 }),
//!     ],
//!     ..Default::default()
//! };
//! let server = Server::simulated(cfg, vec![ArrayFaultPlan::None; 2]);
//! let a = MatF32::from_fn(16, 16, |i, j| (i + j) as f32 / 32.0);
//! let b = MatF32::from_fn(16, 16, |i, j| (i as f32 - j as f32) / 32.0);
//! let t = server
//!     .submit(
//!         ServeRequest::new(a, b)
//!             .for_tenant(TenantId(1))
//!             .with_priority(Priority::Critical)
//!             .with_op(ServeOp::GemmGelu),
//!     )
//!     .unwrap();
//! let resp = t.wait().unwrap();
//! assert_eq!(resp.tenant, TenantId(1));
//! server.drain();
//! let stats = server.stats();
//! assert_eq!(stats.tenant(TenantId(1)).unwrap().completed, 1);
//! ```

mod backend;
mod config;
mod error;
pub mod observatory;
mod server;
mod ticket;

pub use backend::{reference_bits, ArrayBackend, ArrayFaultPlan, ServeOp, SimArrayBackend, Telemetry};
pub use config::{Backpressure, BrownoutPolicy, CircuitPolicy, HealthPolicy, ServeConfig, TenantQuota};
pub use error::ServeError;
pub use observatory::{Observatory, ObservatoryConfig, SHADOW_ENVELOPE};
pub use server::{ServeRequest, Server};
pub use ticket::{AttemptRecord, RequestTimeline, ServeResponse, Ticket};

// Re-export the observability vocabulary so downstream code does not
// need a direct bfp-platform / bfp-telemetry / bfp-core dependency to
// inspect snapshots, attach a tracer, or publish metrics.
pub use bfp_core::prelude::NonlinearMode;
pub use bfp_platform::{
    ArrayHealth, ArrayServeStats, BrownoutStats, HealthEvent, Priority, PriorityServeStats,
    ServeStats, TenantId, TenantServeStats,
};
pub use bfp_telemetry::{
    FlightAttempt, FlightDump, FlightRecord, Registry, ShadowSample, Tracer, TriggerReason,
};

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_arith::matrix::MatF32;
    use std::time::Duration;

    fn req(seed: u64) -> ServeRequest {
        let a = MatF32::from_fn(16, 16, |i, j| ((i * 3 + j + seed as usize) % 5) as f32 - 2.0);
        let b = MatF32::from_fn(16, 16, |i, j| ((i + j * 7) % 5) as f32 - 2.0);
        ServeRequest::new(a, b)
    }

    #[test]
    fn serves_clean_requests_end_to_end() {
        let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
        let tickets: Vec<_> = (0..8)
            .map(|s| server.submit(req(s)).unwrap())
            .collect();
        for t in &tickets {
            let resp = t.wait().unwrap();
            assert_eq!(resp.attempts, 1);
            assert!(resp.modelled_s > 0.0);
        }
        server.drain();
        let s = server.stats();
        assert_eq!(s.submitted, 8);
        assert_eq!(s.admitted, 8);
        assert_eq!(s.completed, 8);
        assert_eq!(s.failed, 0);
        assert_eq!(s.serving_arrays(), 2);
    }

    #[test]
    fn reject_backpressure_returns_queue_full() {
        // Single array with a storm of submissions into a tiny queue:
        // some must be refused, and the refusals are typed.
        let cfg = ServeConfig {
            queue_capacity: 1,
            backpressure: Backpressure::Reject,
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::None]);
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut tickets = Vec::new();
        for s in 0..64 {
            match server.submit(req(s)) {
                Ok(t) => {
                    admitted += 1;
                    tickets.push(t);
                }
                Err(ServeError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected refusal: {e}"),
            }
        }
        server.drain();
        let s = server.stats();
        assert_eq!(s.admitted, admitted);
        assert_eq!(s.rejected, rejected);
        assert_eq!(s.submitted, admitted + rejected);
        assert_eq!(s.completed, admitted);
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn shed_oldest_evicts_and_block_times_out() {
        let cfg = ServeConfig {
            queue_capacity: 1,
            backpressure: Backpressure::ShedOldest,
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::None]);
        let tickets: Vec<_> = (0..32)
            .map(|s| server.submit(req(s)).unwrap())
            .collect();
        server.drain();
        let s = server.stats();
        assert_eq!(s.admitted, 32);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.completed + s.failed, s.admitted);
        assert_eq!(s.failed, s.shed);
        let shed_seen = tickets
            .iter()
            .filter(|t| t.wait() == Err(ServeError::Shed))
            .count() as u64;
        assert_eq!(shed_seen, s.shed);

        // Block-with-timeout: a full queue on an effectively-stuck fleet
        // turns into AdmissionTimeout, not an indefinite hang.
        let cfg = ServeConfig {
            queue_capacity: 1,
            backpressure: Backpressure::Block {
                timeout: Duration::from_millis(5),
            },
            max_attempts: 1,
            ..Default::default()
        };
        // A latched-faulty single array: requests fail (exhausted) but
        // slowly; keep the queue full from this thread.
        let (plan, _heal) = ArrayFaultPlan::latched();
        let server = Server::simulated(cfg, vec![plan]);
        let mut timed_out = false;
        for s in 0..64 {
            match server.submit(req(s)) {
                Ok(_) | Err(ServeError::AdmissionTimeout) => {
                    timed_out |= matches!(server.submit(req(s)), Err(ServeError::AdmissionTimeout));
                }
                Err(e) => panic!("unexpected refusal: {e}"),
            }
            if timed_out {
                break;
            }
        }
        assert!(timed_out, "blocked admission must eventually time out");
    }

    #[test]
    fn zero_budget_requests_miss_their_deadline() {
        let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None]);
        let t = server
            .submit(ServeRequest::with_budget(
                MatF32::from_fn(16, 16, |_, _| 1.0),
                MatF32::from_fn(16, 16, |_, _| 1.0),
                Duration::ZERO,
            ))
            .unwrap();
        assert_eq!(t.wait(), Err(ServeError::DeadlineExceeded));
        let s = server.stats();
        assert_eq!(s.deadline_missed, 1);
        assert_eq!(s.failed, 1);
    }

    #[test]
    fn shutdown_fails_queued_requests_with_typed_error() {
        let mut server = Server::simulated(
            ServeConfig {
                queue_capacity: 128,
                ..Default::default()
            },
            vec![ArrayFaultPlan::None],
        );
        let tickets: Vec<_> = (0..32)
            .map(|s| server.submit(req(s)).unwrap())
            .collect();
        server.shutdown();
        assert!(matches!(server.submit(req(0)), Err(ServeError::Shutdown)));
        let s = server.stats();
        assert_eq!(s.completed + s.failed, s.admitted);
        for t in tickets {
            let r = t.wait();
            assert!(
                r.is_ok() || r == Err(ServeError::Shutdown),
                "unexpected outcome: {r:?}"
            );
        }
    }

    #[test]
    fn response_timeline_records_the_lifecycle() {
        // Single array with one transient upset: ABFT localizes and
        // repairs it in place, so the very first attempt serves the
        // exact bits — no discard, no retry — while the correction
        // still strikes the array's health accounting.
        let cfg = ServeConfig {
            max_attempts: 4,
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::transient(1)]);
        let resp = server.submit(req(0)).unwrap().wait().unwrap();
        assert_eq!(resp.attempts, 1, "corrected in place, never retried");
        assert_eq!(resp.timeline.attempts.len(), 1);
        assert!(resp.timeline.queue_wait_s >= 0.0);
        assert!(resp.timeline.total_s <= resp.wall_s + 1e-9);
        let last = resp.timeline.attempts.last().unwrap();
        assert!(!last.faulted, "a corrected attempt is servable");
        assert_eq!(last.array, resp.array);
        assert!((last.modelled_s - resp.modelled_s).abs() < 1e-12);
        assert!(resp.timeline.overhead_s() >= 0.0);
        server.drain();
        let s = server.stats();
        assert_eq!(s.retries, 0);
        assert_eq!(
            s.degraded_executions, 1,
            "the detection still counts against health"
        );
        assert_eq!(s.per_array[0].faults.abft_detections, 1);
        assert_eq!(s.per_array[0].faults.abft_corrections, 1);
    }

    #[test]
    fn uncorrectable_fault_is_discarded_and_retried_after_repair() {
        // A latched, multi-element defect defeats ABFT correction: every
        // attempt on the sick array is discarded. Repairing the array
        // (clearing the latch) lets a later retry serve cleanly, and the
        // timeline shows the discarded attempts.
        use std::sync::atomic::Ordering;
        let (plan, heal) = ArrayFaultPlan::latched();
        let cfg = ServeConfig {
            max_attempts: 64,
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![plan]);
        let ticket = server.submit(req(0)).unwrap();
        while server.stats().retries == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        heal.store(false, Ordering::Relaxed);
        let resp = ticket.wait().unwrap();
        assert!(resp.attempts >= 2, "at least one attempt was discarded");
        let (clean, discarded) = resp.timeline.attempts.split_last().unwrap();
        assert!(!clean.faulted, "the accepted attempt is clean");
        for a in discarded {
            assert!(a.faulted, "earlier attempts were discarded as faulted");
        }
        server.drain();
    }

    #[test]
    fn attached_tracer_sees_request_lifecycle_spans() {
        let tracer = bfp_telemetry::Tracer::new();
        let cfg = ServeConfig {
            max_attempts: 4,
            ..Default::default()
        };
        // Both arrays carry a transient credit, so whichever array runs
        // the very first execution flags it: at least one fault instant
        // is guaranteed regardless of worker scheduling (ABFT corrects
        // the upset, so the attempt still serves — no retry needed).
        let server = Server::simulated(
            cfg,
            vec![ArrayFaultPlan::transient(1), ArrayFaultPlan::transient(1)],
        );
        assert!(server.attach_tracer(tracer.clone()));
        assert!(!server.attach_tracer(bfp_telemetry::Tracer::new()));
        let tickets: Vec<_> = (0..4).map(|s| server.submit(req(s)).unwrap()).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        server.drain();
        let events = tracer.drain();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("serve.queue_wait"), 4, "one wait span per request");
        assert!(
            count("serve.execute") >= 4,
            "one execution per request (corrected upsets need no retry)"
        );
        assert!(count("serve.fault") >= 1, "the corrected upset is an instant");
        assert!(count("serve.queue_depth") >= 4);
        let exec = events.iter().find(|e| e.name == "serve.execute").unwrap();
        assert!(exec.args.iter().any(|(k, _)| *k == "req"));
        assert!(exec.args.iter().any(|(k, _)| *k == "array"));
        // The trace exports as Chrome JSON.
        let json = tracer.chrome_json();
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn stats_identity_holds_under_concurrent_submit_and_drain() {
        // admitted == completed + failed + queued + in_flight must hold
        // in EVERY snapshot, including ones racing dispatch, retry
        // requeue, and resolution. A faulty array keeps the retry path
        // hot while we hammer stats() from the submitting thread.
        let cfg = ServeConfig {
            queue_capacity: 256,
            max_attempts: 4,
            ..Default::default()
        };
        let server = Server::simulated(
            cfg,
            vec![ArrayFaultPlan::transient(8), ArrayFaultPlan::None],
        );
        let check = |s: &ServeStats| {
            assert_eq!(
                s.admitted,
                s.completed + s.failed + s.queued as u64 + s.in_flight as u64,
                "identity broken: {s}"
            );
        };
        let mut tickets = Vec::new();
        for s in 0..48 {
            tickets.push(server.submit(req(s)).unwrap());
            check(&server.stats());
        }
        loop {
            let s = server.stats();
            check(&s);
            if s.completed + s.failed == s.admitted && s.queued == 0 && s.in_flight == 0 {
                break;
            }
            std::thread::yield_now();
        }
        server.drain();
        let s = server.stats();
        check(&s);
        assert_eq!(s.completed, 48);
    }

    use bfp_arith::cancel::CancelToken;
    use bfp_arith::error::ArithError;
    use std::sync::{Arc, Condvar, Mutex};

    /// A backend whose executions block until the test grants permits —
    /// turns worker scheduling into a deterministic script. Records the
    /// `a[0][0]` tag of every execution, in order.
    struct GateBackend {
        gate: Gate,
        order: ExecOrder,
        delegate: SimArrayBackend,
    }

    type Gate = Arc<(Mutex<u64>, Condvar)>;
    type ExecOrder = Arc<Mutex<Vec<u64>>>;

    impl GateBackend {
        fn fleet(n: usize) -> (Vec<Box<dyn ArrayBackend>>, Gate, ExecOrder) {
            let gate = Arc::new((Mutex::new(0u64), Condvar::new()));
            let order = Arc::new(Mutex::new(Vec::new()));
            let backends = (0..n)
                .map(|_| {
                    Box::new(GateBackend {
                        gate: gate.clone(),
                        order: order.clone(),
                        delegate: SimArrayBackend::new(100.0, ArrayFaultPlan::None),
                    }) as Box<dyn ArrayBackend>
                })
                .collect();
            (backends, gate, order)
        }

        fn release(gate: &Gate, permits: u64) {
            let (m, cv) = &**gate;
            *m.lock().unwrap() += permits;
            cv.notify_all();
        }
    }

    impl ArrayBackend for GateBackend {
        fn execute(
            &mut self,
            a: &bfp_arith::matrix::MatF32,
            b: &bfp_arith::matrix::MatF32,
            op: ServeOp,
            mode: NonlinearMode,
            cancel: &CancelToken,
        ) -> Result<(bfp_arith::matrix::MatF32, Telemetry), ArithError> {
            let (m, cv) = &*self.gate;
            let mut permits = m.lock().unwrap();
            // Failsafe so a buggy test fails instead of hanging shutdown.
            let mut patience = 500;
            while *permits == 0 && patience > 0 {
                permits = cv
                    .wait_timeout(permits, Duration::from_millis(10))
                    .unwrap()
                    .0;
                cancel.check()?;
                patience -= 1;
            }
            *permits = permits.saturating_sub(1);
            drop(permits);
            self.order.lock().unwrap().push(a.get(0, 0) as u64);
            self.delegate.execute(a, b, op, mode, cancel)
        }
    }

    /// A request whose execution order is observable via `a[0][0]`.
    fn tagged(tag: u64, priority: Priority) -> ServeRequest {
        let a = MatF32::from_fn(16, 16, |i, j| {
            if (i, j) == (0, 0) {
                tag as f32
            } else {
                ((i + j * 3) % 5) as f32 - 2.0
            }
        });
        let b = MatF32::from_fn(16, 16, |i, j| ((i * 7 + j) % 5) as f32 - 2.0);
        ServeRequest::new(a, b).with_priority(priority)
    }

    fn wait_in_flight(server: &Server, n: usize) {
        let mut spins = 0;
        while server.stats().in_flight < n {
            std::thread::sleep(Duration::from_millis(1));
            spins += 1;
            assert!(spins < 5000, "worker never dispatched");
        }
    }

    /// Brownout disabled (thresholds unreachable) so queue-pressure
    /// tests exercise exactly one mechanism at a time.
    fn no_brownout() -> BrownoutPolicy {
        BrownoutPolicy {
            tier1_pressure: 1e9,
            tier2_pressure: 2e9,
            ..Default::default()
        }
    }

    #[test]
    fn strict_priority_then_fifo_within_a_class() {
        let (backends, gate, order) = GateBackend::fleet(1);
        let cfg = ServeConfig {
            brownout: no_brownout(),
            ..Default::default()
        };
        let server = Server::new(cfg, backends);
        // Occupy the single array, then queue a mix while it is held.
        let first = server.submit(tagged(100, Priority::Standard)).unwrap();
        wait_in_flight(&server, 1);
        let rest: Vec<_> = [
            tagged(1, Priority::Bulk),
            tagged(2, Priority::Bulk),
            tagged(3, Priority::Critical),
            tagged(4, Priority::Standard),
        ]
        .into_iter()
        .map(|r| server.submit(r).unwrap())
        .collect();
        GateBackend::release(&gate, 100);
        first.wait().unwrap();
        for t in &rest {
            t.wait().unwrap();
        }
        server.drain();
        assert_eq!(
            *order.lock().unwrap(),
            vec![100, 3, 4, 1, 2],
            "critical first, then standard FIFO, bulk last"
        );
    }

    #[test]
    fn dwrr_interleaves_tenants_by_weight() {
        let (backends, gate, order) = GateBackend::fleet(1);
        let cfg = ServeConfig {
            quotas: vec![
                (TenantId(1), TenantQuota { weight: 2, ..Default::default() }),
                (TenantId(2), TenantQuota { weight: 1, ..Default::default() }),
            ],
            brownout: no_brownout(),
            ..Default::default()
        };
        let server = Server::new(cfg, backends);
        let first = server.submit(tagged(100, Priority::Standard)).unwrap();
        wait_in_flight(&server, 1);
        // Tenant 1 (weight 2) tags 10..16, tenant 2 (weight 1) tags 20..23.
        let mut tickets = Vec::new();
        for tag in [10u64, 11, 12, 13, 14, 15] {
            tickets.push(
                server
                    .submit(tagged(tag, Priority::Standard).for_tenant(TenantId(1)))
                    .unwrap(),
            );
        }
        for tag in [20u64, 21, 22] {
            tickets.push(
                server
                    .submit(tagged(tag, Priority::Standard).for_tenant(TenantId(2)))
                    .unwrap(),
            );
        }
        GateBackend::release(&gate, 100);
        first.wait().unwrap();
        for t in &tickets {
            t.wait().unwrap();
        }
        server.drain();
        let got = order.lock().unwrap().clone();
        // After the opener, the DWRR serves 2 from tenant 1 per 1 from
        // tenant 2 until a queue drains.
        assert_eq!(
            got,
            vec![100, 10, 11, 20, 12, 13, 21, 14, 15, 22],
            "2:1 deficit-weighted interleave"
        );
    }

    #[test]
    fn quota_breaker_trips_opens_and_recovers() {
        let cfg = ServeConfig {
            quotas: vec![(
                TenantId(7),
                TenantQuota {
                    weight: 1,
                    rate_rps: 5.0,
                    burst: 1.0,
                },
            )],
            breaker: CircuitPolicy {
                trip_after: 3,
                cooldown: Duration::from_millis(50),
                half_open_probes: 1,
            },
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::None]);
        let t7 = |s: u64| req(s).for_tenant(TenantId(7));
        // One token in the bucket: the first request is served…
        server.submit(t7(0)).unwrap().wait().unwrap();
        // …then three immediate submissions drain into quota rejections,
        // which trip the breaker.
        for s in 1..4 {
            assert_eq!(server.submit(t7(s)).unwrap_err(), ServeError::QuotaExceeded);
        }
        assert_eq!(server.submit(t7(4)).unwrap_err(), ServeError::CircuitOpen);
        assert!(server.stats().tenant(TenantId(7)).unwrap().breaker_open);
        // Past the cooldown (and with the bucket refilled) a half-open
        // probe is admitted; its success closes the breaker.
        std::thread::sleep(Duration::from_millis(250));
        server.submit(t7(5)).unwrap().wait().unwrap();
        server.drain();
        let s = server.stats();
        let ts = s.tenant(TenantId(7)).unwrap();
        assert_eq!(ts.quota_rejected, 3);
        assert_eq!(ts.breaker_rejected, 1);
        assert_eq!(ts.completed, 2);
        assert!(!ts.breaker_open, "successful probe closed the breaker");
        assert_eq!(s.quota_rejected, 3);
        assert_eq!(s.breaker_rejected, 1);
        // Fleet identity including refusals.
        assert_eq!(s.submitted, s.admitted + s.rejected);
    }

    #[test]
    fn brownout_ladder_degrades_then_sheds_bulk() {
        let (backends, gate, _order) = GateBackend::fleet(1);
        let cfg = ServeConfig {
            queue_capacity: 4,
            brownout: BrownoutPolicy {
                // 1/4 queued (the opener) stays tier 0; 2/4 is tier 1,
                // 3/4 is tier 2.
                tier1_pressure: 0.3,
                tier2_pressure: 0.75,
                min_dwell: Duration::from_secs(30),
                latency_target: Duration::from_secs(30),
            },
            ..Default::default()
        };
        let server = Server::new(cfg, backends);
        let tracer = Tracer::new();
        assert!(server.attach_tracer(tracer.clone()));

        let gelu = |tag: u64, p: Priority| tagged(tag, p).with_op(ServeOp::GemmGelu);
        // Occupy the array, then build queue pressure: two Bulk, then
        // Standards pushing pressure through 0.25 (tier 1) and 0.75
        // (tier 2, which sheds the queued Bulk).
        let opener = server.submit(gelu(100, Priority::Standard)).unwrap();
        wait_in_flight(&server, 1);
        let b1 = server.submit(gelu(1, Priority::Bulk)).unwrap();
        let b2 = server.submit(gelu(2, Priority::Bulk)).unwrap();
        let s2 = server.submit(gelu(3, Priority::Standard)).unwrap();
        let s3 = server.submit(gelu(4, Priority::Standard)).unwrap();
        assert_eq!(server.stats().brownout.tier, 2, "pressure reached tier 2");
        assert_eq!(b1.wait(), Err(ServeError::Shed), "tier-2 entry sheds Bulk");
        assert_eq!(b2.wait(), Err(ServeError::Shed));
        // Incoming Bulk is refused at the door while at tier 2.
        assert_eq!(
            server.submit(gelu(5, Priority::Bulk)).unwrap_err(),
            ServeError::Brownout
        );
        GateBackend::release(&gate, 100);
        let opened = opener.wait().unwrap();
        let deg2 = s2.wait().unwrap();
        let deg3 = s3.wait().unwrap();
        server.drain();

        // The opener was dispatched at tier 0 (exact); the Standards
        // were dispatched under brownout and ran the fast kernels. Each
        // response is bit-exact for the mode it actually ran in.
        assert_eq!(opened.mode, NonlinearMode::Exact);
        for resp in [&deg2, &deg3] {
            assert_eq!(resp.mode, NonlinearMode::Fast);
        }
        let (a3, b3) = (
            tagged(3, Priority::Standard).a,
            tagged(3, Priority::Standard).b,
        );
        assert_eq!(
            deg2.out,
            reference_bits(&a3, &b3, ServeOp::GemmGelu, NonlinearMode::Fast),
            "degraded response is bit-exact for Fast"
        );
        assert_ne!(
            deg2.out,
            reference_bits(&a3, &b3, ServeOp::GemmGelu, NonlinearMode::Exact),
            "and genuinely differs from the exact kernel's bits"
        );

        let s = server.stats();
        assert_eq!(s.brownout.max_tier, 2);
        assert!(s.brownout.transitions >= 1);
        assert_eq!(s.brownout.sheds, 2, "both queued Bulk were shed");
        assert_eq!(s.brownout_rejected, 1);
        assert_eq!(s.per_priority[Priority::Bulk.index()].shed, 2);
        assert_eq!(s.per_priority[Priority::Critical.index()].shed, 0);
        // Transitions are visible in the trace.
        let events = tracer.drain();
        let ups: Vec<_> = events.iter().filter(|e| e.name == "serve.brownout").collect();
        assert!(!ups.is_empty(), "brownout transitions traced");
        assert!(ups[0].args.iter().any(|(k, _)| *k == "from"));
        assert!(ups[0].args.iter().any(|(k, _)| *k == "to"));
        assert!(events.iter().any(|e| e.name == "serve.brownout_tier"));
    }

    #[test]
    fn timeline_records_cross_array_retry() {
        // One healthy array plus one latched one: a request that first
        // lands on the sick array is discarded and retried — on the
        // *other* array — and the timeline records both attempts with
        // monotone queue-wait/total accounting.
        let (latched, _heal) = ArrayFaultPlan::latched();
        let cfg = ServeConfig {
            max_attempts: 8,
            brownout: no_brownout(),
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::None, latched]);
        let mut crossed = None;
        for round in 0..10u64 {
            let tickets: Vec<_> = (0..16)
                .map(|s| server.submit(req(s + round * 16)).unwrap())
                .collect();
            for t in tickets {
                let resp = t.wait().unwrap();
                // Lifecycle invariants hold for every response.
                assert!(resp.timeline.queue_wait_s >= 0.0);
                assert!(resp.timeline.queue_wait_s <= resp.timeline.total_s + 1e-9);
                assert!(resp.timeline.total_s <= resp.wall_s + 1e-9);
                assert_eq!(resp.attempts as usize, resp.timeline.attempts.len());
                assert!(resp.timeline.overhead_s() >= 0.0);
                if resp.timeline.attempts.len() >= 2 {
                    crossed.get_or_insert(resp);
                }
            }
            if crossed.is_some() {
                break;
            }
        }
        let resp = crossed.expect("some request faulted on the latched array and retried");
        let first = resp.timeline.attempts.first().unwrap();
        let last = resp.timeline.attempts.last().unwrap();
        assert!(first.faulted, "the discarded attempt is recorded as faulted");
        assert!(!last.faulted, "the accepted attempt is clean");
        assert_ne!(first.array, last.array, "the retry re-routed to a different array");
        assert_eq!(last.array, resp.array);
        server.drain();
        assert!(server.stats().retries >= 1);
    }

    #[test]
    fn timeline_attempts_record_dispatch_mode_across_tier_change() {
        // The brownout tier at *dispatch* time is stamped on each
        // attempt record: an opener dispatched at tier 0 records Exact,
        // requests dispatched after queue pressure lifts the ladder to
        // tier 1 record Fast. The escalation itself fires the flight
        // recorder.
        let (backends, gate, _order) = GateBackend::fleet(1);
        let cfg = ServeConfig {
            queue_capacity: 4,
            brownout: BrownoutPolicy {
                tier1_pressure: 0.3,
                tier2_pressure: 1e9, // degrade only, never shed
                min_dwell: Duration::from_secs(30),
                latency_target: Duration::from_secs(30),
            },
            ..Default::default()
        };
        let server = Server::new(cfg, backends);
        let gelu = |tag: u64| tagged(tag, Priority::Standard).with_op(ServeOp::GemmGelu);
        let opener = server.submit(gelu(1)).unwrap();
        wait_in_flight(&server, 1);
        let q1 = server.submit(gelu(2)).unwrap();
        let q2 = server.submit(gelu(3)).unwrap();
        let q3 = server.submit(gelu(4)).unwrap();
        assert_eq!(server.stats().brownout.tier, 1);
        GateBackend::release(&gate, 100);
        let r0 = opener.wait().unwrap();
        let r1 = q1.wait().unwrap();
        let r2 = q2.wait().unwrap();
        let r3 = q3.wait().unwrap();
        server.drain();

        assert_eq!(r0.timeline.attempts.last().unwrap().mode, NonlinearMode::Exact);
        for r in [&r1, &r2, &r3] {
            let a = r.timeline.attempts.last().unwrap();
            assert_eq!(a.mode, NonlinearMode::Fast, "dispatched under brownout");
            assert_eq!(a.mode, r.mode, "response mode mirrors the accepted attempt");
            assert_eq!(r.timeline.attempts.len(), r.attempts as usize);
            assert!(r.timeline.queue_wait_s <= r.timeline.total_s + 1e-9);
        }
        let dumps = server.take_flight_dumps();
        assert!(
            dumps.iter().any(|d| d.reason == TriggerReason::BrownoutEscalation),
            "tier escalation fired the flight recorder: {dumps:?}"
        );
    }

    /// A backend that silently corrupts fast-mode outputs without any
    /// fault detection — numeric rot only the shadow lane can see.
    struct RotBackend {
        gate: Gate,
        delegate: SimArrayBackend,
    }

    impl ArrayBackend for RotBackend {
        fn execute(
            &mut self,
            a: &MatF32,
            b: &MatF32,
            op: ServeOp,
            mode: NonlinearMode,
            cancel: &CancelToken,
        ) -> Result<(MatF32, Telemetry), ArithError> {
            let (m, cv) = &*self.gate;
            let mut permits = m.lock().unwrap();
            let mut patience = 500;
            while *permits == 0 && patience > 0 {
                permits = cv
                    .wait_timeout(permits, Duration::from_millis(10))
                    .unwrap()
                    .0;
                cancel.check()?;
                patience -= 1;
            }
            *permits = permits.saturating_sub(1);
            drop(permits);
            let (mut out, t) = self.delegate.execute(a, b, op, mode, cancel)?;
            if mode == NonlinearMode::Fast {
                let v = out.get(0, 0);
                out.set(0, 0, v + 0.5);
            }
            Ok((out, t))
        }
    }

    #[test]
    fn shadow_lane_catches_silent_fast_mode_corruption_and_dumps() {
        // An array returns silently-wrong fast-mode bits (no ABFT
        // signal). With the shadow lane on every fast completion, the
        // exact-oracle re-run catches the envelope violation, strikes
        // the array's health, and dumps the flight recorder with the
        // offending request's timeline in it.
        let gate: Gate = Arc::new((Mutex::new(0u64), Condvar::new()));
        let backends: Vec<Box<dyn ArrayBackend>> = vec![Box::new(RotBackend {
            gate: gate.clone(),
            delegate: SimArrayBackend::new(100.0, ArrayFaultPlan::None),
        })];
        let cfg = ServeConfig {
            queue_capacity: 4,
            brownout: BrownoutPolicy {
                tier1_pressure: 0.3,
                tier2_pressure: 1e9,
                min_dwell: Duration::from_secs(30),
                latency_target: Duration::from_secs(30),
            },
            observatory: ObservatoryConfig {
                shadow_every: 1,
                dump_cooldown: Duration::ZERO,
                ..Default::default()
            },
            ..Default::default()
        };
        let server = Server::new(cfg, backends);
        let gelu = |tag: u64| tagged(tag, Priority::Standard).with_op(ServeOp::GemmGelu);
        let opener = server.submit(gelu(1)).unwrap();
        wait_in_flight(&server, 1);
        let q1 = server.submit(gelu(2)).unwrap();
        let q2 = server.submit(gelu(3)).unwrap();
        GateBackend::release(&gate, 100);
        opener.wait().unwrap();
        let r1 = q1.wait().unwrap();
        q2.wait().unwrap();
        server.drain();

        // The corrupted response still resolves Ok — the rot is silent —
        // but the shadow lane saw it.
        assert_eq!(r1.mode, NonlinearMode::Fast);
        let obs = server.observatory();
        assert!(obs.shadow_samples() >= 2);
        assert!(obs.envelope_violations() >= 2, "both fast completions violated");
        let dumps = server.take_flight_dumps();
        let dump = dumps
            .iter()
            .find(|d| d.reason == TriggerReason::EnvelopeViolation)
            .expect("an envelope violation dumped the flight recorder");
        let offender = dump
            .records
            .iter()
            .find(|r| r.id == q1.id())
            .expect("the offending request's timeline is in the dump");
        let shadow = offender.shadow.as_ref().expect("its shadow sample rode along");
        assert!(shadow.violation);
        assert!(!offender.attempts.is_empty());
        assert_eq!(offender.attempts.last().unwrap().mode, "fast");
        // The dump renders as JSON and as a Perfetto-loadable trace.
        assert!(dump.to_json().contains("flight_recorder/v1"));
        let trace = dump.to_chrome_trace();
        assert!(trace.contains("traceEvents"), "{trace}");
        assert!(trace.contains("envelope_violation"), "{trace}");
    }

    #[test]
    fn blocked_admission_is_capped_by_the_deadline() {
        let (backends, gate, _order) = GateBackend::fleet(1);
        let cfg = ServeConfig {
            queue_capacity: 1,
            backpressure: Backpressure::Block {
                timeout: Duration::from_secs(30),
            },
            brownout: no_brownout(),
            ..Default::default()
        };
        let server = Server::new(cfg, backends);
        let opener = server.submit(tagged(100, Priority::Standard)).unwrap();
        wait_in_flight(&server, 1);
        let queued = server.submit(tagged(1, Priority::Standard)).unwrap();
        // The queue is full and the array is held: this submission can
        // only block. Its 50ms budget expires long before the 30s block
        // timeout — it must come back as a deadline miss, quickly.
        let t0 = std::time::Instant::now();
        let err = server
            .submit(tagged(2, Priority::Standard).with_deadline(Duration::from_millis(50)))
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "the wait was capped by the deadline, not the block timeout"
        );
        GateBackend::release(&gate, 100);
        opener.wait().unwrap();
        queued.wait().unwrap();
        server.drain();
        let s = server.stats();
        assert_eq!(s.admitted, 2, "the expired submission was never admitted");
        assert_eq!(s.rejected, 1);
        assert_eq!(s.deadline_missed, 1, "booked as a deadline miss");
        assert_eq!(s.completed, 2);
        assert_eq!(s.submitted, s.admitted + s.rejected);
    }

    #[test]
    fn critical_is_never_shed_even_by_critical_arrivals() {
        let (backends, gate, _order) = GateBackend::fleet(1);
        let cfg = ServeConfig {
            queue_capacity: 2,
            backpressure: Backpressure::ShedOldest,
            brownout: no_brownout(),
            ..Default::default()
        };
        let server = Server::new(cfg, backends);
        let opener = server.submit(tagged(100, Priority::Critical)).unwrap();
        wait_in_flight(&server, 1);
        let c1 = server.submit(tagged(1, Priority::Critical)).unwrap();
        let c2 = server.submit(tagged(2, Priority::Critical)).unwrap();
        // Queue full of Critical: neither a Bulk nor another Critical
        // arrival may evict them — both fall back to QueueFull.
        assert_eq!(
            server.submit(tagged(3, Priority::Bulk)).unwrap_err(),
            ServeError::QueueFull
        );
        assert_eq!(
            server.submit(tagged(4, Priority::Critical)).unwrap_err(),
            ServeError::QueueFull
        );
        GateBackend::release(&gate, 100);
        for t in [&opener, &c1, &c2] {
            t.wait().unwrap();
        }
        server.drain();
        let s = server.stats();
        assert_eq!(s.per_priority[Priority::Critical.index()].shed, 0);
        assert_eq!(s.per_priority[Priority::Critical.index()].completed, 3);

        // A Standard arrival does evict queued Bulk, oldest first.
        let (backends, gate, _order) = GateBackend::fleet(1);
        let cfg = ServeConfig {
            queue_capacity: 2,
            backpressure: Backpressure::ShedOldest,
            brownout: no_brownout(),
            ..Default::default()
        };
        let server = Server::new(cfg, backends);
        let opener = server.submit(tagged(100, Priority::Standard)).unwrap();
        wait_in_flight(&server, 1);
        let b1 = server.submit(tagged(1, Priority::Bulk)).unwrap();
        let b2 = server.submit(tagged(2, Priority::Bulk)).unwrap();
        let s1 = server.submit(tagged(3, Priority::Standard)).unwrap();
        assert_eq!(b1.wait(), Err(ServeError::Shed), "oldest Bulk was evicted");
        GateBackend::release(&gate, 100);
        for t in [&opener, &b2, &s1] {
            t.wait().unwrap();
        }
        server.drain();
        let s = server.stats();
        assert_eq!(s.shed, 1);
        assert_eq!(s.per_priority[Priority::Bulk.index()].shed, 1);
    }

    #[test]
    fn lone_faulting_array_still_retries_its_own_work() {
        // Two arrays: one latched (every execution faults, quarantines
        // quickly), one with a transient burst. Once the latched array
        // quarantines, the transient array is the only runnable one —
        // requests it faulted on must retry on it rather than starve.
        let (latched, _heal) = ArrayFaultPlan::latched();
        let cfg = ServeConfig {
            max_attempts: 16,
            health: HealthPolicy {
                // The latched array (faulting every run) quarantines
                // fast; the single transient upset leaves the other
                // array serving.
                quarantine_strikes: 2,
                // Keep probes far away so the latched array stays out.
                probe_interval: Duration::from_secs(30),
                ..Default::default()
            },
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::transient(1), latched]);
        // Batches until the latched array has eaten enough work to
        // quarantine — one batch usually suffices, but worker scheduling
        // under machine load can starve it of jobs for a while.
        let mut submitted = 0u64;
        for _round in 0..20 {
            let tickets: Vec<_> = (0..8).map(|s| server.submit(req(s)).unwrap()).collect();
            submitted += 8;
            for t in tickets {
                t.wait().unwrap();
            }
            if server.stats().serving_arrays() == 1 {
                break;
            }
        }
        server.drain();
        let s = server.stats();
        assert_eq!(s.completed, submitted, "no request starved");
        assert!(s.retries >= 1, "faulted attempts were retried");
        assert_eq!(s.serving_arrays(), 1, "the latched array is quarantined");
    }

    #[test]
    fn deadline_gate_refuses_unmeetable_budgets_once_calibrated() {
        let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
        // Calibrate the service estimate with a batch of clean requests.
        let tickets: Vec<_> = (0..24).map(|s| server.submit(req(s)).unwrap()).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        // A nanosecond budget is now provably unmeetable: refused at
        // admission instead of being queued to miss.
        let err = server
            .submit(req(0).with_deadline(Duration::from_nanos(1)))
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineUnmeetable);
        server.drain();
        let s = server.stats();
        assert_eq!(s.deadline_rejected, 1);
        assert_eq!(s.deadline_missed, 0, "the doomed request never queued");
        assert_eq!(s.completed, 24);
    }

    #[test]
    fn per_tenant_and_per_priority_identities_hold_at_quiescence() {
        let cfg = ServeConfig {
            quotas: vec![
                (TenantId(1), TenantQuota { weight: 3, ..Default::default() }),
                (TenantId(2), TenantQuota { weight: 1, ..Default::default() }),
            ],
            ..Default::default()
        };
        let server = Server::simulated(
            cfg,
            vec![ArrayFaultPlan::transient(4), ArrayFaultPlan::None],
        );
        let mut tickets = Vec::new();
        for s in 0..30 {
            let tenant = TenantId(1 + s % 2);
            let prio = Priority::ALL[(s % 3) as usize];
            tickets.push(
                server
                    .submit(req(s).for_tenant(tenant).with_priority(prio))
                    .unwrap(),
            );
        }
        for t in tickets {
            t.wait().unwrap();
        }
        server.drain();
        let s = server.stats();
        assert_eq!(s.completed, 30);
        for ts in &s.per_tenant {
            assert_eq!(
                ts.admitted,
                ts.completed + ts.failed + ts.queued as u64 + ts.in_flight as u64,
                "tenant identity: {ts:?}"
            );
            assert_eq!(ts.submitted, ts.admitted + ts.rejected);
        }
        assert_eq!(s.tenant(TenantId(1)).unwrap().weight, 3);
        for (i, ps) in s.per_priority.iter().enumerate() {
            assert_eq!(
                ps.admitted,
                ps.completed + ps.failed + ps.queued as u64 + ps.in_flight as u64,
                "priority identity at {i}"
            );
        }
        let tenant_sum: u64 = s.per_tenant.iter().map(|t| t.admitted).sum();
        let prio_sum: u64 = s.per_priority.iter().map(|p| p.admitted).sum();
        assert_eq!(tenant_sum, s.admitted, "tenant rollup covers the fleet");
        assert_eq!(prio_sum, s.admitted, "priority rollup covers the fleet");
    }

    #[test]
    fn system_stats_carries_the_serve_snapshot() {
        let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
        let t = server.submit(req(1)).unwrap();
        t.wait().unwrap();
        server.drain();
        let sys = server.system_stats();
        let serve = sys.serve.expect("serve snapshot present");
        assert_eq!(serve.completed, 1);
        assert!(sys.faults.is_clean());
        assert!(serve.to_string().contains("1 admitted"));
    }
}
