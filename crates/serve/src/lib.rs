//! # bfp-serve — resilient serving runtime over the simulated fleet
//!
//! The paper's deployment argument is that a bfp8 multi-mode card can
//! hold up *production* Transformer serving. This crate supplies the
//! runtime side of that claim: a synchronous-core, thread-pooled server
//! that owns N simulated accelerator arrays and keeps answering —
//! correctly — while individual arrays fault.
//!
//! * **Admission control** — a bounded queue with configurable
//!   [`Backpressure`]: reject, shed-oldest, or block-with-timeout.
//! * **Deadlines** — per-request budgets propagate into the engine as a
//!   [`bfp_arith::cancel::CancelToken`]; an expired request never
//!   occupies an array past the next cancellation point and fails fast
//!   with [`ServeError::DeadlineExceeded`].
//! * **Fault handling** — executions run on the checksum-protected
//!   (ABFT) kernel. A detected single-element upset is *corrected in
//!   place* and served bit-exact; anything uncorrectable is *discarded*
//!   (never returned) and retried with capped backoff on a different
//!   array. Either way the detection is charged as a strike against the
//!   array's health.
//! * **Health state machine** — per array, `Healthy → Degraded →
//!   Quarantined → Probing` (see [`bfp_platform::ArrayHealth`]):
//!   quarantined arrays are drained and periodically re-certified by a
//!   golden self-test GEMM bit-checked against the softfp reference,
//!   then re-admitted.
//! * **Observability** — [`Server::stats`] snapshots the
//!   [`bfp_platform::ServeStats`] counters (admission, deadline misses,
//!   queue high-water, per-array health history) under one lock, so the
//!   identity `admitted == completed + failed + queued + in_flight`
//!   holds in every snapshot; [`Server::system_stats`] surfaces them
//!   through [`bfp_platform::SystemStats`]. Every [`ServeResponse`]
//!   carries a [`RequestTimeline`] (queue wait + per-attempt execution
//!   records), and [`Server::attach_tracer`] streams the same lifecycle
//!   as spans/instants into a [`bfp_telemetry::Tracer`] for Perfetto.
//!
//! The degradation ladder, in order: ABFT in-place correction (free) →
//! retry (same request, different array) → re-route (health-aware
//! dispatch) → quarantine (array level) → reject (request level, typed
//! error). Wrong bits are structurally impossible in a response: only
//! executions whose fault report carries no *uncorrected* detections
//! resolve tickets, and a corrected execution is provably bit-exact.
//!
//! ## Quickstart
//!
//! ```
//! use bfp_serve::{ArrayFaultPlan, ServeConfig, ServeRequest, Server};
//! use bfp_arith::matrix::MatF32;
//!
//! let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
//! let a = MatF32::from_fn(16, 16, |i, j| (i + j) as f32);
//! let b = MatF32::from_fn(16, 16, |i, j| (i as f32 - j as f32));
//! let ticket = server.submit(ServeRequest::new(a, b)).unwrap();
//! let resp = ticket.wait().unwrap();
//! assert_eq!(resp.out.rows(), 16);
//! server.drain();
//! ```

mod backend;
mod config;
mod error;
mod server;
mod ticket;

pub use backend::{ArrayBackend, ArrayFaultPlan, SimArrayBackend, Telemetry};
pub use config::{Backpressure, HealthPolicy, ServeConfig};
pub use error::ServeError;
pub use server::{ServeRequest, Server};
pub use ticket::{AttemptRecord, RequestTimeline, ServeResponse, Ticket};

// Re-export the observability vocabulary so downstream code does not
// need a direct bfp-platform / bfp-telemetry dependency to inspect
// snapshots, attach a tracer, or publish metrics.
pub use bfp_platform::{ArrayHealth, ArrayServeStats, HealthEvent, ServeStats};
pub use bfp_telemetry::{Registry, Tracer};

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_arith::matrix::MatF32;
    use std::time::Duration;

    fn req(seed: u64) -> ServeRequest {
        let a = MatF32::from_fn(16, 16, |i, j| ((i * 3 + j + seed as usize) % 5) as f32 - 2.0);
        let b = MatF32::from_fn(16, 16, |i, j| ((i + j * 7) % 5) as f32 - 2.0);
        ServeRequest::new(a, b)
    }

    #[test]
    fn serves_clean_requests_end_to_end() {
        let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
        let tickets: Vec<_> = (0..8)
            .map(|s| server.submit(req(s)).unwrap())
            .collect();
        for t in &tickets {
            let resp = t.wait().unwrap();
            assert_eq!(resp.attempts, 1);
            assert!(resp.modelled_s > 0.0);
        }
        server.drain();
        let s = server.stats();
        assert_eq!(s.submitted, 8);
        assert_eq!(s.admitted, 8);
        assert_eq!(s.completed, 8);
        assert_eq!(s.failed, 0);
        assert_eq!(s.serving_arrays(), 2);
    }

    #[test]
    fn reject_backpressure_returns_queue_full() {
        // Single array with a storm of submissions into a tiny queue:
        // some must be refused, and the refusals are typed.
        let cfg = ServeConfig {
            queue_capacity: 1,
            backpressure: Backpressure::Reject,
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::None]);
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut tickets = Vec::new();
        for s in 0..64 {
            match server.submit(req(s)) {
                Ok(t) => {
                    admitted += 1;
                    tickets.push(t);
                }
                Err(ServeError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected refusal: {e}"),
            }
        }
        server.drain();
        let s = server.stats();
        assert_eq!(s.admitted, admitted);
        assert_eq!(s.rejected, rejected);
        assert_eq!(s.submitted, admitted + rejected);
        assert_eq!(s.completed, admitted);
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn shed_oldest_evicts_and_block_times_out() {
        let cfg = ServeConfig {
            queue_capacity: 1,
            backpressure: Backpressure::ShedOldest,
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::None]);
        let tickets: Vec<_> = (0..32)
            .map(|s| server.submit(req(s)).unwrap())
            .collect();
        server.drain();
        let s = server.stats();
        assert_eq!(s.admitted, 32);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.completed + s.failed, s.admitted);
        assert_eq!(s.failed, s.shed);
        let shed_seen = tickets
            .iter()
            .filter(|t| t.wait() == Err(ServeError::Shed))
            .count() as u64;
        assert_eq!(shed_seen, s.shed);

        // Block-with-timeout: a full queue on an effectively-stuck fleet
        // turns into AdmissionTimeout, not an indefinite hang.
        let cfg = ServeConfig {
            queue_capacity: 1,
            backpressure: Backpressure::Block {
                timeout: Duration::from_millis(5),
            },
            max_attempts: 1,
            ..Default::default()
        };
        // A latched-faulty single array: requests fail (exhausted) but
        // slowly; keep the queue full from this thread.
        let (plan, _heal) = ArrayFaultPlan::latched();
        let server = Server::simulated(cfg, vec![plan]);
        let mut timed_out = false;
        for s in 0..64 {
            match server.submit(req(s)) {
                Ok(_) | Err(ServeError::AdmissionTimeout) => {
                    timed_out |= matches!(server.submit(req(s)), Err(ServeError::AdmissionTimeout));
                }
                Err(e) => panic!("unexpected refusal: {e}"),
            }
            if timed_out {
                break;
            }
        }
        assert!(timed_out, "blocked admission must eventually time out");
    }

    #[test]
    fn zero_budget_requests_miss_their_deadline() {
        let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None]);
        let t = server
            .submit(ServeRequest::with_budget(
                MatF32::from_fn(16, 16, |_, _| 1.0),
                MatF32::from_fn(16, 16, |_, _| 1.0),
                Duration::ZERO,
            ))
            .unwrap();
        assert_eq!(t.wait(), Err(ServeError::DeadlineExceeded));
        let s = server.stats();
        assert_eq!(s.deadline_missed, 1);
        assert_eq!(s.failed, 1);
    }

    #[test]
    fn shutdown_fails_queued_requests_with_typed_error() {
        let mut server = Server::simulated(
            ServeConfig {
                queue_capacity: 128,
                ..Default::default()
            },
            vec![ArrayFaultPlan::None],
        );
        let tickets: Vec<_> = (0..32)
            .map(|s| server.submit(req(s)).unwrap())
            .collect();
        server.shutdown();
        assert!(matches!(server.submit(req(0)), Err(ServeError::Shutdown)));
        let s = server.stats();
        assert_eq!(s.completed + s.failed, s.admitted);
        for t in tickets {
            let r = t.wait();
            assert!(
                r.is_ok() || r == Err(ServeError::Shutdown),
                "unexpected outcome: {r:?}"
            );
        }
    }

    #[test]
    fn response_timeline_records_the_lifecycle() {
        // Single array with one transient upset: ABFT localizes and
        // repairs it in place, so the very first attempt serves the
        // exact bits — no discard, no retry — while the correction
        // still strikes the array's health accounting.
        let cfg = ServeConfig {
            max_attempts: 4,
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::transient(1)]);
        let resp = server.submit(req(0)).unwrap().wait().unwrap();
        assert_eq!(resp.attempts, 1, "corrected in place, never retried");
        assert_eq!(resp.timeline.attempts.len(), 1);
        assert!(resp.timeline.queue_wait_s >= 0.0);
        assert!(resp.timeline.total_s <= resp.wall_s + 1e-9);
        let last = resp.timeline.attempts.last().unwrap();
        assert!(!last.faulted, "a corrected attempt is servable");
        assert_eq!(last.array, resp.array);
        assert!((last.modelled_s - resp.modelled_s).abs() < 1e-12);
        assert!(resp.timeline.overhead_s() >= 0.0);
        server.drain();
        let s = server.stats();
        assert_eq!(s.retries, 0);
        assert_eq!(
            s.degraded_executions, 1,
            "the detection still counts against health"
        );
        assert_eq!(s.per_array[0].faults.abft_detections, 1);
        assert_eq!(s.per_array[0].faults.abft_corrections, 1);
    }

    #[test]
    fn uncorrectable_fault_is_discarded_and_retried_after_repair() {
        // A latched, multi-element defect defeats ABFT correction: every
        // attempt on the sick array is discarded. Repairing the array
        // (clearing the latch) lets a later retry serve cleanly, and the
        // timeline shows the discarded attempts.
        use std::sync::atomic::Ordering;
        let (plan, heal) = ArrayFaultPlan::latched();
        let cfg = ServeConfig {
            max_attempts: 64,
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![plan]);
        let ticket = server.submit(req(0)).unwrap();
        while server.stats().retries == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        heal.store(false, Ordering::Relaxed);
        let resp = ticket.wait().unwrap();
        assert!(resp.attempts >= 2, "at least one attempt was discarded");
        let (clean, discarded) = resp.timeline.attempts.split_last().unwrap();
        assert!(!clean.faulted, "the accepted attempt is clean");
        for a in discarded {
            assert!(a.faulted, "earlier attempts were discarded as faulted");
        }
        server.drain();
    }

    #[test]
    fn attached_tracer_sees_request_lifecycle_spans() {
        let tracer = bfp_telemetry::Tracer::new();
        let cfg = ServeConfig {
            max_attempts: 4,
            ..Default::default()
        };
        // Both arrays carry a transient credit, so whichever array runs
        // the very first execution flags it: at least one fault instant
        // is guaranteed regardless of worker scheduling (ABFT corrects
        // the upset, so the attempt still serves — no retry needed).
        let server = Server::simulated(
            cfg,
            vec![ArrayFaultPlan::transient(1), ArrayFaultPlan::transient(1)],
        );
        assert!(server.attach_tracer(tracer.clone()));
        assert!(!server.attach_tracer(bfp_telemetry::Tracer::new()));
        let tickets: Vec<_> = (0..4).map(|s| server.submit(req(s)).unwrap()).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        server.drain();
        let events = tracer.drain();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("serve.queue_wait"), 4, "one wait span per request");
        assert!(
            count("serve.execute") >= 4,
            "one execution per request (corrected upsets need no retry)"
        );
        assert!(count("serve.fault") >= 1, "the corrected upset is an instant");
        assert!(count("serve.queue_depth") >= 4);
        let exec = events.iter().find(|e| e.name == "serve.execute").unwrap();
        assert!(exec.args.iter().any(|(k, _)| *k == "req"));
        assert!(exec.args.iter().any(|(k, _)| *k == "array"));
        // The trace exports as Chrome JSON.
        let json = tracer.chrome_json();
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn stats_identity_holds_under_concurrent_submit_and_drain() {
        // admitted == completed + failed + queued + in_flight must hold
        // in EVERY snapshot, including ones racing dispatch, retry
        // requeue, and resolution. A faulty array keeps the retry path
        // hot while we hammer stats() from the submitting thread.
        let cfg = ServeConfig {
            queue_capacity: 256,
            max_attempts: 4,
            ..Default::default()
        };
        let server = Server::simulated(
            cfg,
            vec![ArrayFaultPlan::transient(8), ArrayFaultPlan::None],
        );
        let check = |s: &ServeStats| {
            assert_eq!(
                s.admitted,
                s.completed + s.failed + s.queued as u64 + s.in_flight as u64,
                "identity broken: {s}"
            );
        };
        let mut tickets = Vec::new();
        for s in 0..48 {
            tickets.push(server.submit(req(s)).unwrap());
            check(&server.stats());
        }
        loop {
            let s = server.stats();
            check(&s);
            if s.completed + s.failed == s.admitted && s.queued == 0 && s.in_flight == 0 {
                break;
            }
            std::thread::yield_now();
        }
        server.drain();
        let s = server.stats();
        check(&s);
        assert_eq!(s.completed, 48);
    }

    #[test]
    fn system_stats_carries_the_serve_snapshot() {
        let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
        let t = server.submit(req(1)).unwrap();
        t.wait().unwrap();
        server.drain();
        let sys = server.system_stats();
        let serve = sys.serve.expect("serve snapshot present");
        assert_eq!(serve.completed, 1);
        assert!(sys.faults.is_clean());
        assert!(serve.to_string().contains("1 admitted"));
    }
}
