//! # bfp-serve — resilient serving runtime over the simulated fleet
//!
//! The paper's deployment argument is that a bfp8 multi-mode card can
//! hold up *production* Transformer serving. This crate supplies the
//! runtime side of that claim: a synchronous-core, thread-pooled server
//! that owns N simulated accelerator arrays and keeps answering —
//! correctly — while individual arrays fault.
//!
//! * **Admission control** — a bounded queue with configurable
//!   [`Backpressure`]: reject, shed-oldest, or block-with-timeout.
//! * **Deadlines** — per-request budgets propagate into the engine as a
//!   [`bfp_arith::cancel::CancelToken`]; an expired request never
//!   occupies an array past the next cancellation point and fails fast
//!   with [`ServeError::DeadlineExceeded`].
//! * **Fault handling** — executions flagged by the detection layer are
//!   *discarded* (never returned), retried with capped backoff on a
//!   different array, and charged as strikes against the array's health.
//! * **Health state machine** — per array, `Healthy → Degraded →
//!   Quarantined → Probing` (see [`bfp_platform::ArrayHealth`]):
//!   quarantined arrays are drained and periodically re-certified by a
//!   golden self-test GEMM bit-checked against the softfp reference,
//!   then re-admitted.
//! * **Observability** — [`Server::stats`] snapshots the
//!   [`bfp_platform::ServeStats`] counters (admission, deadline misses,
//!   queue high-water, per-array health history), and
//!   [`Server::system_stats`] surfaces them through
//!   [`bfp_platform::SystemStats`].
//!
//! The degradation ladder, in order: retry (same request, different
//! array) → re-route (health-aware dispatch) → quarantine (array level)
//! → reject (request level, typed error). Wrong bits are structurally
//! impossible in a response: only executions with a clean fault report
//! resolve tickets.
//!
//! ## Quickstart
//!
//! ```
//! use bfp_serve::{ArrayFaultPlan, ServeConfig, ServeRequest, Server};
//! use bfp_arith::matrix::MatF32;
//!
//! let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
//! let a = MatF32::from_fn(16, 16, |i, j| (i + j) as f32);
//! let b = MatF32::from_fn(16, 16, |i, j| (i as f32 - j as f32));
//! let ticket = server.submit(ServeRequest::new(a, b)).unwrap();
//! let resp = ticket.wait().unwrap();
//! assert_eq!(resp.out.rows(), 16);
//! server.drain();
//! ```

mod backend;
mod config;
mod error;
mod server;
mod ticket;

pub use backend::{ArrayBackend, ArrayFaultPlan, SimArrayBackend, Telemetry};
pub use config::{Backpressure, HealthPolicy, ServeConfig};
pub use error::ServeError;
pub use server::{ServeRequest, Server};
pub use ticket::{ServeResponse, Ticket};

// Re-export the observability vocabulary so downstream code does not
// need a direct bfp-platform dependency to inspect snapshots.
pub use bfp_platform::{ArrayHealth, ArrayServeStats, HealthEvent, ServeStats};

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_arith::matrix::MatF32;
    use std::time::Duration;

    fn req(seed: u64) -> ServeRequest {
        let a = MatF32::from_fn(16, 16, |i, j| ((i * 3 + j + seed as usize) % 5) as f32 - 2.0);
        let b = MatF32::from_fn(16, 16, |i, j| ((i + j * 7) % 5) as f32 - 2.0);
        ServeRequest::new(a, b)
    }

    #[test]
    fn serves_clean_requests_end_to_end() {
        let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
        let tickets: Vec<_> = (0..8)
            .map(|s| server.submit(req(s)).unwrap())
            .collect();
        for t in &tickets {
            let resp = t.wait().unwrap();
            assert_eq!(resp.attempts, 1);
            assert!(resp.modelled_s > 0.0);
        }
        server.drain();
        let s = server.stats();
        assert_eq!(s.submitted, 8);
        assert_eq!(s.admitted, 8);
        assert_eq!(s.completed, 8);
        assert_eq!(s.failed, 0);
        assert_eq!(s.serving_arrays(), 2);
    }

    #[test]
    fn reject_backpressure_returns_queue_full() {
        // Single array with a storm of submissions into a tiny queue:
        // some must be refused, and the refusals are typed.
        let cfg = ServeConfig {
            queue_capacity: 1,
            backpressure: Backpressure::Reject,
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::None]);
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut tickets = Vec::new();
        for s in 0..64 {
            match server.submit(req(s)) {
                Ok(t) => {
                    admitted += 1;
                    tickets.push(t);
                }
                Err(ServeError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected refusal: {e}"),
            }
        }
        server.drain();
        let s = server.stats();
        assert_eq!(s.admitted, admitted);
        assert_eq!(s.rejected, rejected);
        assert_eq!(s.submitted, admitted + rejected);
        assert_eq!(s.completed, admitted);
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn shed_oldest_evicts_and_block_times_out() {
        let cfg = ServeConfig {
            queue_capacity: 1,
            backpressure: Backpressure::ShedOldest,
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::None]);
        let tickets: Vec<_> = (0..32)
            .map(|s| server.submit(req(s)).unwrap())
            .collect();
        server.drain();
        let s = server.stats();
        assert_eq!(s.admitted, 32);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.completed + s.failed, s.admitted);
        assert_eq!(s.failed, s.shed);
        let shed_seen = tickets
            .iter()
            .filter(|t| t.wait() == Err(ServeError::Shed))
            .count() as u64;
        assert_eq!(shed_seen, s.shed);

        // Block-with-timeout: a full queue on an effectively-stuck fleet
        // turns into AdmissionTimeout, not an indefinite hang.
        let cfg = ServeConfig {
            queue_capacity: 1,
            backpressure: Backpressure::Block {
                timeout: Duration::from_millis(5),
            },
            max_attempts: 1,
            ..Default::default()
        };
        // A latched-faulty single array: requests fail (exhausted) but
        // slowly; keep the queue full from this thread.
        let (plan, _heal) = ArrayFaultPlan::latched();
        let server = Server::simulated(cfg, vec![plan]);
        let mut timed_out = false;
        for s in 0..64 {
            match server.submit(req(s)) {
                Ok(_) | Err(ServeError::AdmissionTimeout) => {
                    timed_out |= matches!(server.submit(req(s)), Err(ServeError::AdmissionTimeout));
                }
                Err(e) => panic!("unexpected refusal: {e}"),
            }
            if timed_out {
                break;
            }
        }
        assert!(timed_out, "blocked admission must eventually time out");
    }

    #[test]
    fn zero_budget_requests_miss_their_deadline() {
        let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None]);
        let t = server
            .submit(ServeRequest::with_budget(
                MatF32::from_fn(16, 16, |_, _| 1.0),
                MatF32::from_fn(16, 16, |_, _| 1.0),
                Duration::ZERO,
            ))
            .unwrap();
        assert_eq!(t.wait(), Err(ServeError::DeadlineExceeded));
        let s = server.stats();
        assert_eq!(s.deadline_missed, 1);
        assert_eq!(s.failed, 1);
    }

    #[test]
    fn shutdown_fails_queued_requests_with_typed_error() {
        let mut server = Server::simulated(
            ServeConfig {
                queue_capacity: 128,
                ..Default::default()
            },
            vec![ArrayFaultPlan::None],
        );
        let tickets: Vec<_> = (0..32)
            .map(|s| server.submit(req(s)).unwrap())
            .collect();
        server.shutdown();
        assert!(matches!(server.submit(req(0)), Err(ServeError::Shutdown)));
        let s = server.stats();
        assert_eq!(s.completed + s.failed, s.admitted);
        for t in tickets {
            let r = t.wait();
            assert!(
                r.is_ok() || r == Err(ServeError::Shutdown),
                "unexpected outcome: {r:?}"
            );
        }
    }

    #[test]
    fn system_stats_carries_the_serve_snapshot() {
        let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
        let t = server.submit(req(1)).unwrap();
        t.wait().unwrap();
        server.drain();
        let sys = server.system_stats();
        let serve = sys.serve.expect("serve snapshot present");
        assert_eq!(serve.completed, 1);
        assert!(sys.faults.is_clean());
        assert!(serve.to_string().contains("1 admitted"));
    }
}
