//! The serve-time observatory: SLO burn-rate tracking per
//! tenant/priority stream, the sampled shadow-execution lane checking
//! fast-kernel outputs against the exact oracle, and the anomaly
//! flight recorder that dumps recent request timelines when a trigger
//! fires.
//!
//! The observatory lives beside the scheduler, not inside it: the
//! runtime calls [`Observatory::record_completion`] with each resolved
//! request (a non-blocking ring push plus an O(1) burn-rate bucket
//! update), and everything heavier — the exact-oracle shadow re-run,
//! dump serialization — happens off the scheduler lock or only when a
//! trigger actually fires. Dumps are held in memory until the embedder
//! drains them ([`crate::Server::take_flight_dumps`]); benches write
//! them to disk as JSON + Perfetto trace.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bfp_arith::matrix::MatF32;
use bfp_arith::ulp::{EnvelopeStats, UlpEnvelope};
use bfp_core::prelude::NonlinearMode;
use bfp_telemetry::recorder::{FlightDump, FlightRecord, FlightRecorder, TriggerReason};
use bfp_telemetry::registry::{series, Registry};
use bfp_telemetry::slo::BurnTracker;
use bfp_telemetry::ShadowSample;

use crate::backend::{reference_bits, ServeOp};

/// Serve-time envelope for a fast-mode output against the exact
/// oracle. A fast `GemmGelu` differs from exact only in the GELU
/// epilogue, so the bound is the pinned fast-GELU envelope (16 ulp,
/// 1.5e-6 abs floor on the exact adder — see DESIGN "Fast nonlinear
/// kernels") with 2× headroom; a bare `Gemm` is mode-independent and
/// trivially inside it.
pub const SHADOW_ENVELOPE: UlpEnvelope = UlpEnvelope::new(32, 3.0e-6);

/// Observatory knobs, embedded in [`crate::ServeConfig`].
#[derive(Debug, Clone)]
pub struct ObservatoryConfig {
    /// Master switch. Off, the runtime never touches the recorder, the
    /// burn trackers, or the shadow lane.
    pub enabled: bool,
    /// Flight-recorder ring capacity (most recent completed requests).
    pub recorder_capacity: usize,
    /// Minimum spacing between flight-recorder dumps.
    pub dump_cooldown: Duration,
    /// Shadow-execute one in `shadow_every` clean fast-mode completions
    /// against the exact oracle (`0` disables the shadow lane).
    pub shadow_every: u64,
    /// SLO error budget: allowed deadline-miss fraction per
    /// tenant × priority stream.
    pub slo_budget: f64,
    /// Burn-rate at or above which (on every window) a stream trips the
    /// flight recorder.
    pub burn_alert: f64,
    /// Burn-rate windows, seconds. Serve benches run on second
    /// timescales, so the default ladder is much faster than wall-clock
    /// SLO practice.
    pub burn_windows_s: Vec<f64>,
}

impl Default for ObservatoryConfig {
    fn default() -> Self {
        ObservatoryConfig {
            enabled: true,
            recorder_capacity: 128,
            dump_cooldown: Duration::from_millis(250),
            shadow_every: 0,
            slo_budget: 0.05,
            burn_alert: 4.0,
            burn_windows_s: vec![0.5, 5.0],
        }
    }
}

/// Aggregated shadow-lane error statistics (lock-free counters; ulp
/// maxima monotone under CAS-free `fetch_max`).
#[derive(Debug, Default)]
struct ShadowCounters {
    tick: AtomicU64,
    samples: AtomicU64,
    violations: AtomicU64,
    max_ulp: AtomicU64,
    /// Worst |error| and worst SQNR, as f64 bit patterns (monotone via
    /// compare-exchange loops would be overkill — these are read for
    /// gauges only, so last-writer-wins on a race is acceptable).
    worst_abs_bits: AtomicU64,
    worst_sqnr_bits: AtomicU64,
}

/// The observatory state owned by a running [`crate::Server`].
pub struct Observatory {
    cfg: ObservatoryConfig,
    epoch: Instant,
    recorder: FlightRecorder,
    /// Burn tracker per (tenant, priority-index) stream.
    burn: Mutex<BTreeMap<(u64, usize), BurnTracker>>,
    dumps: Mutex<Vec<FlightDump>>,
    shadow: ShadowCounters,
    triggers_suppressed: AtomicU64,
}

impl Observatory {
    /// A fresh observatory; `epoch` anchors the server clock that all
    /// burn windows and dump timestamps are expressed in.
    pub fn new(cfg: ObservatoryConfig, epoch: Instant) -> Self {
        let recorder = FlightRecorder::new(
            cfg.recorder_capacity.max(1),
            cfg.dump_cooldown.as_secs_f64(),
        );
        Observatory {
            cfg,
            epoch,
            recorder,
            burn: Mutex::new(BTreeMap::new()),
            dumps: Mutex::new(Vec::new()),
            shadow: ShadowCounters::default(),
            triggers_suppressed: AtomicU64::new(0),
        }
    }

    /// Whether the observatory is live.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Seconds on the server clock.
    pub fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Seconds from the server epoch to `t` (0 for pre-epoch instants).
    pub fn rel_s(&self, t: Instant) -> f64 {
        t.saturating_duration_since(self.epoch).as_secs_f64()
    }

    /// Whether this clean fast-mode completion should be re-run through
    /// the exact oracle (every `shadow_every`-th ticks the lane).
    pub fn should_shadow(&self, mode: NonlinearMode) -> bool {
        if !self.cfg.enabled || self.cfg.shadow_every == 0 || mode != NonlinearMode::Fast {
            return false;
        }
        self.shadow.tick.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.cfg.shadow_every)
    }

    /// Shadow-execute: compare a fast-mode output against the exact
    /// oracle under [`SHADOW_ENVELOPE`]. Runs the full exact reference
    /// — callers invoke it off the scheduler lock.
    pub fn shadow_sample(
        &self,
        a: &MatF32,
        b: &MatF32,
        op: ServeOp,
        fast_out: &MatF32,
    ) -> ShadowSample {
        let exact = reference_bits(a, b, op, NonlinearMode::Exact);
        let mut stats = EnvelopeStats::new();
        for (got, want) in fast_out.data().iter().zip(exact.data()) {
            stats.record(*got, *want, &SHADOW_ENVELOPE);
        }
        let sample = ShadowSample {
            max_ulp: stats.max_ulp,
            max_abs: stats.max_abs as f64,
            sqnr_db: stats.sqnr_db(),
            violation: stats.violations > 0,
        };
        self.shadow.samples.fetch_add(1, Ordering::Relaxed);
        self.shadow.max_ulp.fetch_max(sample.max_ulp, Ordering::Relaxed);
        self.shadow
            .worst_abs_bits
            .store(sample.max_abs.to_bits(), Ordering::Relaxed);
        self.shadow
            .worst_sqnr_bits
            .store(sample.sqnr_db.to_bits(), Ordering::Relaxed);
        if sample.violation {
            self.shadow.violations.fetch_add(1, Ordering::Relaxed);
        }
        sample
    }

    /// Shadow-lane envelope violations so far.
    pub fn envelope_violations(&self) -> u64 {
        self.shadow.violations.load(Ordering::Relaxed)
    }

    /// Shadow-lane samples taken so far.
    pub fn shadow_samples(&self) -> u64 {
        self.shadow.samples.load(Ordering::Relaxed)
    }

    /// Completed-request records pushed into the flight ring so far.
    pub fn records_pushed(&self) -> u64 {
        self.recorder.pushed()
    }

    /// Records dropped because their ring slot was contended (the push
    /// is non-blocking by design).
    pub fn records_dropped(&self) -> u64 {
        self.recorder.dropped()
    }

    /// Record one resolved request: ring push, burn-rate update for its
    /// stream, and a burn-rate trigger check. `bad` marks SLO budget
    /// consumption (deadline misses and sheds).
    pub fn record_completion(&self, record: FlightRecord, bad: bool) {
        if !self.cfg.enabled {
            return;
        }
        let now_s = self.now_s();
        let key = (record.tenant as u64, priority_index(&record.priority));
        self.recorder.push(record);
        let mut burn = self.burn.lock().unwrap();
        let tracker = burn
            .entry(key)
            .or_insert_with(|| BurnTracker::with_windows(self.cfg.slo_budget, &self.cfg.burn_windows_s));
        tracker.record(now_s, bad);
        let alerting = tracker.alerting(self.cfg.burn_alert, now_s);
        let burn_now = tracker.max_burn(now_s);
        drop(burn);
        if alerting {
            self.trigger(
                TriggerReason::BurnRate,
                format!("tenant {} burn {:.1}x budget", key.0, burn_now),
            );
        }
    }

    /// Fire the flight recorder (rate-limited by the dump cooldown);
    /// the dump is queued for [`Self::take_dumps`].
    pub fn trigger(&self, reason: TriggerReason, detail: impl Into<String>) {
        if !self.cfg.enabled {
            return;
        }
        match self.recorder.trigger(reason, self.now_s(), detail) {
            Some(dump) => self.dumps.lock().unwrap().push(dump),
            None => {
                self.triggers_suppressed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drain the queued flight-recorder dumps.
    pub fn take_dumps(&self) -> Vec<FlightDump> {
        std::mem::take(&mut *self.dumps.lock().unwrap())
    }

    /// Publish the observatory's state through `reg`: multi-window
    /// burn-rate gauges per tenant/priority stream, shadow-lane
    /// counters, and recorder health.
    pub fn publish(&self, reg: &Registry) {
        let now_s = self.now_s();
        for ((tenant, prio), tracker) in self.burn.lock().unwrap().iter() {
            let t = tenant.to_string();
            let p = priority_label(*prio);
            tracker.publish(reg, "serve_slo_burn_rate", &[("tenant", &t), ("priority", p)], now_s);
        }
        let sc = &self.shadow;
        reg.counter("serve_shadow_samples_total")
            .add(sc.samples.load(Ordering::Relaxed).saturating_sub(
                reg.counter("serve_shadow_samples_total").get(),
            ));
        reg.counter("serve_envelope_violations_total")
            .add(sc.violations.load(Ordering::Relaxed).saturating_sub(
                reg.counter("serve_envelope_violations_total").get(),
            ));
        reg.gauge("serve_shadow_max_ulp")
            .set(sc.max_ulp.load(Ordering::Relaxed) as f64);
        reg.gauge("serve_shadow_worst_abs")
            .set(f64::from_bits(sc.worst_abs_bits.load(Ordering::Relaxed)));
        reg.gauge("serve_shadow_last_sqnr_db")
            .set(f64::from_bits(sc.worst_sqnr_bits.load(Ordering::Relaxed)));
        reg.gauge(&series("serve_flight_records", &[("state", "pushed")]))
            .set(self.recorder.pushed() as f64);
        reg.gauge(&series("serve_flight_records", &[("state", "dropped")]))
            .set(self.recorder.dropped() as f64);
        reg.gauge("serve_flight_dumps_taken")
            .set(self.recorder.dumps_taken() as f64);
        reg.gauge("serve_flight_triggers_suppressed")
            .set(self.triggers_suppressed.load(Ordering::Relaxed) as f64);
    }
}

fn priority_index(label: &str) -> usize {
    match label {
        "bulk" => 0,
        "critical" => 2,
        _ => 1,
    }
}

fn priority_label(index: usize) -> &'static str {
    match index {
        0 => "bulk",
        2 => "critical",
        _ => "standard",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_telemetry::recorder::FlightAttempt;

    fn record(tenant: usize, priority: &str, missed: bool) -> FlightRecord {
        FlightRecord {
            id: 1,
            tenant,
            priority: priority.into(),
            start_s: 0.0,
            queue_wait_s: 0.0,
            total_s: 0.001,
            deadline_missed: missed,
            outcome: if missed { "deadline_miss" } else { "ok" }.into(),
            attempts: vec![FlightAttempt {
                array: 0,
                modelled_s: 0.001,
                faulted: false,
                mode: "exact".into(),
            }],
            shadow: None,
        }
    }

    #[test]
    fn sustained_misses_trip_the_burn_trigger() {
        let obs = Observatory::new(
            ObservatoryConfig {
                dump_cooldown: Duration::from_secs(3600),
                ..Default::default()
            },
            Instant::now(),
        );
        // 100% deadline misses against a 5% budget: burn 20x on every
        // window → exactly one dump (cooldown suppresses the rest).
        for _ in 0..50 {
            obs.record_completion(record(3, "standard", true), true);
        }
        let dumps = obs.take_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, TriggerReason::BurnRate);
        assert!(dumps[0].detail.contains("tenant 3"), "{}", dumps[0].detail);
        assert!(!dumps[0].records.is_empty());
        assert!(obs.take_dumps().is_empty(), "drained");
    }

    #[test]
    fn clean_traffic_never_triggers() {
        let obs = Observatory::new(ObservatoryConfig::default(), Instant::now());
        for _ in 0..200 {
            obs.record_completion(record(0, "critical", false), false);
        }
        assert!(obs.take_dumps().is_empty());
    }

    #[test]
    fn disabled_observatory_is_inert() {
        let obs = Observatory::new(
            ObservatoryConfig {
                enabled: false,
                ..Default::default()
            },
            Instant::now(),
        );
        for _ in 0..50 {
            obs.record_completion(record(0, "bulk", true), true);
        }
        obs.trigger(TriggerReason::EnvelopeViolation, "ignored");
        assert!(obs.take_dumps().is_empty());
        assert!(!obs.should_shadow(NonlinearMode::Fast));
    }

    #[test]
    fn shadow_lane_samples_one_in_n_fast_requests() {
        let obs = Observatory::new(
            ObservatoryConfig {
                shadow_every: 4,
                ..Default::default()
            },
            Instant::now(),
        );
        let fast: Vec<bool> = (0..16).map(|_| obs.should_shadow(NonlinearMode::Fast)).collect();
        assert_eq!(fast.iter().filter(|&&s| s).count(), 4);
        assert!(!obs.should_shadow(NonlinearMode::Exact), "exact never shadows");
    }

    #[test]
    fn shadow_sample_accepts_fast_gelu_within_envelope() {
        let obs = Observatory::new(
            ObservatoryConfig {
                shadow_every: 1,
                ..Default::default()
            },
            Instant::now(),
        );
        let a = MatF32::from_fn(12, 8, |i, j| ((i * 5 + j * 3) % 13) as f32 * 0.21 - 1.3);
        let b = MatF32::from_fn(8, 10, |i, j| ((i * 7 + j) % 11) as f32 * 0.17 - 0.8);
        let fast = reference_bits(&a, &b, ServeOp::GemmGelu, NonlinearMode::Fast);
        let s = obs.shadow_sample(&a, &b, ServeOp::GemmGelu, &fast);
        assert!(!s.violation, "fast GELU stays inside the pinned envelope");
        assert_eq!(obs.shadow_samples(), 1);
        assert_eq!(obs.envelope_violations(), 0);

        // A corrupted output violates and is counted.
        let mut bad = fast.clone();
        let v = bad.get(0, 0);
        bad.set(0, 0, v + 1.0);
        let s = obs.shadow_sample(&a, &b, ServeOp::GemmGelu, &bad);
        assert!(s.violation);
        assert_eq!(obs.envelope_violations(), 1);
    }

    #[test]
    fn publish_exports_burn_and_shadow_series() {
        let obs = Observatory::new(ObservatoryConfig::default(), Instant::now());
        obs.record_completion(record(2, "critical", false), false);
        let reg = Registry::new();
        obs.publish(&reg);
        obs.publish(&reg); // idempotent counters (no double-count)
        let text = reg.snapshot().to_prometheus_text();
        assert!(
            text.contains("serve_slo_burn_rate{tenant=\"2\",priority=\"critical\",window="),
            "{text}"
        );
        assert!(text.contains("serve_shadow_samples_total 0"), "{text}");
        assert!(text.contains("serve_flight_records{state=\"pushed\"} 1"), "{text}");
    }
}
