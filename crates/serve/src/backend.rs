//! The execution surface the runtime schedules onto: one backend per
//! array, plus the simulated implementation with scripted per-array
//! fault injection.
//!
//! Why not the hook-based injector in `bfp-faults`? Its session is
//! process-global (one plan for every thread), so it cannot model "array
//! 3 is failing while arrays 0–2 are clean" under the fleet's concurrent
//! workers. The serving runtime instead scripts faults *per backend*:
//! an [`ArrayFaultPlan`] decides whether an execution is corrupted, and
//! a corrupted execution always reports itself through the detected
//! counters — the latched-ECC story, where the protection layer flags
//! the upset but cannot repair it. The runtime discards every flagged
//! output, which is what makes the zero-wrong-bit guarantee structural
//! rather than probabilistic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bfp_arith::cancel::CancelToken;
use bfp_arith::error::ArithError;
use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_core::{fast_matmul_f32, ParallelPolicy};
use bfp_faults::{FaultCounters, FaultReport};

/// What one execution reports back besides its output.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Fault events during this execution. `detected > 0` means the
    /// output is suspect and the runtime must discard it.
    pub faults: FaultReport,
    /// Modelled array-occupancy seconds at the calibrated operating
    /// point (independent of host scheduling noise).
    pub modelled_s: f64,
}

/// One array's execution engine. `execute` runs a bfp8 GEMM under a
/// cancel/deadline token; implementations must *flag* corrupted outputs
/// via `Telemetry::faults.detected` rather than silently returning them.
pub trait ArrayBackend: Send {
    /// Execute `a × b`, honouring `cancel` between phases.
    fn execute(
        &mut self,
        a: &MatF32,
        b: &MatF32,
        cancel: &CancelToken,
    ) -> Result<(MatF32, Telemetry), ArithError>;
}

/// Scripted per-array fault behaviour for [`SimArrayBackend`].
#[derive(Debug, Clone, Default)]
pub enum ArrayFaultPlan {
    /// Fault-free array.
    #[default]
    None,
    /// Latched defect: every execution faults while the flag is `true`.
    /// Clearing the flag models a repair (e.g. partial reconfiguration),
    /// after which quarantine probes start passing.
    Latched(Arc<AtomicBool>),
    /// Transient burst: the next `n` executions fault, then the array
    /// is clean again.
    Transient(Arc<AtomicU64>),
}

impl ArrayFaultPlan {
    /// A latched plan plus the shared switch that heals it.
    pub fn latched() -> (Self, Arc<AtomicBool>) {
        let flag = Arc::new(AtomicBool::new(true));
        (ArrayFaultPlan::Latched(flag.clone()), flag)
    }

    /// A transient plan faulting the next `n` executions.
    pub fn transient(n: u64) -> Self {
        ArrayFaultPlan::Transient(Arc::new(AtomicU64::new(n)))
    }

    /// Whether the next execution faults (consumes one transient credit).
    fn fires(&self) -> bool {
        match self {
            ArrayFaultPlan::None => false,
            ArrayFaultPlan::Latched(flag) => flag.load(Ordering::Relaxed),
            ArrayFaultPlan::Transient(left) => left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok(),
        }
    }
}

/// Simulated array: the packed bfp8 fast path (bit-identical to the
/// cycle simulator) plus scripted fault injection and a modelled
/// occupancy clock.
pub struct SimArrayBackend {
    quantizer: Quantizer,
    /// Sustained throughput of this single array, GOPS.
    gops: f64,
    plan: ArrayFaultPlan,
}

impl SimArrayBackend {
    /// Build an array running the paper's quantizer at `gops` sustained
    /// throughput, under `plan`.
    pub fn new(gops: f64, plan: ArrayFaultPlan) -> Self {
        SimArrayBackend {
            quantizer: Quantizer::paper(),
            gops,
            plan,
        }
    }
}

impl ArrayBackend for SimArrayBackend {
    fn execute(
        &mut self,
        a: &MatF32,
        b: &MatF32,
        cancel: &CancelToken,
    ) -> Result<(MatF32, Telemetry), ArithError> {
        cancel.check()?;
        let mut out = fast_matmul_f32(&self.quantizer, a, b, ParallelPolicy::Serial)?;
        cancel.check()?;

        let macs = a.rows() as u64 * a.cols() as u64 * b.cols() as u64;
        let modelled_s = if self.gops > 0.0 {
            2.0 * macs as f64 / (self.gops * 1e9)
        } else {
            0.0
        };

        let mut faults = FaultReport::default();
        if self.plan.fires() && out.rows() > 0 && out.cols() > 0 {
            // A multi-bit BRAM upset on the output buffer: ECC detects
            // it but cannot correct, so the data is corrupted *and*
            // flagged. Flip a mantissa bit of one element.
            let v = out.get(0, 0);
            out.set(0, 0, f32::from_bits(v.to_bits() ^ 1));
            faults.counters = FaultCounters {
                injected: 1,
                ecc_uncorrected: 1,
                ..Default::default()
            };
            faults.detected = 1;
        }
        Ok((out, Telemetry { faults, modelled_s }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mats() -> (MatF32, MatF32) {
        let a = MatF32::from_fn(16, 16, |i, j| ((i * 7 + j * 5) % 3) as f32 - 1.0);
        let b = MatF32::from_fn(16, 16, |i, j| ((i * 3 + j * 11) % 3) as f32 - 1.0);
        (a, b)
    }

    #[test]
    fn clean_backend_matches_reference_bits() {
        let (a, b) = mats();
        let mut be = SimArrayBackend::new(100.0, ArrayFaultPlan::None);
        let (out, t) = be.execute(&a, &b, &CancelToken::new()).unwrap();
        let q = Quantizer::paper();
        let want = q
            .quantize(&a)
            .unwrap()
            .try_matmul(&q.quantize(&b).unwrap())
            .unwrap();
        assert_eq!(out, want);
        assert!(t.faults.is_clean());
        assert!(t.modelled_s > 0.0);
    }

    #[test]
    fn latched_plan_always_flags_until_healed() {
        let (a, b) = mats();
        let (plan, heal) = ArrayFaultPlan::latched();
        let mut be = SimArrayBackend::new(100.0, plan);
        for _ in 0..3 {
            let (_, t) = be.execute(&a, &b, &CancelToken::new()).unwrap();
            assert_eq!(t.faults.detected, 1, "latched faults are always flagged");
        }
        heal.store(false, Ordering::Relaxed);
        let (out, t) = be.execute(&a, &b, &CancelToken::new()).unwrap();
        assert!(t.faults.is_clean());
        let mut clean = SimArrayBackend::new(100.0, ArrayFaultPlan::None);
        let (want, _) = clean.execute(&a, &b, &CancelToken::new()).unwrap();
        assert_eq!(out, want, "healed array is bit-clean again");
    }

    #[test]
    fn transient_plan_faults_exactly_n_times() {
        let (a, b) = mats();
        let mut be = SimArrayBackend::new(100.0, ArrayFaultPlan::transient(2));
        let mut flagged = 0;
        for _ in 0..5 {
            let (_, t) = be.execute(&a, &b, &CancelToken::new()).unwrap();
            flagged += t.faults.detected;
        }
        assert_eq!(flagged, 2);
    }

    #[test]
    fn cancelled_token_aborts_execution() {
        let (a, b) = mats();
        let mut be = SimArrayBackend::new(100.0, ArrayFaultPlan::None);
        let token = CancelToken::new();
        token.cancel();
        let err = be.execute(&a, &b, &token).unwrap_err();
        assert_eq!(err, ArithError::Cancelled { expired: false });
    }
}
