//! The execution surface the runtime schedules onto: one backend per
//! array, plus the simulated implementation with scripted per-array
//! fault injection.
//!
//! Why not the hook-based injector in `bfp-faults`? Its session is
//! process-global (one plan for every thread), so it cannot model "array
//! 3 is failing while arrays 0–2 are clean" under the fleet's concurrent
//! workers. The serving runtime instead scripts faults *per backend*,
//! through the ABFT kernel's tamper seam ([`bfp_arith::AbftOptions`]):
//! an [`ArrayFaultPlan`] decides whether an execution is corrupted, the
//! checksum invariant detects the corruption, and the report says
//! whether the kernel could repair it in place. An execution with
//! *uncorrected* detections must be discarded; a corrected one is
//! bit-exact and servable, but still flags the array for the health
//! state machine. That split is what makes the zero-wrong-bit guarantee
//! structural rather than probabilistic — nothing suspect is ever
//! answered, and nothing detected escapes the strike accounting.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bfp_arith::cancel::CancelToken;
use bfp_arith::error::ArithError;
use bfp_arith::matrix::MatF32;
use bfp_arith::packed::EpilogueCtx;
use bfp_arith::quant::Quantizer;
use bfp_arith::{AbftOptions, AbftPacked};
use bfp_core::degrade::{gelu_with_mode, op_count_latency_s};
use bfp_core::prelude::{DivisionPolicy, MixedEngine, NonlinearMode, Vpu};
use bfp_faults::FaultReport;
use bfp_platform::nonlinear::NonlinearUnit;

/// What one request asks an array to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeOp {
    /// The bare bfp8 GEMM (`a × b`).
    #[default]
    Gemm,
    /// The fused serving shape: bfp8 GEMM with a GELU epilogue on the
    /// VPU. This is the op the brownout ladder degrades — at tier ≥ 1
    /// the epilogue runs the fast LUT/polynomial kernels instead of the
    /// bit-exact emulated datapath.
    GemmGelu,
}

impl ServeOp {
    /// Stable lowercase label for telemetry and bench reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ServeOp::Gemm => "gemm",
            ServeOp::GemmGelu => "gemm_gelu",
        }
    }
}

/// What one execution reports back besides its output.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Fault events during this execution. `detected > 0` means the
    /// array misbehaved (health strike); the output must be discarded
    /// only when `faults.uncorrected_detections() > 0` — ABFT-corrected
    /// chains are bit-exact.
    pub faults: FaultReport,
    /// Modelled array-occupancy seconds at the calibrated operating
    /// point (independent of host scheduling noise).
    pub modelled_s: f64,
}

/// One array's execution engine. `execute` runs `op` under a
/// cancel/deadline token, with nonlinear epilogues in `mode`;
/// implementations must *flag* corrupted outputs via `Telemetry::faults`
/// (`detected`, and `abft_corrections` for repairs) rather than
/// silently returning them, and must be bit-exact for the mode they ran
/// in (see [`reference_bits`]).
pub trait ArrayBackend: Send {
    /// Execute `op` over `a × b`, honouring `cancel` between phases.
    fn execute(
        &mut self,
        a: &MatF32,
        b: &MatF32,
        op: ServeOp,
        mode: NonlinearMode,
        cancel: &CancelToken,
    ) -> Result<(MatF32, Telemetry), ArithError>;
}

/// The expected bits of a fault-free execution of `op` in `mode`: the
/// quantized bfp8 GEMM, plus (for [`ServeOp::GemmGelu`]) the engine's
/// GELU in the given nonlinear mode. This is the oracle the serving
/// tests and benches compare completed responses against — "bit-exact
/// for the mode it ran in" means equal to *this*, bit for bit.
pub fn reference_bits(a: &MatF32, b: &MatF32, op: ServeOp, mode: NonlinearMode) -> MatF32 {
    let q = Quantizer::paper();
    let mut out = q
        .quantize(a)
        .expect("reference operand quantizes")
        .try_matmul(&q.quantize(b).expect("reference operand quantizes"))
        .expect("reference GEMM executes");
    if op == ServeOp::GemmGelu {
        let mut engine = MixedEngine::new().with_threads(1);
        gelu_with_mode(&mut engine, &mut out, mode);
    }
    out
}

/// Scripted per-array fault behaviour for [`SimArrayBackend`].
///
/// The two fault shapes map onto ABFT's correction boundary: a
/// [`ArrayFaultPlan::Transient`] upset perturbs a single accumulator
/// element (an SEU the checksums localize and repair in place), while a
/// [`ArrayFaultPlan::Latched`] defect smears across several rows and
/// columns of the chain (a persistent datapath fault the row×column
/// intersection cannot disentangle — detected, never corrected).
#[derive(Debug, Clone, Default)]
pub enum ArrayFaultPlan {
    /// Fault-free array.
    #[default]
    None,
    /// Latched defect: every execution faults while the flag is `true`.
    /// Clearing the flag models a repair (e.g. partial reconfiguration),
    /// after which quarantine probes start passing.
    Latched(Arc<AtomicBool>),
    /// Transient burst: the next `n` executions fault, then the array
    /// is clean again.
    Transient(Arc<AtomicU64>),
}

impl ArrayFaultPlan {
    /// A latched plan plus the shared switch that heals it.
    pub fn latched() -> (Self, Arc<AtomicBool>) {
        let flag = Arc::new(AtomicBool::new(true));
        (ArrayFaultPlan::Latched(flag.clone()), flag)
    }

    /// A transient plan faulting the next `n` executions.
    pub fn transient(n: u64) -> Self {
        ArrayFaultPlan::Transient(Arc::new(AtomicU64::new(n)))
    }

    /// Whether the next execution faults (consumes one transient credit).
    fn fires(&self) -> bool {
        match self {
            ArrayFaultPlan::None => false,
            ArrayFaultPlan::Latched(flag) => flag.load(Ordering::Relaxed),
            ArrayFaultPlan::Transient(left) => left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok(),
        }
    }
}

/// Simulated array: the packed bfp8 fast path (bit-identical to the
/// cycle simulator) plus scripted fault injection, a fused VPU drain
/// for nonlinear epilogues, and a modelled occupancy clock.
pub struct SimArrayBackend {
    quantizer: Quantizer,
    /// Sustained GEMM throughput of this single array, GOPS.
    gops: f64,
    plan: ArrayFaultPlan,
    /// Nonlinear-unit pricing for the epilogue's modelled seconds.
    vpu_unit: NonlinearUnit,
}

impl SimArrayBackend {
    /// Build an array running the paper's quantizer at `gops` sustained
    /// throughput, under `plan`.
    pub fn new(gops: f64, plan: ArrayFaultPlan) -> Self {
        SimArrayBackend {
            quantizer: Quantizer::paper(),
            gops,
            plan,
            vpu_unit: NonlinearUnit::recommended(),
        }
    }
}

impl ArrayBackend for SimArrayBackend {
    fn execute(
        &mut self,
        a: &MatF32,
        b: &MatF32,
        op: ServeOp,
        mode: NonlinearMode,
        cancel: &CancelToken,
    ) -> Result<(MatF32, Telemetry), ArithError> {
        cancel.check()?;
        let pa = AbftPacked::quantize_pack_lhs(&self.quantizer, a)?;
        let pb = AbftPacked::quantize_pack_rhs(&self.quantizer, b)?;
        cancel.check()?;

        let fire = self.plan.fires();
        let latched = matches!(self.plan, ArrayFaultPlan::Latched(_));
        // Scripted corruption of the first output chain's accumulator,
        // applied between accumulation and the committed-value verify —
        // exactly where a real upset in the PSU bank would land.
        let mut tamper = |bi: usize, bj: usize, acc: &mut [i64]| -> u64 {
            if !fire || (bi, bj) != (0, 0) || acc.len() < 19 {
                return 0;
            }
            if latched {
                // Persistent datapath defect: three elements across
                // distinct rows and columns — uncorrectable by design.
                acc[0] += 1 << 12;
                acc[9] += 1 << 13;
                acc[18] += 1 << 14;
                3
            } else {
                // Single-event upset: one accumulator bit, localized by
                // the row×column intersection and repaired in place.
                acc[0] ^= 1 << 12;
                1
            }
        };
        let mut opts = AbftOptions {
            no_verify: false,
            tamper: Some(&mut tamper),
        };
        // The GELU epilogue runs fused at the GEMM drain: each
        // verified-clean output chain passes through the VPU while the
        // tile is hot instead of being materialised and re-read. GELU is
        // element-independent and the VPU kernel has no cross-tile
        // state, so the bits equal the composed GEMM→GELU pass
        // ([`reference_bits`]) exactly; chains with uncorrected
        // detections keep their raw GEMM bits, which the runtime
        // discards anyway.
        let mut vpu = Vpu::new();
        let (out, r) = if op == ServeOp::GemmGelu {
            let mut epi = |tile: &mut [f32], ctx: &EpilogueCtx| {
                for i in 0..ctx.imax {
                    vpu.gelu_slice(
                        &mut tile[i * ctx.b..][..ctx.jmax],
                        DivisionPolicy::Host,
                        mode,
                    );
                }
            };
            pa.matmul_with_epilogue(&pb, &mut opts, &mut epi)?
        } else {
            pa.matmul_with(&pb, &mut opts)?
        };
        cancel.check()?;

        let macs = a.rows() as u64 * a.cols() as u64 * b.cols() as u64;
        let mut modelled_s = if self.gops > 0.0 {
            2.0 * macs as f64 / (self.gops * 1e9)
        } else {
            0.0
        };

        // Epilogue occupancy is only billed for servable outputs — an
        // execution with uncorrected detections is discarded by the
        // runtime, so its drain work is written off, exactly as the
        // composed path skipped the VPU pass entirely.
        if op == ServeOp::GemmGelu && r.detections.saturating_sub(r.corrections()) == 0 {
            modelled_s += op_count_latency_s(&self.vpu_unit, &vpu.count);
        }

        let mut faults = FaultReport::default();
        faults.counters.injected = r.tampered;
        faults.abft_detections = r.detections;
        faults.abft_corrections = r.corrections();
        faults.detected = r.detections;
        Ok((out, Telemetry { faults, modelled_s }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mats() -> (MatF32, MatF32) {
        let a = MatF32::from_fn(16, 16, |i, j| ((i * 7 + j * 5) % 3) as f32 - 1.0);
        let b = MatF32::from_fn(16, 16, |i, j| ((i * 3 + j * 11) % 3) as f32 - 1.0);
        (a, b)
    }

    #[test]
    fn clean_backend_matches_reference_bits() {
        let (a, b) = mats();
        let mut be = SimArrayBackend::new(100.0, ArrayFaultPlan::None);
        let (out, t) = be.execute(&a, &b, ServeOp::Gemm, NonlinearMode::Exact, &CancelToken::new()).unwrap();
        let q = Quantizer::paper();
        let want = q
            .quantize(&a)
            .unwrap()
            .try_matmul(&q.quantize(&b).unwrap())
            .unwrap();
        assert_eq!(out, want);
        assert!(t.faults.is_clean());
        assert!(t.modelled_s > 0.0);
    }

    #[test]
    fn latched_plan_always_flags_until_healed() {
        let (a, b) = mats();
        let (plan, heal) = ArrayFaultPlan::latched();
        let mut be = SimArrayBackend::new(100.0, plan);
        for _ in 0..3 {
            let (_, t) = be.execute(&a, &b, ServeOp::Gemm, NonlinearMode::Exact, &CancelToken::new()).unwrap();
            assert_eq!(t.faults.detected, 1, "latched faults are always flagged");
        }
        heal.store(false, Ordering::Relaxed);
        let (out, t) = be.execute(&a, &b, ServeOp::Gemm, NonlinearMode::Exact, &CancelToken::new()).unwrap();
        assert!(t.faults.is_clean());
        let mut clean = SimArrayBackend::new(100.0, ArrayFaultPlan::None);
        let (want, _) = clean.execute(&a, &b, ServeOp::Gemm, NonlinearMode::Exact, &CancelToken::new()).unwrap();
        assert_eq!(out, want, "healed array is bit-clean again");
    }

    #[test]
    fn transient_plan_faults_exactly_n_times() {
        let (a, b) = mats();
        let mut be = SimArrayBackend::new(100.0, ArrayFaultPlan::transient(2));
        let mut flagged = 0;
        for _ in 0..5 {
            let (_, t) = be.execute(&a, &b, ServeOp::Gemm, NonlinearMode::Exact, &CancelToken::new()).unwrap();
            flagged += t.faults.detected;
        }
        assert_eq!(flagged, 2);
    }

    #[test]
    fn transient_upsets_are_corrected_bit_exact() {
        let (a, b) = mats();
        let mut clean = SimArrayBackend::new(100.0, ArrayFaultPlan::None);
        let (want, _) = clean.execute(&a, &b, ServeOp::Gemm, NonlinearMode::Exact, &CancelToken::new()).unwrap();

        let mut be = SimArrayBackend::new(100.0, ArrayFaultPlan::transient(1));
        let (out, t) = be.execute(&a, &b, ServeOp::Gemm, NonlinearMode::Exact, &CancelToken::new()).unwrap();
        assert_eq!(t.faults.detected, 1, "the upset is flagged");
        assert_eq!(t.faults.abft_corrections, 1, "and repaired in place");
        assert_eq!(
            t.faults.uncorrected_detections(),
            0,
            "a corrected output is servable"
        );
        assert_eq!(out, want, "correction restores the exact bits");
    }

    #[test]
    fn latched_defects_stay_uncorrected() {
        let (a, b) = mats();
        let (plan, _heal) = ArrayFaultPlan::latched();
        let mut be = SimArrayBackend::new(100.0, plan);
        let (_, t) = be.execute(&a, &b, ServeOp::Gemm, NonlinearMode::Exact, &CancelToken::new()).unwrap();
        assert_eq!(t.faults.detected, 1);
        assert_eq!(t.faults.abft_corrections, 0, "multi-element smear");
        assert!(
            t.faults.uncorrected_detections() > 0,
            "the runtime must discard this output"
        );
    }

    #[test]
    fn gelu_epilogue_is_bit_exact_for_the_mode_it_ran_in() {
        let (a, b) = mats();
        let mut be = SimArrayBackend::new(100.0, ArrayFaultPlan::None);
        for mode in [NonlinearMode::Exact, NonlinearMode::Fast] {
            let (out, t) = be
                .execute(&a, &b, ServeOp::GemmGelu, mode, &CancelToken::new())
                .unwrap();
            let want = reference_bits(&a, &b, ServeOp::GemmGelu, mode);
            assert_eq!(out, want, "mode {mode:?}");
            assert!(t.faults.is_clean());
        }
        // The two modes really are different computations on these bits.
        let exact = reference_bits(&a, &b, ServeOp::GemmGelu, NonlinearMode::Exact);
        let fast = reference_bits(&a, &b, ServeOp::GemmGelu, NonlinearMode::Fast);
        assert_ne!(exact, fast, "fast GELU is a distinct (cheaper) kernel");
    }

    #[test]
    fn fast_epilogue_prices_below_exact() {
        let (a, b) = mats();
        let mut be = SimArrayBackend::new(100.0, ArrayFaultPlan::None);
        let (_, gemm) = be
            .execute(&a, &b, ServeOp::Gemm, NonlinearMode::Exact, &CancelToken::new())
            .unwrap();
        let (_, exact) = be
            .execute(&a, &b, ServeOp::GemmGelu, NonlinearMode::Exact, &CancelToken::new())
            .unwrap();
        let (_, fast) = be
            .execute(&a, &b, ServeOp::GemmGelu, NonlinearMode::Fast, &CancelToken::new())
            .unwrap();
        assert!(exact.modelled_s > gemm.modelled_s, "the epilogue costs time");
        assert!(fast.modelled_s > gemm.modelled_s);
        assert!(
            fast.modelled_s < exact.modelled_s,
            "fast mode must shrink the epilogue: {} vs {}",
            fast.modelled_s,
            exact.modelled_s
        );
    }

    #[test]
    fn cancelled_token_aborts_execution() {
        let (a, b) = mats();
        let mut be = SimArrayBackend::new(100.0, ArrayFaultPlan::None);
        let token = CancelToken::new();
        token.cancel();
        let err = be.execute(&a, &b, ServeOp::Gemm, NonlinearMode::Exact, &token).unwrap_err();
        assert_eq!(err, ArithError::Cancelled { expired: false });
    }
}
