//! Shared workload generators for the reproduction binaries and benches:
//! deterministic (seedable, dependency-free) matrix and stream generators
//! so every table regenerates identically across runs and machines.

use bfp_arith::matrix::MatF32;

/// A tiny deterministic LCG (numerical-recipes constants), good enough for
/// workload shaping and fully reproducible.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u32,
}

impl Lcg {
    /// Seeded generator.
    pub fn new(seed: u32) -> Self {
        Lcg { state: seed.max(1) }
    }

    /// Next raw 32 bits.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self.state.wrapping_mul(1664525).wrapping_add(1013904223);
        self.state
    }

    /// Uniform in `[-1, 1)`.
    pub fn next_unit(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 / (1 << 24) as f32 * 2.0 - 1.0
    }

    /// A normal-range f32 with the given binade spread (for datapath
    /// fidelity sweeps).
    pub fn next_normal_range(&mut self, binades: u32) -> f32 {
        let u = self.next_u32();
        let e = 0x3f00_0000u32.wrapping_add((u % binades.max(1)) << 23);
        let v = f32::from_bits(e | ((u >> 9) & 0x7f_ffff));
        if u & 1 == 0 {
            v
        } else {
            -v
        }
    }
}

/// A smooth activation-like matrix (bounded, no outliers).
pub fn smooth_matrix(rows: usize, cols: usize, seed: u32) -> MatF32 {
    let s = seed as f32;
    MatF32::from_fn(rows, cols, |i, j| {
        ((i as f32 * 0.31 + j as f32 * 0.17 + s * 0.01).sin()) * 1.5
    })
}

/// A Transformer-activation-like matrix: smooth base with hot outlier
/// channels every `hot_every` columns, `hot_scale`× larger.
pub fn outlier_matrix(rows: usize, cols: usize, hot_every: usize, hot_scale: f32) -> MatF32 {
    MatF32::from_fn(rows, cols, |i, j| {
        let base = ((i as f32 * 0.29 + j as f32 * 0.13).sin()) * 0.5;
        if hot_every > 0 && j % hot_every == hot_every / 2 {
            base * hot_scale
        } else {
            base
        }
    })
}

/// Pairs of operands covering `binades` binades for fp32 datapath sweeps.
pub fn operand_pairs(n: usize, binades: u32, seed: u32) -> Vec<(f32, f32)> {
    let mut rng = Lcg::new(seed);
    (0..n)
        .map(|_| {
            (
                rng.next_normal_range(binades),
                rng.next_normal_range(binades),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = Lcg::new(42);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = Lcg::new(42);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = Lcg::new(43);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn unit_values_are_in_range() {
        let mut r = Lcg::new(7);
        for _ in 0..1000 {
            let v = r.next_unit();
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_range_values_are_finite_nonzero() {
        let mut r = Lcg::new(9);
        for _ in 0..1000 {
            let v = r.next_normal_range(8);
            assert!(v.is_finite() && v != 0.0);
        }
    }

    #[test]
    fn outlier_matrix_has_hot_channels() {
        let m = outlier_matrix(16, 96, 32, 50.0);
        // Column 16 is hot, column 0 is not.
        let hot: f32 = (0..16).map(|i| m.get(i, 16).abs()).fold(0.0, f32::max);
        let cold: f32 = (0..16).map(|i| m.get(i, 0).abs()).fold(0.0, f32::max);
        assert!(hot > 10.0 * cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn operand_pairs_deterministic_and_sized() {
        let a = operand_pairs(64, 6, 1);
        let b = operand_pairs(64, 6, 1);
        assert_eq!(a.len(), 64);
        assert_eq!(a, b);
    }
}
