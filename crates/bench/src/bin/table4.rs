//! Table IV — DeiT-Small workload split: operations and latency per
//! partition (bfp8 MatMul vs fp32 LayerNorm / SoftMax / GELU).
//!
//! Two variants are printed:
//! 1. the paper's own op counts through our latency model (sanity: the
//!    latency column reproduces the printed milliseconds), and
//! 2. our architecture-derived census through the same model — the
//!    proportions are the reproduction's result.

use bfp_core::{fmt_si, LatencyModel, Table};
use bfp_transformer::flops::{analytical_census, paper_table4};
use bfp_transformer::VitConfig;

fn main() {
    println!("Reproducing Table IV: DeiT-Small linear vs non-linear split\n");
    let model = LatencyModel::paper();

    // ---- variant 1: the paper's op counts through the latency model ----
    let paper_ops = [
        paper_table4::BFP8_MATMUL_OPS,
        paper_table4::LAYERNORM_FLOPS,
        paper_table4::SOFTMAX_FLOPS,
        paper_table4::GELU_FLOPS,
    ];
    let total_ops: f64 = paper_ops.iter().sum();
    let lat: Vec<f64> = paper_ops
        .iter()
        .enumerate()
        .map(|(i, &ops)| {
            if i == 0 {
                ops / model.bfp_ops_per_sec
            } else {
                ops / model.fp32_flops_per_sec
            }
        })
        .collect();
    let total_lat: f64 = lat.iter().sum();

    let names = ["bfp8 MatMul", "fp32 LayerNorm", "fp32 SoftMax", "fp32 GELU"];
    let mut t1 = Table::new(
        "Variant 1: paper op counts x measured throughputs",
        &[
            "Partition",
            "OPs/FLOPs",
            "Ops %",
            "paper %",
            "Latency ms",
            "paper ms",
            "Lat %",
            "paper %",
        ],
    );
    for i in 0..4 {
        t1.row(&[
            names[i].to_string(),
            fmt_si(paper_ops[i]),
            format!("{:.3}", 100.0 * paper_ops[i] / total_ops),
            format!("{:.3}", paper_table4::OPS_PERCENT[i]),
            format!("{:.3}", lat[i] * 1e3),
            format!("{:.3}", paper_table4::LATENCY_MS[i]),
            format!("{:.3}", 100.0 * lat[i] / total_lat),
            format!("{:.3}", paper_table4::LATENCY_PERCENT[i]),
        ]);
    }
    print!("{}", t1.render());
    println!();

    // ---- variant 2: our architecture-derived census ----
    let census = analytical_census(&VitConfig::deit_small());
    let b = model.breakdown(&census);
    let mut t2 = Table::new(
        "Variant 2: census derived from our DeiT-Small implementation",
        &["Partition", "OPs/FLOPs", "Ops %", "Latency ms", "Lat %"],
    );
    for (i, row) in b.rows.iter().enumerate() {
        t2.row(&[
            row.name.to_string(),
            fmt_si(row.ops),
            format!("{:.3}", b.ops_percent(i)),
            format!("{:.3}", row.latency_s * 1e3),
            format!("{:.3}", b.latency_percent(i)),
        ]);
    }
    print!("{}", t2.render());

    println!("\nHeadline conclusion (paper: fp32 = 1.35% of ops but 92.45% of latency):");
    println!(
        "  ours: fp32 = {:.2}% of ops, {:.2}% of latency",
        b.fp32_ops_percent(),
        b.fp32_latency_percent()
    );
    println!(
        "  host-offloaded divisions/sqrts: {} ({}s at 1 GHz scalar)",
        fmt_si(b.host_ops),
        fmt_si(b.host_latency_s)
    );
    println!(
        "\nNote: our GEMM census counts {} OPs vs the paper's 2465M — see",
        fmt_si(census.bfp_ops() as f64)
    );
    println!("EXPERIMENTS.md for the op-counting discrepancy discussion; the");
    println!("latency-dominance conclusion is insensitive to it.");
}
