//! Case-study sweep: how the linear/non-linear split evolves across the
//! DeiT family and with sequence length.
//!
//! Extends Table IV along the axis the paper cites from Softermax (ref. 8):
//! "as the embedding dimension increases, the latency of non-linear
//! functions in Transformers increases significantly" — and softmax work
//! grows *quadratically* in sequence length, so longer inputs make the
//! fp32 bottleneck worse, not better.

use bfp_core::{fmt_si, LatencyModel, Table};
use bfp_transformer::{analytical_census, VitConfig};

fn main() {
    let model = LatencyModel::paper();

    println!("Case study: Table IV's split across the DeiT family\n");
    let mut t = Table::new(
        "Model sweep (seq 197)",
        &[
            "Model",
            "dim",
            "bfp8 OPs",
            "fp32 FLOPs",
            "fp32 ops %",
            "fp32 latency %",
            "total ms",
        ],
    );
    for (name, cfg) in [
        ("DeiT-Tiny", VitConfig::deit_tiny()),
        ("DeiT-Small", VitConfig::deit_small()),
        ("DeiT-Base", VitConfig::deit_base()),
    ] {
        let census = analytical_census(&cfg);
        let b = model.breakdown(&census);
        t.row(&[
            name.into(),
            cfg.dim.to_string(),
            fmt_si(census.bfp_ops() as f64),
            fmt_si(census.fp32_flops() as f64),
            format!("{:.2}", b.fp32_ops_percent()),
            format!("{:.2}", b.fp32_latency_percent()),
            format!("{:.3}", b.total_latency_s() * 1e3),
        ]);
    }
    print!("{}", t.render());

    println!();
    let mut t = Table::new(
        "Sequence-length sweep (DeiT-Small width)",
        &[
            "seq",
            "bfp8 OPs",
            "softmax FLOPs",
            "fp32 ops %",
            "fp32 latency %",
        ],
    );
    for seq in [64usize, 197, 384, 784, 1568] {
        let cfg = VitConfig {
            seq,
            ..VitConfig::deit_small()
        };
        let census = analytical_census(&cfg);
        let b = model.breakdown(&census);
        t.row(&[
            seq.to_string(),
            fmt_si(census.bfp_ops() as f64),
            fmt_si(census.softmax.flops() as f64),
            format!("{:.2}", b.fp32_ops_percent()),
            format!("{:.2}", b.fp32_latency_percent()),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\n-> the fp32 bottleneck does not wash out at scale: softmax work is\n\
         O(seq^2) while its throughput stays 137x below the bfp8 path, so\n\
         longer sequences keep the non-linear unit on the critical path —\n\
         the paper's motivation for optimising it (SSV)."
    );
}
