//! The paper's §I motivation, demonstrated quantitatively:
//!
//! 1. **Linear layers tolerate low-bitwidth quantization** — but per-tensor
//!    int8 collapses on outlier-heavy Transformer activations while
//!    per-block bfp8 does not (why bfp8, not int8, without retraining).
//! 2. **Non-linear layers need dynamic range and precision** — fp16
//!    softmax overflows on routine attention logits and fp16 accumulation
//!    stalls in LayerNorm, while the fp32 VPU kernels track the reference
//!    (why fp32, not fp16, for the non-linear partition).

use bfp_arith::halffp::{self, ops as f16ops};
use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_arith::Int8Tensor;
use bfp_core::Table;
use bfp_transformer::{reference, Vpu};

/// Transformer-like activations: smooth values with a few outlier channels.
fn activation_with_outliers(rows: usize, cols: usize) -> MatF32 {
    MatF32::from_fn(rows, cols, |i, j| {
        let base = ((i as f32 * 0.31 + j as f32 * 0.17).sin()) * 0.5;
        if j % 96 == 7 {
            base * 60.0 // a hot channel
        } else {
            base
        }
    })
}

fn main() {
    println!("Motivation experiments (paper SSI)\n");

    // ---- 1a: representation fidelity on outlier activations -------------
    let act = activation_with_outliers(197, 384);
    let s_int8 = Int8Tensor::quantize(&act).unwrap().fidelity(&act);
    let s_bfp = Quantizer::paper().quantize(&act).unwrap().fidelity(&act);
    let mut t = Table::new(
        "Activation quantization (197x384, hot outlier channels)",
        &["Scheme", "SQNR (dB)", "max rel err"],
    );
    t.row(&[
        "int8 per-tensor".into(),
        format!("{:.1}", s_int8.sqnr_db()),
        format!("{:.2e}", s_int8.max_rel),
    ]);
    t.row(&[
        "bfp8 per-block (ours)".into(),
        format!("{:.1}", s_bfp.sqnr_db()),
        format!("{:.2e}", s_bfp.max_rel),
    ]);
    print!("{}", t.render());
    println!(
        "-> bfp8 keeps {:.1} dB more signal: per-block exponents localise the outliers\n",
        s_bfp.sqnr_db() - s_int8.sqnr_db()
    );

    // ---- 1b: task-level effect ------------------------------------------
    // In real Transformers the outlier channels carry little task
    // information (Bondarenko et al.), yet per-tensor int8 spends its
    // whole resolution on them. Model that: a classifier whose weights
    // ignore the hot channels, scored by argmax agreement with f32.
    let samples = 256;
    let feats = 384;
    let classes = 10;
    let acts = MatF32::from_fn(samples, feats, |i, j| {
        let base = ((i as f32 * 0.77 + j as f32 * 0.41).sin()
            + (i as f32 * 0.13 - j as f32 * 0.23).cos())
            * 0.35;
        if j % 96 == 7 {
            ((i as f32 * 0.05).sin()) * 30.0 // hot, task-irrelevant channel
        } else {
            base
        }
    });
    let w = MatF32::from_fn(feats, classes, |i, j| {
        if i % 96 == 7 {
            0.0 // the classifier ignores the hot channels
        } else {
            ((i as f32 * 0.19 + j as f32 * 1.3).sin()) * 0.1
        }
    });
    let ref_logits = acts.matmul(&w);
    let int8_logits = Int8Tensor::quantize(&acts)
        .unwrap()
        .matmul(&Int8Tensor::quantize(&w).unwrap());
    let q = Quantizer::paper();
    let bfp_logits = q.quantize(&acts).unwrap().matmul(&q.quantize(&w).unwrap());

    let argmax = |m: &MatF32, i: usize| -> usize {
        (0..classes)
            .max_by(|&a, &b| m.get(i, a).partial_cmp(&m.get(i, b)).unwrap())
            .unwrap()
    };
    let mut int8_agree = 0;
    let mut bfp_agree = 0;
    for i in 0..samples {
        let want = argmax(&ref_logits, i);
        if argmax(&int8_logits, i) == want {
            int8_agree += 1;
        }
        if argmax(&bfp_logits, i) == want {
            bfp_agree += 1;
        }
    }
    println!(
        "Task-level (argmax over {classes} classes, {samples} samples, signal in small channels):"
    );
    println!(
        "  int8 per-tensor top-1 agreement: {:.1}%",
        100.0 * int8_agree as f64 / samples as f64
    );
    println!(
        "  bfp8 per-block  top-1 agreement: {:.1}%\n",
        100.0 * bfp_agree as f64 / samples as f64
    );

    // ---- 2: fp16 vs fp32 for the non-linear layers ----------------------
    println!("Non-linear layers: fp16 vs the fp32 VPU\n");

    // Softmax on realistic attention logits (scores up to ~15 after QK^T).
    let logits: Vec<f32> = (0..197)
        .map(|k| ((k as f32 * 0.61).sin() + 1.0) * 7.5)
        .collect();
    let mut f16_row = logits.clone();
    halffp::softmax_row_f16(&mut f16_row);
    let f16_nan = f16_row.iter().filter(|v| v.is_nan()).count();

    let mut vpu = Vpu::new();
    let mut vpu_row = logits.clone();
    vpu.softmax_row(&mut vpu_row);
    let mut ref_row = MatF32::from_vec(1, logits.len(), logits.clone());
    reference::softmax_rows(&mut ref_row);
    let max_err = vpu_row
        .iter()
        .zip(ref_row.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0f32, f32::max);

    println!("softmax over 197 attention logits (max logit {:.1}):", 15.0);
    println!("  fp16 kernel : {f16_nan}/197 outputs are NaN (e^x overflows 65504)");
    println!("  fp32 VPU    : max |err| = {max_err:.2e} vs f64 reference");

    // LayerNorm accumulation: fp16 running sums stall.
    let n = 4096;
    let mut f16_sum = 0f32;
    let mut f32_sum = 0f32;
    for _ in 0..n {
        f16_sum = f16ops::add(f16_sum, 1.0);
        f32_sum += 1.0;
    }
    println!("\nmean accumulation over {n} tokens of 1.0 (LayerNorm first pass):");
    println!("  fp16 running sum: {f16_sum} (stalls at 2048: ulp exceeds the addend)");
    println!("  fp32 running sum: {f32_sum}");

    println!("\n-> exactly the paper's argument: bfp8 for linear, fp32 for non-linear.");
}
