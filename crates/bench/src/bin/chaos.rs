//! chaos — deterministic fault-injection campaign over the protected
//! GEMM stack, the quantitative backbone of DESIGN.md's detection
//! ladder.
//!
//! The campaign sweeps **fault site × injection rate × protection
//! scheme** over DeiT-S GEMM shapes. Every trial installs a seeded
//! [`FaultPlan`] (SplitMix64 expansion — the same seed always replays
//! the same campaign bit-for-bit), runs one GEMM through the scheme
//! under test, and classifies the result against a fault-free golden
//! run:
//!
//! * `benign`    — the upset never reached the output bits
//! * `corrected` — output bit-exact *and* the scheme did repair work
//! * `detected`  — output wrong but flagged (discardable: safe)
//! * `silent`    — output wrong and nothing noticed (the failure mode
//!   the whole ladder exists to drive to zero)
//!
//! Schemes are protection *stacks*, not layers: every scheme except
//! `ecc` reads through **unprotected** (raw) BRAM so the campaign
//! measures that scheme's own coverage rather than SECDED's. That is
//! what exposes the classic blind spots — ECC cannot see datapath
//! upsets (DSP48/PSU sites), and TMR/cross-check replicas agree with
//! each other on *persistent* storage faults, which only the ABFT
//! checksum invariant catches.
//!
//! Detection latency and throughput overhead are modelled in array
//! cycles (the paper's currency); host wall-clock overhead of the
//! checked kernel is reported alongside as a software observation.
//!
//! Usage: `cargo run --release -p bfp-bench --features faults --bin
//! chaos [-- --quick] [--seed N] [--out PATH]`. Writes
//! `BENCH_FAULTS.json` and asserts the headline acceptance numbers
//! (ABFT coverage ≥ 99%, zero ABFT silent corruptions, modelled
//! overhead < 10%), so CI can run it as a gate.

#[cfg(not(feature = "faults"))]
fn main() {
    eprintln!("chaos: the fault-injection hooks are compiled out of this build.");
    eprintln!("rebuild with: cargo run --release -p bfp-bench --features faults --bin chaos");
    std::process::exit(2);
}

#[cfg(feature = "faults")]
fn main() {
    campaign::run();
}

#[cfg(feature = "faults")]
mod campaign {
    use std::fmt::Write as _;
    use std::time::Instant;

    use bfp_arith::matrix::MatF32;
    use bfp_arith::quant::Quantizer;
    use bfp_arith::{AbftOptions, AbftPacked};
    use bfp_core::scheduler::gemm_cycles_one_array;
    use bfp_core::{abft_overhead_cycles, resilient_matmul, RecoveryPolicy};
    use bfp_faults::{FaultPlan, FaultSpec};
    use bfp_platform::MemParams;

    /// SplitMix64: the repo-wide deterministic seed expander.
    struct Split(u64);

    impl Split {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// Where the upset lands in the modelled device.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Site {
        /// DSP48 P-register commit in the tile-product datapath.
        Dsp48,
        /// Stored mantissa byte in the operand BRAM pool.
        Bram,
        /// Partial-sum accumulator word read at chain drain.
        Psu,
    }

    impl Site {
        const ALL: [Site; 3] = [Site::Dsp48, Site::Bram, Site::Psu];

        fn name(self) -> &'static str {
            match self {
                Site::Dsp48 => "dsp48",
                Site::Bram => "bram",
                Site::Psu => "psu",
            }
        }
    }

    /// The protection stack a trial runs under.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Scheme {
        /// Unprotected baseline: nothing watches the output.
        None,
        /// SECDED on the BRAMs only (the storage rung of the ladder).
        Ecc,
        /// Triple modular redundancy: run three times, majority-vote bits.
        Tmr,
        /// Run twice, compare bits (the legacy stepped cross-check cost
        /// model without the fp32 reference).
        Crosscheck,
        /// ABFT checksum invariant, single GEMM, in-place correction.
        Abft,
        /// The full resilient ladder: ABFT + retry + fp32 fallback.
        AbftRetry,
    }

    impl Scheme {
        const ALL: [Scheme; 6] = [
            Scheme::None,
            Scheme::Ecc,
            Scheme::Tmr,
            Scheme::Crosscheck,
            Scheme::Abft,
            Scheme::AbftRetry,
        ];

        fn name(self) -> &'static str {
            match self {
                Scheme::None => "none",
                Scheme::Ecc => "ecc",
                Scheme::Tmr => "tmr",
                Scheme::Crosscheck => "crosscheck",
                Scheme::Abft => "abft",
                Scheme::AbftRetry => "abft_retry",
            }
        }

        /// Only the `ecc` scheme reads through SECDED-protected BRAM;
        /// every other scheme is measured over raw (unprotected)
        /// storage so the numbers isolate its own coverage.
        fn secded_bram(self) -> bool {
            self == Scheme::Ecc
        }
    }

    /// What one trial did to the output, judged against the golden bits.
    #[derive(Clone, Copy)]
    enum Outcome {
        Benign,
        Corrected,
        Detected,
        Silent,
    }

    fn classify(bits_equal: bool, detected: bool, corrected_work: bool) -> Outcome {
        if bits_equal {
            if corrected_work {
                Outcome::Corrected
            } else {
                Outcome::Benign
            }
        } else if detected {
            Outcome::Detected
        } else {
            Outcome::Silent
        }
    }

    #[derive(Clone, Copy, Default)]
    struct Tally {
        trials: u64,
        benign: u64,
        corrected: u64,
        detected: u64,
        silent: u64,
    }

    impl Tally {
        fn add(&mut self, o: Outcome) {
            self.trials += 1;
            match o {
                Outcome::Benign => self.benign += 1,
                Outcome::Corrected => self.corrected += 1,
                Outcome::Detected => self.detected += 1,
                Outcome::Silent => self.silent += 1,
            }
        }

        fn merge(&mut self, t: &Tally) {
            self.trials += t.trials;
            self.benign += t.benign;
            self.corrected += t.corrected;
            self.detected += t.detected;
            self.silent += t.silent;
        }

        /// Of the trials where the fault reached (or would have
        /// reached) the output, how many were caught or repaired.
        fn coverage(&self) -> f64 {
            let affected = self.corrected + self.detected + self.silent;
            if affected == 0 {
                1.0
            } else {
                (self.corrected + self.detected) as f64 / affected as f64
            }
        }

        /// Of the caught faults, how many ended bit-exact.
        fn correction_success(&self) -> f64 {
            let caught = self.corrected + self.detected;
            if caught == 0 {
                0.0
            } else {
                self.corrected as f64 / caught as f64
            }
        }
    }

    /// One DeiT-S GEMM shape with its packed operands, golden bits, and
    /// the site-extent bounds fault plans must stay inside.
    struct ShapeCtx {
        dims: (usize, usize, usize),
        a: MatF32,
        b: MatF32,
        pa: AbftPacked,
        pb: AbftPacked,
        golden: Vec<u32>,
        /// DSP48 P-register commits in one checked GEMM.
        commits: u64,
        /// Output chains (= PSU reads per accumulator cell).
        chains: u64,
        /// BRAM lines guaranteed present on every BRAM of both planes.
        bram_lines: u64,
    }

    fn bits_of(m: &MatF32) -> Vec<u32> {
        m.data().iter().map(|v| v.to_bits()).collect()
    }

    fn shape_ctx(q: &Quantizer, dims: (usize, usize, usize), seed: u32) -> ShapeCtx {
        let (m, k, n) = dims;
        let a = bfp_bench::smooth_matrix(m, k, seed);
        let b = bfp_bench::smooth_matrix(k, n, seed ^ 0x5A5A);
        let pa = AbftPacked::quantize_pack_lhs(q, &a).expect("quantize lhs");
        let pb = AbftPacked::quantize_pack_rhs(q, &b).expect("quantize rhs");
        let (gold, r) = pa.matmul(&pb).expect("golden gemm");
        assert!(r.clean(), "golden run must be fault-free");
        let (mb, kb, nb) = (m.div_ceil(8), k.div_ceil(8), n.div_ceil(8));
        ShapeCtx {
            dims,
            a,
            b,
            pa,
            pb,
            golden: bits_of(&gold),
            commits: (mb * nb * kb * 64) as u64,
            chains: (mb * nb) as u64,
            // Tiles stripe across 16 BRAMs in 64-byte lines
            // (`bfp_arith::abft::plane_site`); bound addresses by the
            // smaller plane so every (bram, addr) exists in both.
            bram_lines: ((mb * kb).min(kb * nb) / 16) as u64,
        }
    }

    /// Expand `rate` seeded faults aimed at `site`, bounded to indices
    /// the workload actually exercises (so plans cannot whiff).
    fn build_plan(site: Site, scheme: Scheme, rate: u64, ctx: &ShapeCtx, rng: &mut Split) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for _ in 0..rate {
            let spec = match site {
                Site::Dsp48 => FaultSpec::DspPRegFlip {
                    nth: rng.below(ctx.commits),
                    bit: rng.below(40) as u8,
                },
                Site::Psu => FaultSpec::PsuFlip {
                    nth: rng.below(ctx.chains),
                    row: rng.below(8) as usize,
                    col: rng.below(8) as usize,
                    bit: rng.below(44) as u8,
                },
                Site::Bram => {
                    let bram = rng.below(16) as usize;
                    let addr = (rng.below(ctx.bram_lines) * 64 + rng.below(64)) as usize;
                    if scheme.secded_bram() {
                        let lo = rng.below(13) as u8;
                        let bits = if rng.below(2) == 0 {
                            vec![lo]
                        } else {
                            vec![lo, (lo + 1 + rng.below(12) as u8) % 13]
                        };
                        FaultSpec::BramFlip { bram, addr, bits }
                    } else {
                        FaultSpec::BramRawFlip {
                            bram,
                            addr,
                            mask: 1u8 << rng.below(8),
                        }
                    }
                }
            };
            plan = plan.with(spec);
        }
        plan
    }

    /// Majority-vote three replicas elementwise by bit pattern. Returns
    /// the voted bits and whether any replica disagreed (TMR's
    /// detection signal).
    fn vote3(b1: &[u32], b2: &[u32], b3: &[u32]) -> (Vec<u32>, bool) {
        let mut disagree = false;
        let voted = b1
            .iter()
            .zip(b2)
            .zip(b3)
            .map(|((&x, &y), &z)| {
                if x == y && y == z {
                    x
                } else {
                    disagree = true;
                    if x == y || x == z {
                        x
                    } else if y == z {
                        y
                    } else {
                        x
                    }
                }
            })
            .collect();
        (voted, disagree)
    }

    /// One trial: install the plan, run the scheme, classify against
    /// golden. `(bits_equal, detected, corrected_work)` feed
    /// [`classify`].
    fn run_trial(scheme: Scheme, ctx: &ShapeCtx, q: &Quantizer, plan: FaultPlan) -> Outcome {
        let _guard = bfp_faults::install(plan);
        let unverified = || -> Vec<u32> {
            let (out, _) = ctx
                .pa
                .matmul_with(&ctx.pb, &mut AbftOptions::unverified())
                .expect("gemm");
            bits_of(&out)
        };
        let (equal, detected, corrected) = match scheme {
            Scheme::None => (unverified() == ctx.golden, false, false),
            Scheme::Ecc => {
                let equal = unverified() == ctx.golden;
                let c = bfp_faults::counters();
                (equal, c.uncorrected() > 0, c.ecc_corrected > 0)
            }
            Scheme::Tmr => {
                let (r1, r2, r3) = (unverified(), unverified(), unverified());
                let (voted, disagree) = vote3(&r1, &r2, &r3);
                (voted == ctx.golden, disagree, disagree)
            }
            Scheme::Crosscheck => {
                let (r1, r2) = (unverified(), unverified());
                let c = bfp_faults::counters();
                let detected = r1 != r2 || c.uncorrected() > 0;
                (r1 == ctx.golden, detected, false)
            }
            Scheme::Abft => {
                let (out, r) = ctx
                    .pa
                    .matmul_with(&ctx.pb, &mut AbftOptions::default())
                    .expect("gemm");
                let c = bfp_faults::counters();
                let detected = r.detections > 0 || c.uncorrected() > 0;
                (bits_of(&out) == ctx.golden, detected, r.corrected_elements > 0)
            }
            Scheme::AbftRetry => {
                let o = resilient_matmul(&ctx.a, &ctx.b, q, &RecoveryPolicy::default())
                    .expect("resilient gemm");
                let r = &o.report;
                let corrected = r.abft_corrections > 0 || r.retries > 0;
                (bits_of(&o.out) == ctx.golden, r.detected > 0, corrected)
            }
        };
        classify(equal, detected, corrected)
    }

    /// Modelled mean detection latency for one shape, in array cycles.
    /// `None` means the scheme never detects anything.
    fn latency_cycles(scheme: Scheme, dims: (usize, usize, usize), mem: &MemParams) -> Option<f64> {
        let (m, k, n) = dims;
        let pass = gemm_cycles_one_array(m, k, n, mem);
        let chains = (m.div_ceil(8) * n.div_ceil(8)) as f64;
        match scheme {
            Scheme::None => None,
            // SECDED flags on the faulted read itself.
            Scheme::Ecc => Some(1.0),
            // The vote resolves only after the third replica finishes.
            Scheme::Tmr => Some(3.0 * pass),
            // The comparison lands after the second pass.
            Scheme::Crosscheck => Some(2.0 * pass),
            // Checkpoints bound detection to one output chain.
            Scheme::Abft | Scheme::AbftRetry => Some(pass / chains),
        }
    }

    fn mean(vals: impl Iterator<Item = f64>) -> f64 {
        let v: Vec<f64> = vals.collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    }

    fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    }

    struct CellRow {
        site: Site,
        rate: u64,
        shape: (usize, usize, usize),
        tally: Tally,
    }

    fn flag_val<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str())
    }

    pub fn run() {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let seed: u64 = flag_val(&args, "--seed")
            .map(|s| s.parse().expect("--seed takes a u64"))
            .unwrap_or(0xC0FFEE);
        let out_path = flag_val(&args, "--out").unwrap_or("BENCH_FAULTS.json");

        // DeiT-S encoder GEMMs: attention projection, MLP expand, and
        // the per-head score product.
        let shapes: &[(usize, usize, usize)] = if quick {
            &[(197, 64, 197)]
        } else {
            &[(197, 384, 384), (197, 384, 1536), (197, 64, 197)]
        };
        let rates: [u64; 2] = [1, 4];
        let trials_per_cell: u64 = if quick { 2 } else { 4 };

        let q = Quantizer::paper();
        let mem = MemParams::paper_calibrated();

        eprintln!(
            "chaos: seed {seed:#x}, {} shapes x {} sites x {} rates x {} schemes x {} trials",
            shapes.len(),
            Site::ALL.len(),
            rates.len(),
            Scheme::ALL.len(),
            trials_per_cell,
        );

        let ctxs: Vec<ShapeCtx> = shapes
            .iter()
            .enumerate()
            .map(|(i, &dims)| shape_ctx(&q, dims, 0x1234 + i as u32))
            .collect();

        let mut totals: Vec<Tally> = vec![Tally::default(); Scheme::ALL.len()];
        let mut cells: Vec<Vec<CellRow>> = Scheme::ALL.iter().map(|_| Vec::new()).collect();
        let campaign_t = Instant::now();
        for (si, &scheme) in Scheme::ALL.iter().enumerate() {
            for (site_i, &site) in Site::ALL.iter().enumerate() {
                for &rate in &rates {
                    for (shape_i, ctx) in ctxs.iter().enumerate() {
                        let mut tally = Tally::default();
                        for trial in 0..trials_per_cell {
                            // Per-trial stream: deterministic in the
                            // campaign seed and the cell coordinates.
                            let mut rng = Split(
                                seed ^ ((si as u64) << 40)
                                    ^ ((site_i as u64) << 32)
                                    ^ (rate << 24)
                                    ^ ((shape_i as u64) << 16)
                                    ^ trial,
                            );
                            let plan = build_plan(site, scheme, rate, ctx, &mut rng);
                            tally.add(run_trial(scheme, ctx, &q, plan));
                        }
                        totals[si].merge(&tally);
                        cells[si].push(CellRow {
                            site,
                            rate,
                            shape: ctx.dims,
                            tally,
                        });
                    }
                }
            }
            eprintln!(
                "chaos: scheme {:<10} coverage {:>6.1}%  silent {:>2}  ({:.1}s)",
                scheme.name(),
                totals[si].coverage() * 100.0,
                totals[si].silent,
                campaign_t.elapsed().as_secs_f64(),
            );
        }

        // Throughput overhead. Modelled: the checked kernel's extra
        // array cycles over the plain packed pass (checksum lanes ride
        // in an augmented PE row/column, so the per-step MACs are area,
        // not time — see `bfp_core::abft_overhead_cycles`). Host: wall
        // clock of the checked vs unchecked software kernel, no fault
        // session installed.
        let reps = if quick { 3 } else { 5 };
        let modelled_overhead_pct = mean(shapes.iter().map(|&(m, k, n)| {
            100.0 * abft_overhead_cycles(m, k, n) / gemm_cycles_one_array(m, k, n, &mem)
        }));
        let host_overhead_pct = mean(ctxs.iter().map(|ctx| {
            let base = best_secs(reps, || {
                std::hint::black_box(ctx.pa.packed().matmul(ctx.pb.packed()).expect("gemm"));
            });
            let checked = best_secs(reps, || {
                std::hint::black_box(
                    ctx.pa
                        .matmul_with(&ctx.pb, &mut AbftOptions::default())
                        .expect("gemm"),
                );
            });
            100.0 * (checked / base - 1.0)
        }));
        let scheme_overhead_pct = |scheme: Scheme| -> (f64, f64) {
            match scheme {
                Scheme::None => (0.0, 0.0),
                // SECDED rides the BRAM read port; no added cycles.
                Scheme::Ecc => (0.0, 0.0),
                Scheme::Tmr => (200.0, 200.0),
                Scheme::Crosscheck => (100.0, 100.0),
                Scheme::Abft | Scheme::AbftRetry => (modelled_overhead_pct, host_overhead_pct),
            }
        };

        println!(
            "\n{:<11} {:>7} {:>7} {:>9} {:>9} {:>7} {:>10} {:>12} {:>12}",
            "scheme", "trials", "benign", "corrected", "detected", "silent", "coverage", "latency(cyc)", "overhead(%)"
        );
        for (si, &scheme) in Scheme::ALL.iter().enumerate() {
            let t = &totals[si];
            let lat = mean(
                shapes
                    .iter()
                    .filter_map(|&d| latency_cycles(scheme, d, &mem)),
            );
            let lat_s = if latency_cycles(scheme, shapes[0], &mem).is_some() {
                format!("{lat:.0}")
            } else {
                "-".to_string()
            };
            println!(
                "{:<11} {:>7} {:>7} {:>9} {:>9} {:>7} {:>9.1}% {:>12} {:>12.2}",
                scheme.name(),
                t.trials,
                t.benign,
                t.corrected,
                t.detected,
                t.silent,
                t.coverage() * 100.0,
                lat_s,
                scheme_overhead_pct(scheme).0,
            );
        }
        println!("host overhead of the checked kernel: {host_overhead_pct:.1}% (software, informational)");

        // ---- JSON artifact ------------------------------------------
        let mut j = String::new();
        let _ = writeln!(j, "{{");
        let _ = writeln!(j, "  \"schema\": \"bench_faults/v1\",");
        let _ = writeln!(j, "  \"quick\": {quick},");
        let _ = writeln!(j, "  \"seed\": {seed},");
        let _ = writeln!(j, "  \"trials_per_cell\": {trials_per_cell},");
        let _ = write!(j, "  \"shapes\": [");
        for (i, (m, k, n)) in shapes.iter().enumerate() {
            let _ = write!(j, "{}[{m}, {k}, {n}]", if i > 0 { ", " } else { "" });
        }
        let _ = writeln!(j, "],");
        let _ = writeln!(j, "  \"sites\": [\"dsp48\", \"bram\", \"psu\"],");
        let _ = writeln!(j, "  \"rates\": [{}, {}],", rates[0], rates[1]);
        let _ = writeln!(j, "  \"schemes\": [");
        for (si, &scheme) in Scheme::ALL.iter().enumerate() {
            let t = &totals[si];
            let (mo, ho) = scheme_overhead_pct(scheme);
            let _ = writeln!(j, "    {{");
            let _ = writeln!(j, "      \"scheme\": \"{}\",", scheme.name());
            let _ = writeln!(j, "      \"trials\": {},", t.trials);
            let _ = writeln!(j, "      \"benign\": {},", t.benign);
            let _ = writeln!(j, "      \"corrected\": {},", t.corrected);
            let _ = writeln!(j, "      \"detected\": {},", t.detected);
            let _ = writeln!(j, "      \"silent\": {},", t.silent);
            let _ = writeln!(j, "      \"detection_coverage\": {:.6},", t.coverage());
            let _ = writeln!(
                j,
                "      \"silent_rate\": {:.6},",
                t.silent as f64 / t.trials.max(1) as f64
            );
            let _ = writeln!(
                j,
                "      \"correction_success_rate\": {:.6},",
                t.correction_success()
            );
            let lat = if latency_cycles(scheme, shapes[0], &mem).is_some() {
                format!(
                    "{:.1}",
                    mean(
                        shapes
                            .iter()
                            .filter_map(|&d| latency_cycles(scheme, d, &mem))
                    )
                )
            } else {
                "null".to_string()
            };
            let _ = writeln!(j, "      \"mean_detection_latency_cycles\": {lat},");
            let _ = writeln!(j, "      \"modelled_overhead_pct\": {mo:.3},");
            let _ = writeln!(j, "      \"host_overhead_pct\": {ho:.3},");
            let _ = writeln!(j, "      \"cells\": [");
            for (ci, c) in cells[si].iter().enumerate() {
                let (m, k, n) = c.shape;
                let _ = writeln!(
                    j,
                    "        {{\"site\": \"{}\", \"rate\": {}, \"shape\": [{m}, {k}, {n}], \
                     \"trials\": {}, \"benign\": {}, \"corrected\": {}, \"detected\": {}, \
                     \"silent\": {}}}{}",
                    c.site.name(),
                    c.rate,
                    c.tally.trials,
                    c.tally.benign,
                    c.tally.corrected,
                    c.tally.detected,
                    c.tally.silent,
                    if ci + 1 < cells[si].len() { "," } else { "" },
                );
            }
            let _ = writeln!(j, "      ]");
            let _ = writeln!(j, "    }}{}", if si + 1 < Scheme::ALL.len() { "," } else { "" });
        }
        let _ = writeln!(j, "  ],");
        let abft = &totals[4];
        let abft_retry = &totals[5];
        let _ = writeln!(j, "  \"acceptance\": {{");
        let _ = writeln!(
            j,
            "    \"abft_detection_coverage\": {:.6},",
            abft.coverage()
        );
        let _ = writeln!(j, "    \"abft_silent_corruptions\": {},", abft.silent);
        let _ = writeln!(
            j,
            "    \"abft_retry_silent_corruptions\": {},",
            abft_retry.silent
        );
        let _ = writeln!(
            j,
            "    \"abft_modelled_overhead_pct\": {modelled_overhead_pct:.3},"
        );
        let _ = writeln!(j, "    \"abft_host_overhead_pct\": {host_overhead_pct:.3}");
        let _ = writeln!(j, "  }}");
        let _ = writeln!(j, "}}");
        std::fs::write(out_path, &j).expect("write BENCH_FAULTS.json");
        println!("wrote {out_path}");

        // ---- acceptance gates (CI runs --quick and trusts these) ----
        assert!(
            abft.coverage() >= 0.99,
            "ABFT detection coverage {:.4} < 0.99",
            abft.coverage()
        );
        assert_eq!(abft.silent, 0, "ABFT let a corruption through silently");
        assert_eq!(
            abft_retry.silent, 0,
            "the resilient ladder let a corruption through silently"
        );
        assert!(
            modelled_overhead_pct < 10.0,
            "modelled ABFT overhead {modelled_overhead_pct:.2}% >= 10%"
        );
        println!(
            "acceptance: coverage {:.1}% >= 99%, 0 silent, modelled overhead {:.1}% < 10%",
            abft.coverage() * 100.0,
            modelled_overhead_pct
        );
    }
}
