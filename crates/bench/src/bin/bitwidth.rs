//! End-to-end mantissa-bitwidth ablation: how many bfp bits does a
//! Transformer encoder actually need?
//!
//! The paper builds on SqueezeBlock's (ref. 11) observation that block-based
//! low-bitwidth floating point preserves Transformer accuracy without
//! retraining; this experiment sweeps the mantissa width (bfp4…bfp8) and
//! the rounding mode through a full encoder, measuring output fidelity
//! against fp32 — the data a designer needs to pick the datapath width.

use bfp_arith::quant::{Quantizer, RoundMode};
use bfp_arith::stats::ErrorStats;
use bfp_core::Table;
use bfp_transformer::{MixedEngine, RefEngine, VitConfig, VitModel};

fn main() {
    // A mid-size encoder keeps the bit-exact sweep fast while being deep
    // enough for error accumulation to show.
    let cfg = VitConfig {
        dim: 64,
        depth: 4,
        heads: 4,
        mlp_ratio: 4,
        seq: 32,
    };
    let model = VitModel::new_random(cfg, 99);
    let x = model.synthetic_input(17);
    let want = model.forward(&mut RefEngine, &x);

    let run = |q: Quantizer| -> (f64, f64) {
        let mut e = MixedEngine::with_quantizer(q);
        let got = model.forward(&mut e, &x);
        let mut s = ErrorStats::new();
        s.push_slices(got.data(), want.data());
        // Cosine similarity as the scale-free companion metric.
        let dot: f64 = got
            .data()
            .iter()
            .zip(want.data())
            .map(|(&g, &w)| g as f64 * w as f64)
            .sum();
        (s.sqnr_db(), dot / (got.frobenius() * want.frobenius()))
    };

    println!(
        "Mantissa-width sweep through a {}-dim, {}-block encoder (vs fp32)\n",
        cfg.dim, cfg.depth
    );
    let mut t = Table::new(
        "bfp mantissa width (8x8 blocks, RNE)",
        &["format", "man bits", "SQNR dB", "cosine"],
    );
    for bits in (4..=8).rev() {
        let (sqnr, cos) = run(Quantizer::with_man_bits(bits));
        t.row(&[
            format!("bfp{bits}"),
            bits.to_string(),
            format!("{sqnr:.1}"),
            format!("{cos:.6}"),
        ]);
    }
    print!("{}", t.render());

    println!();
    let mut t = Table::new(
        "Rounding mode (8-bit mantissas)",
        &["mode", "SQNR dB", "cosine"],
    );
    for (name, mode) in [
        ("nearest-even (paper)", RoundMode::NearestEven),
        ("stochastic", RoundMode::Stochastic),
        ("truncate", RoundMode::Truncate),
    ] {
        let (sqnr, cos) = run(Quantizer {
            round: mode,
            ..Quantizer::default()
        });
        t.row(&[name.into(), format!("{sqnr:.1}"), format!("{cos:.6}")]);
    }
    print!("{}", t.render());

    println!(
        "\n-> fidelity scales ~6.5 dB per mantissa bit with the usability cliff\n\
         around bfp5; at 8 bits, nearest-even rounding is worth ~1.6 bits\n\
         over truncation (and ~0.5 over stochastic) — supporting the paper's\n\
         8-bit-mantissa, RNE-quantizer design point."
    );
}
