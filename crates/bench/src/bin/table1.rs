//! Table I — shared basic operations between bfp8 MatMul, fp32 multiply and
//! fp32 add, demonstrated *live*: each basic operation is exercised on the
//! actual datapath models and its presence per mode reported.

use bfp_arith::fpmul::{HwFp32Mul, MulVariant};
use bfp_arith::softfp::SoftFp32;
use bfp_arith::BfpBlock;
use bfp_core::Table;

fn main() {
    println!("Reproducing Table I: shared basic operations between bfp8 and fp32\n");

    // Demonstrate each decomposition on live values.
    let x = SoftFp32::unpack(1.618034);
    let y = SoftFp32::unpack(-2.714282);
    let pps = HwFp32Mul::partial_products(x, y);
    println!(
        "fp32 mul decomposes into {} int8 partial products (shifts {:?});",
        pps.len(),
        pps.iter().map(|p| p.shift).collect::<Vec<_>>()
    );
    let hw = HwFp32Mul::new(MulVariant::DropLsp);
    println!(
        "the 8-row array retains 8 of them: {:.6} x {:.6} = {:.6}\n",
        1.618034,
        -2.714282,
        hw.mul(1.618034, -2.714282)
    );

    let a = BfpBlock {
        exp: 2,
        man: [[3; 8]; 8],
    };
    let b = BfpBlock {
        exp: -1,
        man: [[5; 8]; 8],
    };
    let prod = a.matmul(&b);
    let sum = a.add(&b);
    println!(
        "bfp8 MatMul: exp {} + {} = {}; 8x8x8 int8 MACs -> wide mantissa {}",
        a.exp, b.exp, prod.exp, prod.man[0][0]
    );
    println!(
        "bfp8 add:    align shift {} -> mantissa {} at exp {}\n",
        a.exp - b.exp,
        sum.man[0][0],
        sum.exp
    );

    let mut t = Table::new(
        "Table I: Shared Basic Operations Between bfp8 and fp32",
        &["Basic Operation", "bfp8 MatMul", "fp32 mul", "fp32 add"],
    );
    t.row_str(&["8-bit MAC", "yes", "yes", "-"]);
    t.row_str(&["Align & shift", "yes", "-", "yes"]);
    t.row_str(&["Partial sum add", "yes", "yes", "-"]);
    t.row_str(&["Mantissa add", "-", "-", "yes"]);
    t.row_str(&["Normalize", "yes", "yes", "yes"]);
    print!("{}", t.render());
    println!("\n(matches the paper's Table I row-for-row; every 'yes' above is");
    println!(" exercised by the unit tests of bfp-arith and bfp-pu)");
}
