//! The paper's §V future-work directions, implemented and measured:
//!
//! 1. **On-chip division** — the prototype ships fp32 divisions to the host
//!    CPU; here Newton–Raphson reciprocal/rsqrt kernels (hardware
//!    multiply/add only) remove that dependency. We quantify the op-count
//!    cost and the accuracy.
//! 2. **"fp32 is often overly precise"** — sweep the non-linear kernels
//!    across reduced-precision formats (fp24 / tf32 / bf16 / fp16) to map
//!    what the non-linear unit actually needs.

use bfp_arith::matrix::MatF32;
use bfp_arith::redfp::RedFp;
use bfp_core::Table;
use bfp_transformer::{reference, Vpu};

fn main() {
    println!("Future-work experiments (paper SSV)\n");

    // ---- 1: on-chip division ------------------------------------------
    let logits: Vec<f32> = (0..197).map(|k| (k as f32 * 0.57).sin() * 8.0).collect();
    let mut reference_row = MatF32::from_vec(1, logits.len(), logits.clone());
    reference::softmax_rows(&mut reference_row);

    let mut host = Vpu::new();
    let mut row_host = logits.clone();
    host.softmax_row(&mut row_host);
    let host_count = host.take_count();

    let mut chip = Vpu::new();
    let mut row_chip = logits.clone();
    chip.softmax_row_onchip(&mut row_chip);
    let chip_count = chip.take_count();

    let max_err = |row: &[f32]| {
        row.iter()
            .zip(reference_row.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max)
    };

    let mut t = Table::new(
        "Softmax over 197 logits: host division vs on-chip Newton-Raphson",
        &["Kernel", "hw muls", "hw adds", "host ops", "max err vs f64"],
    );
    t.row(&[
        "paper prototype (host div)".into(),
        host_count.fp_mul.to_string(),
        host_count.fp_add.to_string(),
        host_count.host_ops().to_string(),
        format!("{:.2e}", max_err(&row_host)),
    ]);
    t.row(&[
        "on-chip NR reciprocal".into(),
        chip_count.fp_mul.to_string(),
        chip_count.fp_add.to_string(),
        chip_count.host_ops().to_string(),
        format!("{:.2e}", max_err(&row_chip)),
    ]);
    print!("{}", t.render());
    println!(
        "-> {} host round-trips eliminated for {} extra multiplies\n",
        host_count.host_ops(),
        chip_count.fp_mul as i64 - host_count.fp_mul as i64
    );

    // ---- 2: precision sweep of the non-linear kernels ------------------
    let n = 384;
    let gamma = vec![1.0f32; n];
    let beta = vec![0.0f32; n];
    // LayerNorm input with outlier channels (±110), the well-documented
    // Transformer activation pattern: their squares push the variance
    // accumulation beyond fp16's 65504 range.
    let ln_src: Vec<f32> = (0..n)
        .map(|j| {
            if j % 64 == 7 {
                if j % 128 == 7 {
                    110.0
                } else {
                    -110.0
                }
            } else {
                (j as f32 * 0.21).sin() * 3.0 + 0.5
            }
        })
        .collect();
    let sm_src: Vec<f32> = (0..n).map(|j| (j as f32 * 0.37).cos() * 6.0).collect();

    let mut ln_ref = MatF32::from_vec(1, n, ln_src.clone());
    reference::layernorm_rows(&mut ln_ref, &gamma, &beta, 1e-6);
    let mut sm_ref = MatF32::from_vec(1, n, sm_src.clone());
    reference::softmax_rows(&mut sm_ref);

    let mut t = Table::new(
        "Non-linear kernels across formats (max abs error vs f64 reference)",
        &[
            "Format",
            "exp bits",
            "man bits",
            "softmax err",
            "layernorm err",
        ],
    );
    for (name, f) in RedFp::PRESETS {
        let mut sm = sm_src.clone();
        f.softmax_row(&mut sm);
        let sm_err = sm
            .iter()
            .zip(sm_ref.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max);
        let mut ln = ln_src.clone();
        f.layernorm_row(&mut ln, &gamma, &beta, 1e-6);
        let ln_err = ln
            .iter()
            .zip(ln_ref.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max);
        t.row(&[
            name.into(),
            f.exp_bits.to_string(),
            f.man_bits.to_string(),
            format!("{sm_err:.2e}"),
            format!("{ln_err:.2e}"),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n-> the 8-bit exponent (range) is non-negotiable — fp16 collapses —\n\
         while mantissa width trades smoothly: fp24/tf32 would serve the\n\
         non-linear unit at a fraction of fp32's datapath, confirming the\n\
         paper's \"overly precise\" conjecture with numbers."
    );
}
