//! Table II — per-component hardware utilisation of one processing unit,
//! regenerated from the analytical resource model.

use bfp_core::Table;
use bfp_platform::{ArrayParams, PuCostModel, ResourceVec};

fn main() {
    println!("Reproducing Table II: hardware utilisation of the processing unit\n");
    let p = ArrayParams::default();

    let mut t = Table::new(
        "Table II (modelled): one processing unit with support modules",
        &["Component", "LUT", "FF", "BRAM", "DSP"],
    );
    let mut total = ResourceVec::default();
    for c in PuCostModel::components(p) {
        total += c.usage;
        t.row(&[
            c.name.to_string(),
            format!("{:.0}", c.usage.lut),
            format!("{:.0}", c.usage.ff),
            format!("{:.1}", c.usage.bram),
            format!("{:.0}", c.usage.dsp),
        ]);
    }
    t.row(&[
        "Total".into(),
        format!("{:.0}", total.lut),
        format!("{:.0}", total.ff),
        format!("{:.1}", total.bram),
        format!("{:.0}", total.dsp),
    ]);
    print!("{}", t.render());

    println!("\nPaper totals: LUT 7348, FF 10329, BRAM 57.5, DSP 72");
    let paper = ResourceVec::new(7348.0, 10329.0, 57.5, 72.0);
    let ok = (total.lut - paper.lut).abs() < 0.5
        && (total.ff - paper.ff).abs() < 0.5
        && (total.bram - paper.bram).abs() < 0.05
        && (total.dsp - paper.dsp).abs() < 0.5;
    println!(
        "Model reproduces the published totals exactly: {}",
        if ok { "YES" } else { "NO" }
    );

    // Overhead of the multi-mode support (Layout Converter + Controller)
    // relative to a pure-bfp8 unit — the paper quotes 10.23% LUT, 11.77% FF.
    // Of the "Buffer & Layout Converter" row, the converter itself is 300
    // LUT / 764 FF (the buffer BRAM wrappers take the remaining LUTs).
    let conv_lut = 300.0;
    let conv_ff = 764.0;
    let ctrl_lut = 452.0;
    let ctrl_ff = 452.0;
    println!(
        "\nMulti-mode overhead modules vs pure bfp8 (paper: 10.23% LUT, 11.77% FF):\n\
         modelled: {:.2}% LUT, {:.2}% FF",
        100.0 * (conv_lut + ctrl_lut) / total.lut,
        100.0 * (conv_ff + ctrl_ff) / total.ff,
    );
}
