//! `e2e` — phase-timed end-to-end DeiT inference bench.
//!
//! Measures images/s and the per-phase wall-clock split (quantize/pack,
//! GEMM, softmax, GELU, LayerNorm, residual/misc) for:
//!
//! * the **baseline** engine — single-threaded, composed quantize→pack
//!   epilogue, VPU multiplies through the partial-product enumeration
//!   (the pre-optimisation execution model, kept runnable on purpose);
//! * the fast path at 1, 2, 4, and 8 threads (fused epilogue, sharded
//!   GEMM + VPU kernels, closed-form multiplier).
//!
//! Every configuration's logits are checked **bit-identical** to the
//! baseline before any number is written — the fast path is a pure
//! wall-clock trade. Results land in `BENCH_E2E.json`.
//!
//! ```sh
//! cargo run --release -p bfp-bench --bin e2e            # full run
//! cargo run --release -p bfp-bench --bin e2e -- --quick # CI smoke
//! cargo run --release -p bfp-bench --bin e2e -- --out /tmp/e.json
//! # Chrome-trace (Perfetto) export of one traced inference pass;
//! # requires the `telemetry` feature:
//! cargo run --release -p bfp-bench --features telemetry --bin e2e -- \
//!     --quick --trace-out trace.json
//! ```
//!
//! The traced pass runs *after* (and separate from) the timed sweep, so
//! `--trace-out` never perturbs the published numbers.

use std::fmt::Write as _;
use std::time::Instant;

use bfp_core::Table;
use bfp_transformer::{DeitConfig, DeitModel, Image, MixedEngine, PhaseTimes, VitConfig};

/// The bench model: a scaled-down DeiT (same shape family as the paper's
/// DeiT-Small target, sized so the full sweep finishes in seconds).
fn bench_config() -> DeitConfig {
    DeitConfig {
        vit: VitConfig {
            dim: 128,
            depth: 4,
            heads: 4,
            mlp_ratio: 4,
            seq: 17,
        },
        patch: 16,
        channels: 3,
        img: 64,
        classes: 10,
    }
}

struct E2eRow {
    label: String,
    threads: usize,
    images_per_s: f64,
    wall_ms: f64,
    phases: PhaseTimes,
    misc_ms: f64,
}

/// Run `images` inferences on `engine` (after a one-image warmup that
/// also fills the weight-plan cache), returning the throughput row and
/// the logits of every image for bit-equivalence checking.
fn run(label: &str, mut engine: MixedEngine, imgs: &[Image], model: &DeitModel) -> (E2eRow, Vec<Vec<f32>>) {
    std::hint::black_box(model.forward(&mut engine, &imgs[0]));
    let _ = engine.take_phase_times();
    let threads = engine.threads();
    let t0 = Instant::now();
    let logits: Vec<Vec<f32>> = imgs
        .iter()
        .map(|img| model.forward(&mut engine, img))
        .collect();
    let wall = t0.elapsed();
    let phases = engine.take_phase_times();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let misc_ms = (wall.saturating_sub(phases.accounted())).as_secs_f64() * 1e3;
    (
        E2eRow {
            label: label.to_string(),
            threads,
            images_per_s: imgs.len() as f64 / wall.as_secs_f64(),
            wall_ms,
            phases,
            misc_ms,
        },
        logits,
    )
}

fn assert_bit_identical(label: &str, got: &[Vec<f32>], want: &[Vec<f32>]) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{label}: image {i} logit count");
        for (j, (x, y)) in g.iter().zip(w).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{label}: image {i} logit {j} diverged from baseline: {x} vs {y}"
            );
        }
    }
}

fn phases_json(s: &mut String, row: &E2eRow, indent: &str) {
    let p = &row.phases;
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let _ = writeln!(s, "{indent}\"phases_ms\": {{");
    let _ = writeln!(s, "{indent}  \"quantize_pack\": {:.3},", ms(p.quantize_pack));
    let _ = writeln!(s, "{indent}  \"gemm\": {:.3},", ms(p.gemm));
    let _ = writeln!(s, "{indent}  \"softmax\": {:.3},", ms(p.softmax));
    let _ = writeln!(s, "{indent}  \"gelu\": {:.3},", ms(p.gelu));
    let _ = writeln!(s, "{indent}  \"layernorm\": {:.3},", ms(p.layernorm));
    let _ = writeln!(s, "{indent}  \"misc\": {:.3}", row.misc_ms);
    let _ = writeln!(s, "{indent}}},");
}

fn row_json(s: &mut String, row: &E2eRow, indent: &str, last: bool) {
    let _ = writeln!(s, "{indent}{{");
    let _ = writeln!(s, "{indent}  \"label\": \"{}\",", row.label);
    let _ = writeln!(s, "{indent}  \"threads\": {},", row.threads);
    phases_json(s, row, &format!("{indent}  "));
    let _ = writeln!(s, "{indent}  \"wall_ms\": {:.3},", row.wall_ms);
    let _ = writeln!(s, "{indent}  \"images_per_s\": {:.3}", row.images_per_s);
    let _ = write!(s, "{indent}}}{}", if last { "\n" } else { ",\n" });
}

fn to_json(
    baseline: &E2eRow,
    sweep: &[E2eRow],
    images: usize,
    host_threads: usize,
    quick: bool,
) -> String {
    let speedup4 = sweep
        .iter()
        .find(|r| r.threads == 4)
        .map(|r| r.images_per_s / baseline.images_per_s)
        .unwrap_or(0.0);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"bench_e2e/v1\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"images\": {images},");
    let _ = writeln!(s, "  \"host_threads\": {host_threads},");
    let _ = writeln!(s, "  \"bit_identical\": true,");
    s.push_str("  \"baseline\": ");
    {
        let mut b = String::new();
        row_json(&mut b, baseline, "  ", true);
        s.push_str(b.trim_start());
    }
    s.push_str(",\n  \"sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        row_json(&mut s, r, "    ", i + 1 == sweep.len());
    }
    s.push_str("  ],\n");
    let _ = writeln!(s, "  \"speedup_vs_baseline_at_4_threads\": {speedup4:.2}");
    s.push_str("}\n");
    s
}

/// Run one fast-path inference pass with a tracer attached and write the
/// Chrome Trace Event JSON to `path`. Compiled out without `telemetry`
/// (the flag then exits with status 2 instead of silently writing an
/// empty trace).
#[cfg(feature = "telemetry")]
fn write_trace(path: &str, model: &DeitModel, imgs: &[Image]) {
    use bfp_telemetry::{Registry, Tracer};
    let tracer = Tracer::new();
    let reg = Registry::new();
    let mut engine = MixedEngine::new().with_threads(4);
    engine.attach_telemetry(tracer.clone(), &reg);
    for img in imgs {
        std::hint::black_box(model.forward(&mut engine, img));
    }
    std::fs::write(path, tracer.chrome_json()).expect("write trace JSON");
    println!(
        "wrote {path} (Chrome trace; metrics: {} counters)",
        reg.snapshot().counters.len()
    );
}

#[cfg(not(feature = "telemetry"))]
fn write_trace(_path: &str, _model: &DeitModel, _imgs: &[Image]) {
    eprintln!(
        "--trace-out requires the telemetry feature: \
         cargo run --release -p bfp-bench --features telemetry --bin e2e -- --trace-out <file>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_E2E.json".to_string());
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1).cloned());

    let images = if quick { 2 } else { 8 };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cfg = bench_config();
    cfg.validate().unwrap();
    let model = DeitModel::new_random(cfg, 3);
    let imgs: Vec<Image> = (0..images)
        .map(|s| Image::synthetic(3, cfg.img, cfg.img, s as u64))
        .collect();

    println!(
        "end-to-end DeiT inference, {} images, {} host threads\n",
        images, host_threads
    );

    let (baseline, base_logits) = run("baseline_scalar", MixedEngine::baseline_scalar(), &imgs, &model);
    let mut sweep = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (row, logits) = run(
            &format!("fast_{threads}t"),
            MixedEngine::new().with_threads(threads),
            &imgs,
            &model,
        );
        // Hard gate: the fast path must not move a single logit bit.
        assert_bit_identical(&row.label, &logits, &base_logits);
        sweep.push(row);
    }

    let mut t = Table::new(
        "per-phase wall clock (ms, whole run)",
        &[
            "config", "img/s", "quant+pack", "gemm", "softmax", "gelu", "layernorm", "misc",
        ],
    );
    let ms = |d: std::time::Duration| format!("{:.1}", d.as_secs_f64() * 1e3);
    for r in std::iter::once(&baseline).chain(sweep.iter()) {
        t.row(&[
            r.label.clone(),
            format!("{:.2}", r.images_per_s),
            ms(r.phases.quantize_pack),
            ms(r.phases.gemm),
            ms(r.phases.softmax),
            ms(r.phases.gelu),
            ms(r.phases.layernorm),
            format!("{:.1}", r.misc_ms),
        ]);
    }
    print!("{}", t.render());

    let json = to_json(&baseline, &sweep, images, host_threads, quick);
    std::fs::write(&out_path, &json).expect("write BENCH_E2E.json");
    println!("\nwrote {out_path}");

    let speedup4 = sweep
        .iter()
        .find(|r| r.threads == 4)
        .map(|r| r.images_per_s / baseline.images_per_s)
        .unwrap_or(0.0);
    println!(
        "acceptance anchor: {:.2}x images/s at 4 threads vs the scalar baseline (logits bit-identical)",
        speedup4
    );

    if let Some(path) = trace_out {
        write_trace(&path, &model, &imgs[..imgs.len().min(2)]);
    }
}
