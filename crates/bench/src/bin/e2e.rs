//! `e2e` — phase-timed end-to-end DeiT inference bench.
//!
//! Measures images/s and the per-phase wall-clock split (quantize/pack,
//! GEMM, softmax, GELU, LayerNorm, residual/misc) for:
//!
//! * the **baseline** engine — single-threaded, composed quantize→pack
//!   epilogue, VPU multiplies through the partial-product enumeration
//!   (the pre-optimisation execution model, kept runnable on purpose);
//! * the **exact** fast path at 1, 2, 4, and 8 threads (fused epilogue,
//!   sharded GEMM + VPU kernels, closed-form multiplier, bit-exact
//!   nonlinear kernels);
//! * the **fast-nonlinear** path at the same thread counts
//!   (`NonlinearMode::Fast`: LUT/polynomial GELU–exp–rsqrt on a modelled
//!   nonlinear unit — see DESIGN.md for its tested ULP envelope).
//!
//! The fast-path engines run under the **compiled fusion plan**: the
//! core planner lowers the bench model to the graph IR, pattern-matches
//! the GEMM→bias→GELU and GEMM→bias→residual chains, and the distilled
//! [`CompiledVitPlan`] routes every block through the fused drain
//! kernels (shared q/k/v pack, requantizing fc1→fc2 edge). A dedicated
//! fused-vs-unfused A/B pair measures what the plan buys and lands in
//! the JSON's `fusion` block, together with the planner's per-node
//! decisions and priced cycle variants.
//!
//! Every exact configuration's logits are checked **bit-identical** to
//! the baseline before any number is written. Fast-nonlinear logits are
//! checked identical across thread counts (sharding stays bit-invariant)
//! and reported against the baseline as a measured error envelope
//! (max ULP / max abs / SQNR). Both thread sweeps are gated monotone:
//! more budget must never cost throughput beyond noise tolerance — the
//! regression that flat-lined the PR-6 sweep. Results land in
//! `BENCH_E2E.json` (schema `bench_e2e/v4`).
//!
//! A dedicated **drift attribution** pass re-runs the compiled plan with
//! per-node wall timing armed and calibrates the planner's cycle prices
//! against measured host seconds ([`bfp_core::attribute_plan_drift`]):
//! the JSON's `drift` block carries the calibration factor, every
//! priced-and-measured node's drift ratio, and the top mispriced nodes.
//! The bench gates coverage (every priced node measured) and the
//! documented mispricing tolerance (see DESIGN.md "Observability").
//!
//! ```sh
//! cargo run --release -p bfp-bench --bin e2e            # full run
//! cargo run --release -p bfp-bench --bin e2e -- --quick # CI smoke
//! cargo run --release -p bfp-bench --bin e2e -- --out /tmp/e.json
//! # Chrome-trace (Perfetto) export of one traced inference pass;
//! # requires the `telemetry` feature:
//! cargo run --release -p bfp-bench --features telemetry --bin e2e -- \
//!     --quick --trace-out trace.json
//! ```
//!
//! The traced pass runs *after* (and separate from) the timed sweep, so
//! `--trace-out` never perturbs the published numbers.

use std::fmt::Write as _;
use std::time::Instant;

use bfp_arith::ulp::{EnvelopeStats, UlpEnvelope};
use bfp_core::prelude::System;
use bfp_core::{lower_vit, plan_fusion, FuseDecision, FuseKind, FusePlan, Table};
use bfp_telemetry::PlanDriftReport;
use bfp_transformer::{
    CompiledVitPlan, DeitConfig, DeitModel, Image, MixedEngine, NonlinearMode, OpCensus,
    PhaseTimes, VitConfig,
};

/// Cycle-price drift tolerance on the clean bench encoder: after
/// calibration, every plan node's measured/predicted ratio must stay
/// within this factor of 1 (cycle-weighted; see DESIGN.md
/// "Observability" for the measured headroom behind the number).
const DRIFT_TOLERANCE: f64 = 16.0;

/// The bench model: a scaled-down DeiT (same shape family as the paper's
/// DeiT-Small target, sized so the full sweep finishes in seconds).
fn bench_config() -> DeitConfig {
    DeitConfig {
        vit: VitConfig {
            dim: 128,
            depth: 4,
            heads: 4,
            mlp_ratio: 4,
            seq: 17,
        },
        patch: 16,
        channels: 3,
        img: 64,
        classes: 10,
    }
}

struct E2eRow {
    label: String,
    threads: usize,
    nonlinear: NonlinearMode,
    images_per_s: f64,
    wall_ms: f64,
    phases: PhaseTimes,
    misc_ms: f64,
    /// Fused-kernel GEMMs vs composed GEMMs over the timed passes.
    fusion_hits: u64,
    fusion_misses: u64,
    /// Minimum quantize-pack phase time across all timed passes (ms).
    /// The pack work per pass is deterministic, so the minimum is the
    /// lowest-noise estimate of its true cost — the A/B reduction metric
    /// uses this rather than the best-throughput pass's (possibly noisy)
    /// phase split.
    qp_min_ms: f64,
}

impl E2eRow {
    /// Name of the phase with the largest wall-clock share.
    fn largest_phase(&self) -> &'static str {
        let p = &self.phases;
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        let mut best = ("quantize_pack", ms(p.quantize_pack));
        for (name, v) in [
            ("gemm", ms(p.gemm)),
            ("softmax", ms(p.softmax)),
            ("gelu", ms(p.gelu)),
            ("layernorm", ms(p.layernorm)),
            ("misc", self.misc_ms),
        ] {
            if v > best.1 {
                best = (name, v);
            }
        }
        best.0
    }
}

/// Run `passes` timed sweeps of `images` inferences on `engine` (after a
/// one-image warmup that also fills the weight-plan cache), keeping the
/// best-throughput pass — the pass least perturbed by host noise; the
/// shared runners this bench lives on swing 30%+ between identical
/// passes. Returns the best pass's throughput row, the logits of every
/// image for equivalence checking (identical across passes — the engine
/// is deterministic), and that pass's VPU op census.
fn run(
    label: &str,
    mut engine: MixedEngine,
    imgs: &[Image],
    model: &DeitModel,
    passes: usize,
) -> (E2eRow, Vec<Vec<f32>>, OpCensus) {
    std::hint::black_box(model.forward(&mut engine, &imgs[0]));
    let _ = engine.take_phase_times();
    let _ = engine.take_census();
    let threads = engine.threads();
    let mut best: Option<(E2eRow, Vec<Vec<f32>>, OpCensus)> = None;
    let mut qp_min_ms = f64::INFINITY;
    for _ in 0..passes.max(1) {
        let (warm_hits, warm_misses) = engine.fusion_stats();
        let t0 = Instant::now();
        let logits: Vec<Vec<f32>> = imgs
            .iter()
            .map(|img| model.forward(&mut engine, img))
            .collect();
        let wall = t0.elapsed();
        let phases = engine.take_phase_times();
        let census = engine.take_census();
        let (hits, misses) = engine.fusion_stats();
        qp_min_ms = qp_min_ms.min(phases.quantize_pack.as_secs_f64() * 1e3);
        let row = E2eRow {
            label: label.to_string(),
            threads,
            nonlinear: engine.nonlinear_mode(),
            images_per_s: imgs.len() as f64 / wall.as_secs_f64(),
            wall_ms: wall.as_secs_f64() * 1e3,
            phases,
            misc_ms: (wall.saturating_sub(phases.accounted())).as_secs_f64() * 1e3,
            fusion_hits: hits - warm_hits,
            fusion_misses: misses - warm_misses,
            qp_min_ms: 0.0,
        };
        if best
            .as_ref()
            .is_none_or(|(b, _, _)| row.images_per_s > b.images_per_s)
        {
            best = Some((row, logits, census));
        }
    }
    let mut best = best.expect("at least one pass");
    best.0.qp_min_ms = qp_min_ms;
    best
}

fn assert_bit_identical(label: &str, got: &[Vec<f32>], want: &[Vec<f32>]) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{label}: image {i} logit count");
        for (j, (x, y)) in g.iter().zip(w).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{label}: image {i} logit {j} diverged from baseline: {x} vs {y}"
            );
        }
    }
}

/// Gate a thread sweep monotone-within-noise: adding budget must never
/// drop throughput below `tol` × the best seen at a smaller budget (on a
/// core-starved host every budget clamps to the same effective threads,
/// so rows must agree to within timing noise).
fn assert_monotone(sweep: &[E2eRow], tol: f64) {
    let mut best = 0.0f64;
    for r in sweep {
        assert!(
            r.images_per_s >= tol * best,
            "thread sweep regressed: {} at {:.2} img/s vs best {:.2} (tolerance {tol})",
            r.label,
            r.images_per_s,
            best
        );
        best = best.max(r.images_per_s);
    }
}

/// Measured fast-vs-baseline logit divergence for the JSON report.
struct LogitEnvelope {
    max_ulp: u64,
    max_abs: f32,
    sqnr_db: f64,
}

fn logit_envelope(fast: &[Vec<f32>], base: &[Vec<f32>]) -> LogitEnvelope {
    // The per-kernel ULP envelopes (tests/nonlinear_ulp.rs) do not
    // survive the network: bfp8 requantization snaps each GEMM input to
    // a discrete grid, so a sub-ulp nonlinear difference can flip a
    // mantissa rounding and grow by a quantization step per layer. The
    // end-to-end contract is therefore absolute + SQNR: measured
    // max_abs 2.1e-2 / 37.6 dB on the full run, gated with headroom.
    let env = UlpEnvelope::new(1 << 23, 0.05);
    let mut s = EnvelopeStats::new();
    for (g, w) in fast.iter().zip(base) {
        for (x, y) in g.iter().zip(w) {
            assert!(
                s.record(*x, *y, &env),
                "fast-nonlinear logit outside end-to-end envelope: {x} vs {y}"
            );
        }
    }
    assert!(
        s.sqnr_db() > 30.0,
        "fast-nonlinear logit SQNR too low: {:.1} dB",
        s.sqnr_db()
    );
    LogitEnvelope {
        max_ulp: s.max_ulp,
        max_abs: s.max_abs,
        sqnr_db: s.sqnr_db(),
    }
}

fn phases_json(s: &mut String, row: &E2eRow, indent: &str) {
    let p = &row.phases;
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let _ = writeln!(s, "{indent}\"phases_ms\": {{");
    let _ = writeln!(s, "{indent}  \"quantize_pack\": {:.3},", ms(p.quantize_pack));
    let _ = writeln!(s, "{indent}  \"gemm\": {:.3},", ms(p.gemm));
    let _ = writeln!(s, "{indent}  \"softmax\": {:.3},", ms(p.softmax));
    let _ = writeln!(s, "{indent}  \"gelu\": {:.3},", ms(p.gelu));
    let _ = writeln!(s, "{indent}  \"layernorm\": {:.3},", ms(p.layernorm));
    let _ = writeln!(s, "{indent}  \"misc\": {:.3}", row.misc_ms);
    let _ = writeln!(s, "{indent}}},");
}

fn row_json(s: &mut String, row: &E2eRow, indent: &str, last: bool) {
    let _ = writeln!(s, "{indent}{{");
    let _ = writeln!(s, "{indent}  \"label\": \"{}\",", row.label);
    let _ = writeln!(s, "{indent}  \"threads\": {},", row.threads);
    let _ = writeln!(s, "{indent}  \"nonlinear\": \"{}\",", row.nonlinear.as_str());
    let _ = writeln!(s, "{indent}  \"fusion_hits\": {},", row.fusion_hits);
    let _ = writeln!(s, "{indent}  \"fusion_misses\": {},", row.fusion_misses);
    let _ = writeln!(s, "{indent}  \"largest_phase\": \"{}\",", row.largest_phase());
    phases_json(s, row, &format!("{indent}  "));
    let _ = writeln!(s, "{indent}  \"wall_ms\": {:.3},", row.wall_ms);
    let _ = writeln!(s, "{indent}  \"images_per_s\": {:.3}", row.images_per_s);
    let _ = write!(s, "{indent}}}{}", if last { "\n" } else { ",\n" });
}

/// Fused-vs-unfused A/B measurement: same model, same thread budget, the
/// only difference is the compiled plan. Two operating points:
///
/// * **exact** — anchors bit-identity (both sides must match the scalar
///   oracle) and the quantize-pack phase reduction; its throughput delta
///   is modest because the exact GELU dominates and fusion cannot shrink
///   it;
/// * **fastnl** — the production operating point, where the pack-cycle
///   elimination is a visible fraction of the wall clock; the throughput
///   gate runs here.
struct FusionAb {
    unfused: E2eRow,
    fused: E2eRow,
    fastnl_unfused: E2eRow,
    fastnl_fused: E2eRow,
    /// Fused/unfused img/s at the exact operating point.
    speedup_exact: f64,
    /// Fused/unfused img/s at the fast-nonlinear operating point.
    speedup_fastnl: f64,
    quantize_pack_reduction: f64,
}

fn decision_str(d: FuseDecision) -> String {
    match d {
        FuseDecision::Standalone => "standalone".into(),
        FuseDecision::FusedGemm(FuseKind::BiasGelu) => "fused_gemm:bias_gelu".into(),
        FuseDecision::FusedGemm(FuseKind::BiasGeluRequant) => {
            "fused_gemm:bias_gelu_requant".into()
        }
        FuseDecision::FusedGemm(FuseKind::BiasResidual) => "fused_gemm:bias_residual".into(),
        FuseDecision::FusedInto(i) => format!("fused_into:{i}"),
        FuseDecision::SharedPack(g) => format!("shared_pack:{g}"),
    }
}

/// The `fusion` block: the planner's verdict (per-node decisions, priced
/// cycle variants) plus the measured fused-vs-unfused A/B.
fn fusion_json(s: &mut String, plan: &FusePlan, compiled: &CompiledVitPlan, ab: &FusionAb) {
    s.push_str("  \"fusion\": {\n");
    s.push_str("    \"plan\": {\n");
    let _ = writeln!(s, "      \"fuse_qkv\": {},", compiled.fuse_qkv);
    let _ = writeln!(s, "      \"fuse_wo_residual\": {},", compiled.fuse_wo_residual);
    let _ = writeln!(s, "      \"fuse_fc1_gelu\": {},", compiled.fuse_fc1_gelu);
    let _ = writeln!(s, "      \"fuse_fc2_residual\": {},", compiled.fuse_fc2_residual);
    let _ = writeln!(s, "      \"prefetch_weights\": {},", compiled.prefetch_weights);
    let _ = writeln!(
        s,
        "      \"fused_gemms_per_block\": {}",
        compiled.fused_gemms_per_block()
    );
    s.push_str("    },\n");
    s.push_str("    \"planner\": {\n");
    let _ = writeln!(s, "      \"fused_gemms\": {},", plan.fused_gemms);
    let _ = writeln!(s, "      \"absorbed_nodes\": {},", plan.absorbed_nodes);
    let _ = writeln!(s, "      \"shared_pack_groups\": {},", plan.shared_pack_groups);
    let _ = writeln!(s, "      \"pack_reduction\": {:.3},", plan.pack_reduction());
    s.push_str("      \"timing_cycles\": {\n");
    let _ = writeln!(s, "        \"unfused\": {:.0},", plan.timing.unfused_cycles);
    let _ = writeln!(s, "        \"fused\": {:.0},", plan.timing.fused_cycles);
    let _ = writeln!(
        s,
        "        \"double_buffered\": {:.0}",
        plan.timing.double_buffered_cycles
    );
    s.push_str("      }\n");
    s.push_str("    },\n");
    s.push_str("    \"nodes\": [\n");
    for (i, n) in plan.nodes.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"name\": \"{}\", \"decision\": \"{}\"}}{}",
            n.name,
            decision_str(n.decision),
            if i + 1 == plan.nodes.len() { "\n" } else { ",\n" }
        );
    }
    s.push_str("    ],\n");
    for (key, row) in [
        ("unfused", &ab.unfused),
        ("fused", &ab.fused),
        ("fastnl_unfused", &ab.fastnl_unfused),
        ("fastnl_fused", &ab.fastnl_fused),
    ] {
        let _ = write!(s, "    \"{key}\": ");
        let mut b = String::new();
        row_json(&mut b, row, "    ", true);
        s.push_str(b.trim_start());
        s.push_str(",\n");
    }
    let _ = writeln!(
        s,
        "    \"speedup_fused_vs_unfused\": {:.3},",
        ab.speedup_fastnl
    );
    let _ = writeln!(
        s,
        "    \"speedup_fused_vs_unfused_exact\": {:.3},",
        ab.speedup_exact
    );
    let _ = writeln!(
        s,
        "    \"quantize_pack_reduction_measured\": {:.3}",
        ab.quantize_pack_reduction
    );
    s.push_str("  },\n");
}

fn op_mix_json(s: &mut String, census: &OpCensus, indent: &str) {
    let mut total = census.softmax;
    total.merge(&census.gelu);
    total.merge(&census.layernorm);
    let _ = writeln!(s, "{indent}\"op_mix\": {{");
    let _ = writeln!(s, "{indent}  \"fp_mul\": {},", total.fp_mul);
    let _ = writeln!(s, "{indent}  \"fp_add\": {},", total.fp_add);
    let _ = writeln!(s, "{indent}  \"exp_adjust\": {},", total.exp_adjust);
    let _ = writeln!(s, "{indent}  \"cmp\": {},", total.cmp);
    let _ = writeln!(s, "{indent}  \"lut\": {},", total.lut);
    let _ = writeln!(s, "{indent}  \"host_div\": {},", total.host_div);
    let _ = writeln!(s, "{indent}  \"host_sqrt\": {}", total.host_sqrt);
    let _ = writeln!(s, "{indent}}},");
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    baseline: &E2eRow,
    exact_sweep: &[E2eRow],
    fast_sweep: &[E2eRow],
    fast_census: &OpCensus,
    envelope: &LogitEnvelope,
    plan: &FusePlan,
    compiled: &CompiledVitPlan,
    ab: &FusionAb,
    drift: &PlanDriftReport,
    images: usize,
    host_threads: usize,
    quick: bool,
) -> String {
    let speedup4 = exact_sweep
        .iter()
        .find(|r| r.threads == 4)
        .map(|r| r.images_per_s / baseline.images_per_s)
        .unwrap_or(0.0);
    let best = |rows: &[E2eRow]| {
        rows.iter()
            .map(|r| r.images_per_s)
            .fold(0.0f64, f64::max)
    };
    let speedup_fast = best(fast_sweep) / best(exact_sweep);
    let fast_largest = fast_sweep
        .iter()
        .max_by(|a, b| a.images_per_s.total_cmp(&b.images_per_s))
        .map(|r| r.largest_phase())
        .unwrap_or("none");
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"bench_e2e/v4\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"images\": {images},");
    let _ = writeln!(s, "  \"host_threads\": {host_threads},");
    let _ = writeln!(s, "  \"bit_identical\": true,");
    fusion_json(&mut s, plan, compiled, ab);
    s.push_str("  \"baseline\": ");
    {
        let mut b = String::new();
        row_json(&mut b, baseline, "  ", true);
        s.push_str(b.trim_start());
    }
    s.push_str(",\n  \"sweep\": [\n");
    for (i, r) in exact_sweep.iter().enumerate() {
        row_json(&mut s, r, "    ", i + 1 == exact_sweep.len());
    }
    s.push_str("  ],\n");
    s.push_str("  \"nonlinear\": {\n");
    let _ = writeln!(s, "    \"fast_mode\": \"{}\",", NonlinearMode::Fast.as_str());
    s.push_str("    \"fast_sweep\": [\n");
    for (i, r) in fast_sweep.iter().enumerate() {
        row_json(&mut s, r, "      ", i + 1 == fast_sweep.len());
    }
    s.push_str("    ],\n");
    op_mix_json(&mut s, fast_census, "    ");
    s.push_str("    \"logit_envelope\": {\n");
    let _ = writeln!(s, "      \"max_ulp\": {},", envelope.max_ulp);
    let _ = writeln!(s, "      \"max_abs\": {:.3e},", envelope.max_abs);
    let _ = writeln!(s, "      \"sqnr_db\": {:.1}", envelope.sqnr_db);
    s.push_str("    },\n");
    let _ = writeln!(s, "    \"largest_phase_fast\": \"{fast_largest}\",");
    let _ = writeln!(s, "    \"speedup_fast_vs_exact\": {speedup_fast:.2}");
    s.push_str("  },\n");
    s.push_str("  \"drift\": ");
    s.push_str(&drift.to_json(5));
    s.push_str(",\n");
    let _ = writeln!(s, "  \"speedup_vs_baseline_at_4_threads\": {speedup4:.2}");
    s.push_str("}\n");
    s
}

/// Run one fast-path inference pass with a tracer attached and write the
/// Chrome Trace Event JSON to `path`. Compiled out without `telemetry`
/// (the flag then exits with status 2 instead of silently writing an
/// empty trace).
#[cfg(feature = "telemetry")]
fn write_trace(path: &str, model: &DeitModel, imgs: &[Image]) {
    use bfp_telemetry::{Registry, Tracer};
    let tracer = Tracer::new();
    let reg = Registry::new();
    // Trace the fast-nonlinear path: its spans include the nonlinear-unit
    // op-mix counters (engine_fast_nl_*), the numbers DESIGN.md prices.
    let mut engine = MixedEngine::fast_nonlinear().with_threads(4);
    engine.attach_telemetry(tracer.clone(), &reg);
    for img in imgs {
        std::hint::black_box(model.forward(&mut engine, img));
    }
    std::fs::write(path, tracer.chrome_json()).expect("write trace JSON");
    println!(
        "wrote {path} (Chrome trace; metrics: {} counters)",
        reg.snapshot().counters.len()
    );
}

#[cfg(not(feature = "telemetry"))]
fn write_trace(_path: &str, _model: &DeitModel, _imgs: &[Image]) {
    eprintln!(
        "--trace-out requires the telemetry feature: \
         cargo run --release -p bfp-bench --features telemetry --bin e2e -- --trace-out <file>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_E2E.json".to_string());
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1).cloned());

    let images = if quick { 2 } else { 8 };
    // Best-of-N timed passes per configuration; see `run` — the gates
    // compare configurations against each other, so each side must be a
    // low-noise estimate or the comparison gates flake on shared hosts.
    let passes = if quick { 2 } else { 3 };
    // Quick mode runs on loaded CI runners; the full run publishes the
    // checked-in numbers from a quiet host.
    let sweep_tol = if quick { 0.65 } else { 0.80 };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cfg = bench_config();
    cfg.validate().unwrap();
    let model = DeitModel::new_random(cfg, 3);
    let imgs: Vec<Image> = (0..images)
        .map(|s| Image::synthetic(3, cfg.img, cfg.img, s as u64))
        .collect();

    // Compile the fusion plan: lower the encoder to the graph IR, let the
    // planner price and pattern-match it, and distill the verdict into
    // the switch set the engine executes.
    let graph = lower_vit(&cfg.vit);
    let sys = System::paper();
    let fuse_plan = plan_fusion(&graph, &sys);
    let compiled = fuse_plan.compiled_vit_plan(&graph, &sys);

    println!(
        "end-to-end DeiT inference, {} images, {} host threads\n\
         fusion plan: {} fused GEMMs, {} shared-pack groups, \
         {:.0}% of quantize-pack cycles eliminated\n",
        images,
        host_threads,
        fuse_plan.fused_gemms,
        fuse_plan.shared_pack_groups,
        100.0 * fuse_plan.pack_reduction(),
    );

    let (baseline, base_logits, _) = run(
        "baseline_scalar",
        MixedEngine::baseline_scalar(),
        &imgs,
        &model,
        passes,
    );
    let mut exact_sweep = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (row, logits, _) = run(
            &format!("fast_{threads}t"),
            MixedEngine::new().with_threads(threads).with_vit_plan(compiled),
            &imgs,
            &model,
            passes,
        );
        // Hard gate: the compiled fused path must not move a single
        // logit bit against the hand-wired scalar oracle.
        assert_bit_identical(&row.label, &logits, &base_logits);
        exact_sweep.push(row);
    }
    assert_monotone(&exact_sweep, sweep_tol);

    let mut fast_sweep = Vec::new();
    let mut fast_logits: Option<Vec<Vec<f32>>> = None;
    let mut fast_census = OpCensus::default();
    for threads in [1usize, 2, 4, 8] {
        let (row, logits, census) = run(
            &format!("fastnl_{threads}t"),
            MixedEngine::fast_nonlinear()
                .with_threads(threads)
                .with_vit_plan(compiled),
            &imgs,
            &model,
            passes,
        );
        // Sharding stays bit-invariant inside the fast path too: every
        // thread budget must produce the same logits.
        match &fast_logits {
            None => fast_logits = Some(logits),
            Some(first) => assert_bit_identical(&row.label, &logits, first),
        }
        fast_census = census;
        fast_sweep.push(row);
    }
    assert_monotone(&fast_sweep, sweep_tol);
    let envelope = logit_envelope(fast_logits.as_ref().unwrap(), &base_logits);

    // Fused-vs-unfused A/B pairs at the single-thread operating point:
    // same engine, same model, the only difference is the compiled plan.
    // The exact pair anchors bit-identity against the scalar oracle and
    // the quantize-pack reduction; the fastnl pair is where fusion's
    // eliminated pack cycles show as throughput, so the speedup gate
    // runs there.
    let (unfused_row, unfused_logits, _) = run(
        "exact_unfused_1t",
        MixedEngine::new().with_threads(1),
        &imgs,
        &model,
        passes,
    );
    assert_bit_identical(&unfused_row.label, &unfused_logits, &base_logits);
    let (fused_row, fused_logits, _) = run(
        "exact_fused_1t",
        MixedEngine::new().with_threads(1).with_vit_plan(compiled),
        &imgs,
        &model,
        passes,
    );
    assert_bit_identical(&fused_row.label, &fused_logits, &base_logits);
    assert_eq!(unfused_row.fusion_hits, 0, "plan-less engine never fuses");
    assert!(fused_row.fusion_hits > 0, "compiled plan must hit");

    let (fnl_unfused_row, fnl_unfused_logits, _) = run(
        "fastnl_unfused_1t",
        MixedEngine::fast_nonlinear().with_threads(1),
        &imgs,
        &model,
        passes,
    );
    // Fusion must not move a fast-nonlinear bit either: both sides of
    // the fastnl pair must match the planned fastnl sweep exactly.
    assert_bit_identical(
        &fnl_unfused_row.label,
        &fnl_unfused_logits,
        fast_logits.as_ref().unwrap(),
    );
    let (fnl_fused_row, fnl_fused_logits, _) = run(
        "fastnl_fused_1t",
        MixedEngine::fast_nonlinear()
            .with_threads(1)
            .with_vit_plan(compiled),
        &imgs,
        &model,
        passes,
    );
    assert_bit_identical(
        &fnl_fused_row.label,
        &fnl_fused_logits,
        fast_logits.as_ref().unwrap(),
    );
    assert_eq!(fnl_unfused_row.fusion_hits, 0, "plan-less engine never fuses");
    assert!(fnl_fused_row.fusion_hits > 0, "compiled plan must hit");

    let ab = FusionAb {
        speedup_exact: fused_row.images_per_s / unfused_row.images_per_s,
        speedup_fastnl: fnl_fused_row.images_per_s / fnl_unfused_row.images_per_s,
        // Min-over-passes quantize-pack times at the production operating
        // point: the pack work is nonlinear-mode independent, and the
        // minimum filters host noise out of a millisecond-scale phase.
        quantize_pack_reduction: 1.0
            - fnl_fused_row.qp_min_ms / fnl_unfused_row.qp_min_ms.max(1e-9),
        unfused: unfused_row,
        fused: fused_row,
        fastnl_unfused: fnl_unfused_row,
        fastnl_fused: fnl_fused_row,
    };

    // Drift attribution: arm per-node wall timing on a fresh compiled
    // engine, run the image set once more (after a discarded warmup
    // pass), and calibrate the planner's cycle prices against the
    // measured seconds. Single-threaded so per-node wall time is the
    // node's own cost, not a sharded slice of it.
    let mut drift_engine = MixedEngine::new().with_threads(1).with_vit_plan(compiled);
    drift_engine.enable_node_timing();
    std::hint::black_box(model.forward(&mut drift_engine, &imgs[0]));
    let _ = drift_engine.take_node_times(); // discard the cold-cache warmup
    for img in &imgs {
        std::hint::black_box(model.forward(&mut drift_engine, img));
    }
    let node_times = drift_engine.take_node_times();
    let drift = bfp_core::attribute_plan_drift(&fuse_plan, &node_times);
    print!("{}", drift.to_table().render());

    // Coverage: every priced plan node must have been measured — a gap
    // means the engine and the planner disagree about what ran.
    assert!(
        drift.unmeasured.is_empty(),
        "priced plan nodes never measured: {:?}",
        drift.unmeasured
    );
    assert!(
        drift.unpriced.is_empty(),
        "measured nodes the planner never priced: {:?}",
        drift.unpriced
    );
    assert!(drift.calibration_hz > 0.0 && drift.nodes.len() >= 5);
    // Documented mispricing tolerance (DESIGN.md "Observability"): on a
    // clean encoder every node's calibrated drift ratio stays within
    // DRIFT_TOLERANCE of 1, cycle-weighted. The model prices an FPGA
    // datapath and the measurement is a host CPU, so the bar bounds
    // *relative* mispricing after calibration, not absolute accuracy.
    assert_eq!(
        drift.fraction_within(DRIFT_TOLERANCE),
        1.0,
        "nodes outside the {DRIFT_TOLERANCE}x drift tolerance: {:?}",
        drift
            .top_mispriced(3)
            .iter()
            .map(|n| (n.sample.name.clone(), n.drift_ratio))
            .collect::<Vec<_>>()
    );

    let mut t = Table::new(
        "per-phase wall clock (ms, whole run)",
        &[
            "config", "img/s", "quant+pack", "gemm", "softmax", "gelu", "layernorm", "misc",
        ],
    );
    let ms = |d: std::time::Duration| format!("{:.1}", d.as_secs_f64() * 1e3);
    for r in std::iter::once(&baseline)
        .chain(exact_sweep.iter())
        .chain(fast_sweep.iter())
        .chain([&ab.unfused, &ab.fused, &ab.fastnl_unfused, &ab.fastnl_fused])
    {
        t.row(&[
            r.label.clone(),
            format!("{:.2}", r.images_per_s),
            ms(r.phases.quantize_pack),
            ms(r.phases.gemm),
            ms(r.phases.softmax),
            ms(r.phases.gelu),
            ms(r.phases.layernorm),
            format!("{:.1}", r.misc_ms),
        ]);
    }
    print!("{}", t.render());

    let json = to_json(
        &baseline,
        &exact_sweep,
        &fast_sweep,
        &fast_census,
        &envelope,
        &fuse_plan,
        &compiled,
        &ab,
        &drift,
        images,
        host_threads,
        quick,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_E2E.json");
    println!("\nwrote {out_path}");
    println!(
        "fusion A/B: {:.2}x img/s fused vs unfused at fastnl ({:.2}x exact); \
         quantize-pack time -{:.0}%",
        ab.speedup_fastnl,
        ab.speedup_exact,
        100.0 * ab.quantize_pack_reduction
    );

    // Acceptance gates (after the report, so a failing run still shows
    // its numbers): the fused path must never cost throughput at the
    // production (fast-nonlinear) operating point and must eliminate the
    // quantize-pack round trip on fused edges. At this scaled-down bench
    // model the structural fusion win is a few percent of wall clock
    // (the pack phase it deletes is already small), so the speedup gate
    // is a no-regression floor and the quantize-pack reduction is the
    // quantitative fusion gate. Quick mode runs two images on loaded CI
    // hosts, so its bars are looser.
    let (min_speedup, min_qp) = if quick { (0.90, 0.30) } else { (1.00, 0.40) };
    assert!(
        ab.speedup_fastnl >= min_speedup,
        "fused path regressed: {:.3}x vs unfused at fastnl (floor {min_speedup})",
        ab.speedup_fastnl
    );
    assert!(
        ab.quantize_pack_reduction >= min_qp,
        "quantize-pack reduction {:.3} below floor {min_qp}",
        ab.quantize_pack_reduction
    );

    let best = |rows: &[E2eRow]| rows.iter().map(|r| r.images_per_s).fold(0.0f64, f64::max);
    println!(
        "acceptance anchors: exact fast path {:.2}x vs scalar baseline (logits bit-identical); \
         fast nonlinear {:.2}x vs exact fast path (logit SQNR {:.1} dB, max {} ulp)",
        best(&exact_sweep) / baseline.images_per_s,
        best(&fast_sweep) / best(&exact_sweep),
        envelope.sqnr_db,
        envelope.max_ulp,
    );

    if let Some(path) = trace_out {
        write_trace(&path, &model, &imgs[..imgs.len().min(2)]);
    }
}
