//! Dependency-aware execution timeline for DeiT-Small — the "automatic
//! compilation framework" extension: the operator DAG is scheduled onto the
//! 30-array card and compared against the simple Table IV
//! throughput-division estimate.

use bfp_core::{fmt_si, lower_vit, schedule, LatencyModel, Table};
use bfp_platform::System;
use bfp_transformer::{analytical_census, VitConfig};

fn main() {
    let cfg = VitConfig::deit_small();
    let sys = System::paper();
    println!(
        "Scheduling DeiT-Small onto {} arrays\n",
        sys.cfg.total_arrays()
    );

    let g = lower_vit(&cfg);
    println!(
        "operator graph: {} nodes, {} bfp8 ops, {} fp32 flops",
        g.nodes.len(),
        fmt_si(g.total_bfp_ops() as f64),
        fmt_si(g.total_fp32_flops() as f64)
    );

    let s = schedule(&g, &sys);
    let freq = sys.freq_hz;

    let mut t = Table::new("Schedule summary", &["Metric", "Value"]);
    t.row(&["levels".into(), s.levels.len().to_string()]);
    t.row(&[
        "makespan".into(),
        format!("{:.3} ms", s.seconds(freq) * 1e3),
    ]);
    t.row(&[
        "bfp8-level cycles".into(),
        format!(
            "{:.0} ({:.1}%)",
            s.bfp_cycles,
            100.0 * s.bfp_cycles / s.makespan_cycles
        ),
    ]);
    t.row(&[
        "fp32-level cycles".into(),
        format!(
            "{:.0} ({:.1}%)",
            s.fp32_cycles,
            100.0 * s.fp32_cycles / s.makespan_cycles
        ),
    ]);
    t.row(&[
        "mode-switch cycles".into(),
        format!("{:.0}", s.switch_cycles),
    ]);
    t.row(&[
        "serial (1 array)".into(),
        format!("{:.3} ms", s.serial_cycles / freq * 1e3),
    ]);
    t.row(&["speedup".into(), format!("{:.1}x", s.speedup())]);
    print!("{}", t.render());

    // Compare with the throughput-division model (Table IV).
    let census = analytical_census(&cfg);
    let table4 = LatencyModel::from_system(&sys).breakdown(&census);
    println!(
        "\nThroughput-division estimate (table4 bin): {:.3} ms",
        table4.total_latency_s() * 1e3
    );
    println!(
        "Dependency-aware schedule:                  {:.3} ms ({:+.1}% — stalls + switches)",
        s.seconds(freq) * 1e3,
        100.0 * (s.seconds(freq) / table4.total_latency_s() - 1.0)
    );
    println!(
        "\nfp32 levels take {:.1}% of the makespan — the Table IV conclusion,\n\
         now visible on a dependency-accurate timeline.",
        100.0 * s.fp32_cycles / s.makespan_cycles
    );
}
