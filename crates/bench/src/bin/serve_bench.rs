//! Open-loop load generator for the serving runtime.
//!
//! Requests arrive on a fixed schedule (open loop: the generator does
//! not wait for completions, so queueing delay is visible in the tail),
//! with and without a mid-run fault storm on one array. Emits
//! `BENCH_SERVE.json` so successive PRs have comparable serving numbers.
//!
//! ```text
//! cargo run --release -p bfp-bench --bin serve_bench            # full
//! cargo run --release -p bfp-bench --bin serve_bench -- --quick # CI
//! cargo run --release -p bfp-bench --bin serve_bench -- --out /tmp/s.json
//! # Chrome-trace (Perfetto) export of a separate traced mini-scenario
//! # (per-request queue wait / execute spans, fault instants):
//! cargo run --release -p bfp-bench --bin serve_bench -- --quick --trace-out trace.json
//! ```

use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use bfp_bench::smooth_matrix;
use bfp_core::Table;
use bfp_serve::{
    ArrayFaultPlan, ArrayHealth, HealthPolicy, ServeConfig, ServeRequest, Server, Ticket,
};

const ARRAYS: usize = 4;
const GEMM_N: usize = 32;

fn request(seed: u32) -> ServeRequest {
    ServeRequest::new(
        smooth_matrix(GEMM_N, GEMM_N, seed),
        smooth_matrix(GEMM_N, GEMM_N, seed ^ 0x5A5A),
    )
}

fn config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 1024,
        health: HealthPolicy {
            degrade_strikes: 1,
            quarantine_strikes: 2,
            clean_streak: 8,
            probe_interval: Duration::from_millis(5),
            probe_interval_cap: Duration::from_millis(50),
            probes_to_readmit: 2,
        },
        ..Default::default()
    }
}

/// Closed-loop calibration: mean host wall seconds per request on one
/// array, used to pick an open-loop rate below saturation.
fn calibrate() -> f64 {
    let server = Server::simulated(config(), vec![ArrayFaultPlan::None]);
    let n = 32;
    let t0 = Instant::now();
    for s in 0..n {
        server.submit(request(s)).unwrap().wait().unwrap();
    }
    t0.elapsed().as_secs_f64() / n as f64
}

struct ScenarioResult {
    name: &'static str,
    requests: u64,
    completed: u64,
    failed: u64,
    retries: u64,
    degraded_executions: u64,
    offered_rps: f64,
    achieved_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    queue_high_water: usize,
    quarantine_entries: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive `total` requests at `rate_rps` open-loop arrivals into a fleet
/// where one array is latched-faulty iff `faulty`.
fn run_scenario(
    name: &'static str,
    total: u64,
    rate_rps: f64,
    faulty: bool,
) -> ScenarioResult {
    let mut plans = vec![ArrayFaultPlan::None; ARRAYS];
    let mut heal = None;
    if faulty {
        let (plan, flag) = ArrayFaultPlan::latched();
        plans[ARRAYS - 1] = plan;
        heal = Some(flag);
    }
    let server = Server::simulated(config(), plans);

    let gap = Duration::from_secs_f64(1.0 / rate_rps);
    let t0 = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(total as usize);
    for s in 0..total {
        // Open loop: catch up to the schedule, never wait on responses.
        let due = t0 + gap * s as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        if let Ok(t) = server.submit(request(s as u32)) {
            tickets.push(t);
        }
        // Mid-run repair, so the storm also exercises re-admission.
        if faulty && s == total * 3 / 4 {
            if let Some(flag) = &heal {
                flag.store(false, Ordering::Relaxed);
            }
        }
    }
    server.drain();
    let span = t0.elapsed().as_secs_f64();

    let mut lat_ms: Vec<f64> = tickets
        .iter()
        .filter_map(|t| t.try_get().and_then(Result::ok).map(|r| r.wall_s * 1e3))
        .collect();
    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let st = server.stats();
    ScenarioResult {
        name,
        requests: total,
        completed: st.completed,
        failed: st.failed,
        retries: st.retries,
        degraded_executions: st.degraded_executions,
        offered_rps: rate_rps,
        achieved_rps: st.completed as f64 / span,
        p50_ms: percentile(&lat_ms, 0.50),
        p99_ms: percentile(&lat_ms, 0.99),
        queue_high_water: st.queue_depth_high_water,
        quarantine_entries: st
            .per_array
            .iter()
            .map(|a| a.times_entered(ArrayHealth::Quarantined) as u64)
            .sum(),
    }
}

fn to_json(rows: &[ScenarioResult], quick: bool, service_s: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"bench_serve/v1\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"arrays\": {ARRAYS},");
    let _ = writeln!(s, "  \"gemm_n\": {GEMM_N},");
    let _ = writeln!(s, "  \"calibrated_service_ms\": {:.4},", service_s * 1e3);
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"requests\": {},", r.requests);
        let _ = writeln!(s, "      \"completed\": {},", r.completed);
        let _ = writeln!(s, "      \"failed\": {},", r.failed);
        let _ = writeln!(s, "      \"retries\": {},", r.retries);
        let _ = writeln!(s, "      \"faulted_discarded\": {},", r.degraded_executions);
        let _ = writeln!(s, "      \"offered_rps\": {:.1},", r.offered_rps);
        let _ = writeln!(s, "      \"achieved_rps\": {:.1},", r.achieved_rps);
        let _ = writeln!(s, "      \"p50_ms\": {:.4},", r.p50_ms);
        let _ = writeln!(s, "      \"p99_ms\": {:.4},", r.p99_ms);
        let _ = writeln!(s, "      \"queue_high_water\": {},", r.queue_high_water);
        let _ = writeln!(s, "      \"quarantine_entries\": {}", r.quarantine_entries);
        let _ = write!(s, "    }}{}", if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Run a small traced scenario — one transient-faulty array so the
/// trace shows a fault instant and a retry execution — and write the
/// Chrome Trace Event JSON to `path`. Separate from the measured
/// scenarios, so tracing never perturbs the published numbers.
fn write_trace(path: &str) {
    let tracer = bfp_telemetry::Tracer::new();
    let mut plans = vec![ArrayFaultPlan::None; ARRAYS];
    plans[0] = ArrayFaultPlan::transient(2);
    let server = Server::simulated(config(), plans);
    server.attach_tracer(tracer.clone());
    let tickets: Vec<Ticket> = (0..24)
        .filter_map(|s| server.submit(request(s)).ok())
        .collect();
    for t in &tickets {
        let _ = t.wait();
    }
    server.drain();
    std::fs::write(path, tracer.chrome_json()).expect("write trace JSON");
    println!("wrote {path} (Chrome trace of a {}-request traced scenario)", tickets.len());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_SERVE.json".to_string());
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1).cloned());

    let service_s = calibrate();
    // Offered load: ~60% of the fleet's closed-loop capacity, so the
    // clean scenario is stable and the fault storm shows up as tail
    // latency rather than collapse.
    let rate = 0.6 * ARRAYS as f64 / service_s.max(1e-6);
    let total: u64 = if quick { 80 } else { 400 };

    println!(
        "open-loop serving bench: {ARRAYS} arrays, {GEMM_N}x{GEMM_N} GEMMs, \
         service {:.3} ms/req, offered {:.0} req/s, {total} requests/scenario\n",
        service_s * 1e3,
        rate
    );

    let rows = vec![
        run_scenario("clean", total, rate, false),
        run_scenario("fault_storm", total, rate, true),
    ];

    let mut t = Table::new(
        "open-loop serving latency (host wall clock)",
        &[
            "scenario",
            "done/req",
            "p50 ms",
            "p99 ms",
            "req/s",
            "retries",
            "quarantines",
        ],
    );
    for r in &rows {
        t.row(&[
            r.name.to_string(),
            format!("{}/{}", r.completed, r.requests),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
            format!("{:.0}", r.achieved_rps),
            format!("{}", r.retries),
            format!("{}", r.quarantine_entries),
        ]);
    }
    print!("{}", t.render());

    let json = to_json(&rows, quick, service_s);
    std::fs::write(&out_path, &json).expect("write BENCH_SERVE.json");
    println!("\nwrote {out_path}");

    // Acceptance anchors: the clean run completes everything; the storm
    // run still answers every admitted request correctly or with a
    // typed error, and the faulty array was quarantined.
    let clean = &rows[0];
    let storm = &rows[1];
    assert_eq!(clean.completed, clean.requests, "clean run must complete all");
    assert!(storm.quarantine_entries >= 1, "storm must quarantine");
    assert_eq!(
        storm.completed + storm.failed,
        storm.requests,
        "every admitted request resolves"
    );
    println!(
        "anchors: clean p99 {:.3} ms, storm p99 {:.3} ms ({} retries, {} quarantine entries)",
        clean.p99_ms, storm.p99_ms, storm.retries, storm.quarantine_entries
    );

    if let Some(path) = trace_out {
        write_trace(&path);
    }
}
