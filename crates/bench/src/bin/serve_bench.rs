//! Multi-tenant open-loop load generator for the serving runtime.
//!
//! Three tenants — an interactive `Critical` tenant, a `Standard` batch
//! tenant, and an abusive `Bulk` tenant throttled by a token bucket —
//! drive GEMM+GELU requests at bounded-Pareto-jittered open-loop
//! arrivals (the generator never waits on completions, so queueing delay
//! is visible in the tail). Scenarios:
//!
//! * `clean` — 0.6x of measured fleet capacity, no abuse, no faults.
//! * `overload_2x` — 2.0x offered load including a `Bulk` flood; the
//!   quota, DWRR, and brownout machinery must preserve goodput and the
//!   `Critical` tail.
//! * `fault_storm` — 0.6x load with one latched-faulty array that heals
//!   mid-run, exercising quarantine and re-admission under tenancy.
//!
//! Emits `BENCH_SERVE.json` (schema `bench_serve/v3`, per-tenant rows
//! with p50/p99/p99.9 plus a per-scenario `observatory` block) and
//! hard-asserts the overload acceptance gates before exiting 0: goodput
//! at 2x >= 70% of clean capacity, `Critical` p99 within 2x of the
//! clean run, zero quota violations, zero `Critical` sheds, brownout
//! transitions observed, and every sampled response bit-exact for the
//! mode it actually ran in.
//!
//! The serve-time observatory runs armed in every scenario: the shadow
//! lane re-checks one in 16 clean fast-mode completions against the
//! exact oracle (gated to **zero** envelope violations), SLO burn-rate
//! trackers per tenant/priority stream feed the anomaly flight
//! recorder, and the overload scenario must trip at least one
//! flight-recorder dump. The richest dump is written beside the JSON as
//! `<out>.flight.json` + `<out>.flight.trace.json` (Perfetto-loadable),
//! and the overload scenario's observatory gauges as `<out>.prom`
//! (Prometheus text).
//!
//! ```text
//! cargo run --release -p bfp-bench --bin serve_bench            # full
//! cargo run --release -p bfp-bench --bin serve_bench -- --quick # CI
//! cargo run --release -p bfp-bench --bin serve_bench -- --out /tmp/s.json
//! # Chrome-trace (Perfetto) export of a separate traced mini-scenario
//! # (queue wait / execute spans, fault instants, brownout transitions):
//! cargo run --release -p bfp-bench --bin serve_bench -- --quick --trace-out trace.json
//! ```

use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use bfp_bench::smooth_matrix;
use bfp_core::Table;
use bfp_serve::{
    reference_bits, ArrayFaultPlan, ArrayHealth, Backpressure, BrownoutPolicy, FlightDump,
    HealthPolicy, NonlinearMode, ObservatoryConfig, Priority, Registry, ServeConfig, ServeOp,
    ServeRequest, Server, TenantId, TenantQuota, Ticket,
};

const ARRAYS: usize = 4;
const GEMM_N: usize = 32;
/// Fraction of fleet capacity the abusive tenant's token bucket refills
/// at — everything it offers beyond this is quota-rejected.
const ABUSER_RATE_FRAC: f64 = 0.05;
const ABUSER_BURST: f64 = 16.0;

/// SplitMix64: tiny deterministic PRNG for arrival jitter, so runs with
/// the same flags submit the same schedule.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Bounded-Pareto inter-arrival jitter (alpha 1.5, support [0.4, 8.0]
/// gaps), normalised to unit mean: bursty like real request streams,
/// but with a hard cap so one draw cannot stall the generator.
fn pareto_jitter(rng: &mut SplitMix64) -> f64 {
    const ALPHA: f64 = 1.5;
    const LO: f64 = 0.4;
    const HI: f64 = 8.0;
    // Mean of this bounded Pareto, so dividing restores a unit-mean gap.
    const MEAN: f64 = 0.9418;
    let u = rng.uniform().clamp(1e-12, 1.0 - 1e-12);
    let la = LO.powf(ALPHA);
    let ha = HI.powf(ALPHA);
    let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / ALPHA);
    x / MEAN
}

struct TenantSpec {
    name: &'static str,
    tenant: TenantId,
    priority: Priority,
    weight: u32,
}

const TENANTS: [TenantSpec; 3] = [
    TenantSpec {
        name: "interactive",
        tenant: TenantId(1),
        priority: Priority::Critical,
        weight: 4,
    },
    TenantSpec {
        name: "batch",
        tenant: TenantId(2),
        priority: Priority::Standard,
        weight: 2,
    },
    TenantSpec {
        name: "abuser",
        tenant: TenantId(3),
        priority: Priority::Bulk,
        weight: 1,
    },
];

fn request(seed: u32, spec: &TenantSpec) -> ServeRequest {
    ServeRequest::new(
        smooth_matrix(GEMM_N, GEMM_N, seed),
        smooth_matrix(GEMM_N, GEMM_N, seed ^ 0x5A5A),
    )
    .with_op(ServeOp::GemmGelu)
    .for_tenant(spec.tenant)
    .with_priority(spec.priority)
}

/// The measured serving config: bounded queue with priority-aware
/// shedding, the brownout ladder armed, and the abusive tenant's token
/// bucket sized off measured capacity.
fn config(capacity_rps: f64) -> ServeConfig {
    ServeConfig {
        queue_capacity: 96,
        backpressure: Backpressure::ShedOldest,
        quotas: TENANTS
            .iter()
            .map(|s| {
                (
                    s.tenant,
                    TenantQuota {
                        weight: s.weight,
                        rate_rps: if s.name == "abuser" {
                            ABUSER_RATE_FRAC * capacity_rps
                        } else {
                            0.0
                        },
                        burst: ABUSER_BURST,
                    },
                )
            })
            .collect(),
        brownout: BrownoutPolicy {
            tier1_pressure: 0.3,
            tier2_pressure: 0.6,
            min_dwell: Duration::from_millis(25),
            latency_target: Duration::from_millis(25),
        },
        health: HealthPolicy {
            degrade_strikes: 1,
            quarantine_strikes: 2,
            clean_streak: 8,
            probe_interval: Duration::from_millis(5),
            probe_interval_cap: Duration::from_millis(50),
            probes_to_readmit: 2,
        },
        observatory: ObservatoryConfig {
            // Shadow-execute one in 16 clean fast-mode completions
            // against the exact oracle; the bench gates the violation
            // count at zero. Each sample costs a worker roughly one
            // extra service time, so the rate is a deliberate ~6% tax
            // on fast-mode throughput — sampling much denser visibly
            // eats fleet capacity under overload.
            shadow_every: 16,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A config that cannot brown out or shed — used only to measure the
/// fleet's exact-mode saturated capacity.
fn capacity_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 4096,
        backpressure: Backpressure::Reject,
        brownout: BrownoutPolicy {
            tier1_pressure: 1e9,
            tier2_pressure: 2e9,
            ..BrownoutPolicy::default()
        },
        ..Default::default()
    }
}

/// Closed-loop single-array service estimate (for the report) and the
/// fleet's saturated exact-mode capacity in requests/second (the anchor
/// every offered rate derives from, so scenarios are machine-relative).
fn calibrate(burst: u64) -> (f64, f64) {
    let server = Server::simulated(capacity_config(), vec![ArrayFaultPlan::None]);
    let n = 32;
    let t0 = Instant::now();
    for s in 0..n {
        server
            .submit(request(s, &TENANTS[1]))
            .unwrap()
            .wait()
            .unwrap();
    }
    let service_s = t0.elapsed().as_secs_f64() / n as f64;

    let fleet = Server::simulated(capacity_config(), vec![ArrayFaultPlan::None; ARRAYS]);
    let t0 = Instant::now();
    let tickets: Vec<Ticket> = (0..burst)
        .filter_map(|s| fleet.submit(request(s as u32, &TENANTS[1])).ok())
        .collect();
    fleet.drain();
    let elapsed = t0.elapsed().as_secs_f64();
    let done = tickets
        .iter()
        .filter(|t| matches!(t.try_get(), Some(Ok(_))))
        .count();
    (service_s, done as f64 / elapsed.max(1e-9))
}

#[derive(Clone)]
struct TenantRow {
    name: &'static str,
    submitted: u64,
    admitted: u64,
    rejected: u64,
    quota_rejected: u64,
    completed: u64,
    failed: u64,
    shed: u64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

struct ScenarioResult {
    name: &'static str,
    offered_x: f64,
    offered_rps: f64,
    requests: u64,
    submitted: u64,
    admitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    shed: u64,
    quota_rejected: u64,
    breaker_rejected: u64,
    brownout_rejected: u64,
    deadline_rejected: u64,
    retries: u64,
    goodput_rps: f64,
    completed_exact: u64,
    completed_fast: u64,
    bitexact_checked: u64,
    bitexact_mismatches: u64,
    brownout_max_tier: u8,
    brownout_transitions: u64,
    brownout_sheds: u64,
    critical_shed: u64,
    queue_high_water: usize,
    quarantine_entries: u64,
    span_s: f64,
    tenants: Vec<TenantRow>,
    // Observatory: shadow-lane counters, recorder health, drained dumps,
    // and the scenario's published gauges as Prometheus text.
    shadow_samples: u64,
    envelope_violations: u64,
    records_pushed: u64,
    records_dropped: u64,
    dumps: Vec<FlightDump>,
    prom_text: String,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive `total` requests split across the tenant mix (`shares` are
/// per-tenant fractions of fleet capacity; their sum is the offered
/// multiple of capacity) as a merged open-loop arrival schedule.
fn run_scenario(
    name: &'static str,
    total: u64,
    capacity_rps: f64,
    shares: [f64; 3],
    faulty: bool,
) -> ScenarioResult {
    let mut plans = vec![ArrayFaultPlan::None; ARRAYS];
    let mut heal = None;
    if faulty {
        let (plan, flag) = ArrayFaultPlan::latched();
        plans[ARRAYS - 1] = plan;
        heal = Some(flag);
    }
    let server = Server::simulated(config(capacity_rps), plans);

    // Per-tenant arrival streams with bounded-Pareto jitter, merged into
    // one time-sorted schedule.
    let offered_x: f64 = shares.iter().sum();
    let mut arrivals: Vec<(f64, usize)> = Vec::with_capacity(total as usize);
    for (idx, share) in shares.iter().enumerate() {
        if *share <= 0.0 {
            continue;
        }
        let count = ((total as f64) * share / offered_x).round() as u64;
        let gap = 1.0 / (share * capacity_rps);
        let mut rng = SplitMix64(0xC0FFEE ^ ((idx as u64) << 32) ^ total);
        let mut t = 0.0;
        for _ in 0..count {
            t += gap * pareto_jitter(&mut rng);
            arrivals.push((t, idx));
        }
    }
    arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let requests = arrivals.len() as u64;
    let heal_at = requests * 3 / 4;

    let t0 = Instant::now();
    let mut tickets: Vec<(usize, u32, Ticket)> = Vec::with_capacity(arrivals.len());
    for (s, (due_s, idx)) in arrivals.iter().enumerate() {
        // Open loop: catch up to the schedule, never wait on responses.
        let due = t0 + Duration::from_secs_f64(*due_s);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let seed = s as u32;
        if let Ok(t) = server.submit(request(seed, &TENANTS[*idx])) {
            tickets.push((*idx, seed, t));
        }
        // Mid-run repair, so the storm also exercises re-admission.
        if faulty && s as u64 == heal_at {
            if let Some(flag) = &heal {
                flag.store(false, Ordering::Relaxed);
            }
        }
    }
    server.drain();
    let span_s = t0.elapsed().as_secs_f64();
    let st = server.stats();
    let obs = server.observatory();
    let (shadow_samples, envelope_violations) = (obs.shadow_samples(), obs.envelope_violations());
    let (records_pushed, records_dropped) = (obs.records_pushed(), obs.records_dropped());
    let reg = Registry::new();
    server.publish_observatory(&reg);
    let prom_text = reg.snapshot().to_prometheus_text();
    let dumps = server.take_flight_dumps();

    // Per-tenant latency distributions (completed requests only) plus
    // mode accounting and a spread bit-exactness sample: each checked
    // response must match the fault-free softfp reference *for the
    // nonlinear mode it actually executed in*.
    let mut lat_ms: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut completed_exact = 0u64;
    let mut completed_fast = 0u64;
    let mut bitexact_checked = 0u64;
    let mut bitexact_mismatches = 0u64;
    let stride = (tickets.len() / 48).max(1);
    for (i, (idx, seed, ticket)) in tickets.iter().enumerate() {
        let Some(Ok(resp)) = ticket.try_get() else {
            continue;
        };
        lat_ms[*idx].push(resp.wall_s * 1e3);
        match resp.mode {
            NonlinearMode::Exact => completed_exact += 1,
            NonlinearMode::Fast => completed_fast += 1,
        }
        if i % stride == 0 {
            let a = smooth_matrix(GEMM_N, GEMM_N, *seed);
            let b = smooth_matrix(GEMM_N, GEMM_N, *seed ^ 0x5A5A);
            let want = reference_bits(&a, &b, ServeOp::GemmGelu, resp.mode);
            bitexact_checked += 1;
            if resp.out != want {
                bitexact_mismatches += 1;
            }
        }
    }

    let tenants = TENANTS
        .iter()
        .enumerate()
        .filter(|(idx, _)| shares[*idx] > 0.0)
        .map(|(idx, spec)| {
            let mut lat = std::mem::take(&mut lat_ms[idx]);
            lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let ts = st.tenant(spec.tenant).cloned().unwrap_or_default();
            TenantRow {
                name: spec.name,
                submitted: ts.submitted,
                admitted: ts.admitted,
                rejected: ts.rejected,
                quota_rejected: ts.quota_rejected,
                completed: ts.completed,
                failed: ts.failed,
                shed: ts.shed,
                p50_ms: percentile(&lat, 0.50),
                p99_ms: percentile(&lat, 0.99),
                p999_ms: percentile(&lat, 0.999),
            }
        })
        .collect();

    ScenarioResult {
        name,
        offered_x,
        offered_rps: offered_x * capacity_rps,
        requests,
        submitted: st.submitted,
        admitted: st.admitted,
        rejected: st.rejected,
        completed: st.completed,
        failed: st.failed,
        shed: st.shed,
        quota_rejected: st.quota_rejected,
        breaker_rejected: st.breaker_rejected,
        brownout_rejected: st.brownout_rejected,
        deadline_rejected: st.deadline_rejected,
        retries: st.retries,
        goodput_rps: st.completed as f64 / span_s.max(1e-9),
        completed_exact,
        completed_fast,
        bitexact_checked,
        bitexact_mismatches,
        brownout_max_tier: st.brownout.max_tier,
        brownout_transitions: st.brownout.transitions,
        brownout_sheds: st.brownout.sheds,
        critical_shed: st.priority(Priority::Critical).shed,
        queue_high_water: st.queue_depth_high_water,
        quarantine_entries: st
            .per_array
            .iter()
            .map(|a| a.times_entered(ArrayHealth::Quarantined) as u64)
            .sum(),
        span_s,
        tenants,
        shadow_samples,
        envelope_violations,
        records_pushed,
        records_dropped,
        dumps,
        prom_text,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn to_json(
    rows: &[ScenarioResult],
    quick: bool,
    service_s: f64,
    capacity_rps: f64,
    gates: &Gates,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"bench_serve/v3\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"arrays\": {ARRAYS},");
    let _ = writeln!(s, "  \"gemm_n\": {GEMM_N},");
    let _ = writeln!(s, "  \"op\": \"gemm_gelu\",");
    let _ = writeln!(s, "  \"calibrated_service_ms\": {:.4},", service_s * 1e3);
    let _ = writeln!(s, "  \"capacity_rps\": {capacity_rps:.1},");
    s.push_str("  \"tenants\": [\n");
    for (i, t) in TENANTS.iter().enumerate() {
        let rate = if t.name == "abuser" {
            ABUSER_RATE_FRAC * capacity_rps
        } else {
            0.0
        };
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"tenant\": {}, \"priority\": \"{}\", \
             \"weight\": {}, \"quota_rate_rps\": {:.1}, \"quota_burst\": {}}}{}",
            t.name,
            t.tenant.0,
            t.priority.as_str(),
            t.weight,
            rate,
            ABUSER_BURST,
            if i + 1 < TENANTS.len() { ",\n" } else { "\n" }
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"offered_x\": {:.2},", r.offered_x);
        let _ = writeln!(s, "      \"offered_rps\": {:.1},", r.offered_rps);
        let _ = writeln!(s, "      \"requests\": {},", r.requests);
        let _ = writeln!(s, "      \"submitted\": {},", r.submitted);
        let _ = writeln!(s, "      \"admitted\": {},", r.admitted);
        let _ = writeln!(s, "      \"rejected\": {},", r.rejected);
        let _ = writeln!(s, "      \"completed\": {},", r.completed);
        let _ = writeln!(s, "      \"failed\": {},", r.failed);
        let _ = writeln!(s, "      \"shed\": {},", r.shed);
        let _ = writeln!(s, "      \"quota_rejected\": {},", r.quota_rejected);
        let _ = writeln!(s, "      \"breaker_rejected\": {},", r.breaker_rejected);
        let _ = writeln!(s, "      \"brownout_rejected\": {},", r.brownout_rejected);
        let _ = writeln!(s, "      \"deadline_rejected\": {},", r.deadline_rejected);
        let _ = writeln!(s, "      \"retries\": {},", r.retries);
        let _ = writeln!(s, "      \"goodput_rps\": {:.1},", r.goodput_rps);
        let _ = writeln!(
            s,
            "      \"goodput_frac_of_capacity\": {:.4},",
            r.goodput_rps / capacity_rps
        );
        let _ = writeln!(s, "      \"completed_exact\": {},", r.completed_exact);
        let _ = writeln!(s, "      \"completed_fast\": {},", r.completed_fast);
        let _ = writeln!(s, "      \"bitexact_checked\": {},", r.bitexact_checked);
        let _ = writeln!(
            s,
            "      \"bitexact_mismatches\": {},",
            r.bitexact_mismatches
        );
        let _ = writeln!(
            s,
            "      \"brownout\": {{\"max_tier\": {}, \"transitions\": {}, \"sheds\": {}}},",
            r.brownout_max_tier, r.brownout_transitions, r.brownout_sheds
        );
        let _ = writeln!(s, "      \"critical_shed\": {},", r.critical_shed);
        let _ = writeln!(s, "      \"queue_high_water\": {},", r.queue_high_water);
        let _ = writeln!(s, "      \"quarantine_entries\": {},", r.quarantine_entries);
        let _ = writeln!(s, "      \"span_s\": {:.4},", r.span_s);
        let reasons: Vec<String> = r
            .dumps
            .iter()
            .map(|d| format!("\"{}\"", d.reason.as_str()))
            .collect();
        let _ = writeln!(
            s,
            "      \"observatory\": {{\"shadow_samples\": {}, \"envelope_violations\": {}, \
             \"records_pushed\": {}, \"records_dropped\": {}, \"flight_dumps\": {}, \
             \"dump_reasons\": [{}]}},",
            r.shadow_samples,
            r.envelope_violations,
            r.records_pushed,
            r.records_dropped,
            r.dumps.len(),
            reasons.join(", ")
        );
        s.push_str("      \"tenants\": [\n");
        for (j, t) in r.tenants.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"name\": \"{}\", \"submitted\": {}, \"admitted\": {}, \
                 \"rejected\": {}, \"quota_rejected\": {}, \"completed\": {}, \
                 \"failed\": {}, \"shed\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
                 \"p999_ms\": {}}}{}",
                t.name,
                t.submitted,
                t.admitted,
                t.rejected,
                t.quota_rejected,
                t.completed,
                t.failed,
                t.shed,
                json_f(t.p50_ms),
                json_f(t.p99_ms),
                json_f(t.p999_ms),
                if j + 1 < r.tenants.len() { ",\n" } else { "\n" }
            );
        }
        s.push_str("      ]\n");
        let _ = write!(s, "    }}{}", if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"gates\": {\n");
    let _ = writeln!(s, "    \"goodput_floor_frac\": {:.2},", Gates::GOODPUT_FLOOR);
    let _ = writeln!(
        s,
        "    \"overload_goodput_frac\": {:.4},",
        gates.overload_goodput_frac
    );
    let _ = writeln!(
        s,
        "    \"clean_critical_p99_ms\": {},",
        json_f(gates.clean_critical_p99_ms)
    );
    let _ = writeln!(
        s,
        "    \"overload_critical_p99_ms\": {},",
        json_f(gates.overload_critical_p99_ms)
    );
    let _ = writeln!(s, "    \"critical_sheds\": {},", gates.critical_sheds);
    let _ = writeln!(s, "    \"quota_violations\": {},", gates.quota_violations);
    let _ = writeln!(
        s,
        "    \"brownout_transitions_seen\": {},",
        gates.brownout_transitions
    );
    let _ = writeln!(
        s,
        "    \"bitexact_mismatches\": {},",
        gates.bitexact_mismatches
    );
    let _ = writeln!(
        s,
        "    \"envelope_violations\": {},",
        gates.envelope_violations
    );
    let _ = writeln!(
        s,
        "    \"overload_flight_dumps\": {}",
        gates.overload_flight_dumps
    );
    s.push_str("  }\n}\n");
    s
}

/// The acceptance numbers the binary gates on (and records in the JSON
/// so CI and readers see the same evidence).
struct Gates {
    overload_goodput_frac: f64,
    clean_critical_p99_ms: f64,
    overload_critical_p99_ms: f64,
    critical_sheds: u64,
    quota_violations: u64,
    brownout_transitions: u64,
    bitexact_mismatches: u64,
    envelope_violations: u64,
    overload_flight_dumps: u64,
}

impl Gates {
    const GOODPUT_FLOOR: f64 = 0.70;
    /// Absolute floor for the Critical-tail comparison: at these
    /// request sizes (sub-ms service) the clean baseline sits at host
    /// scheduling-jitter scale and overlapped execution stretches wall
    /// time several-fold at saturation, so the 2x ratio only becomes
    /// meaningful above a few ms; the gate is `<= max(2x clean, this)`.
    /// Priority *isolation* is gated separately and scale-free:
    /// Critical p99 must stay below Standard p99 under overload.
    const CRITICAL_P99_FLOOR_MS: f64 = 5.0;
}

/// Run a small traced scenario — a burst well past a tiny queue so the
/// brownout ladder climbs, plus one transient-faulty array — and write
/// the Chrome Trace Event JSON to `path`. Separate from the measured
/// scenarios, so tracing never perturbs the published numbers.
fn write_trace(path: &str) {
    let tracer = bfp_telemetry::Tracer::new();
    let mut cfg = config(50_000.0);
    cfg.arrays = 2;
    cfg.queue_capacity = 8;
    cfg.brownout = BrownoutPolicy {
        tier1_pressure: 0.25,
        tier2_pressure: 0.6,
        min_dwell: Duration::from_millis(50),
        latency_target: Duration::from_millis(2),
    };
    let plans = vec![ArrayFaultPlan::transient(2), ArrayFaultPlan::None];
    let server = Server::simulated(cfg, plans);
    server.attach_tracer(tracer.clone());
    let tickets: Vec<Ticket> = (0..40)
        .filter_map(|s| {
            let spec = &TENANTS[s as usize % TENANTS.len()];
            server.submit(request(s, spec)).ok()
        })
        .collect();
    for t in &tickets {
        let _ = t.wait();
    }
    server.drain();
    std::fs::write(path, tracer.chrome_json()).expect("write trace JSON");
    println!(
        "wrote {path} (Chrome trace of a {}-request traced overload scenario)",
        tickets.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_SERVE.json".to_string());
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1).cloned());

    let burst = if quick { 240 } else { 480 };
    let (service_s, capacity_rps) = calibrate(burst);
    let (clean_total, overload_total): (u64, u64) = if quick { (150, 600) } else { (300, 1200) };

    println!(
        "multi-tenant serving bench: {ARRAYS} arrays, {GEMM_N}x{GEMM_N} GEMM+GELU, \
         service {:.3} ms/req, fleet capacity {:.0} req/s\n",
        service_s * 1e3,
        capacity_rps,
    );

    // Shares are per-tenant offered load as a fraction of capacity:
    // [interactive, batch, abuser]. The overload scenario offers 2.0x
    // total, 0.8x of it an abusive Bulk flood the quota should absorb.
    let rows = vec![
        run_scenario("clean", clean_total, capacity_rps, [0.25, 0.35, 0.0], false),
        run_scenario(
            "overload_2x",
            overload_total,
            capacity_rps,
            [0.5, 0.7, 0.8],
            false,
        ),
        run_scenario(
            "fault_storm",
            clean_total,
            capacity_rps,
            [0.25, 0.35, 0.0],
            true,
        ),
    ];

    for r in &rows {
        let mut t = Table::new(
            format!(
                "{} — offered {:.1}x capacity, goodput {:.0} req/s ({:.0}% of capacity), \
                 brownout max tier {} ({} sheds)",
                r.name,
                r.offered_x,
                r.goodput_rps,
                100.0 * r.goodput_rps / capacity_rps,
                r.brownout_max_tier,
                r.brownout_sheds,
            ),
            &[
                "tenant", "sub", "admit", "done", "shed", "quota-rej", "p50 ms", "p99 ms",
                "p99.9 ms",
            ],
        );
        for row in &r.tenants {
            t.row(&[
                row.name.to_string(),
                row.submitted.to_string(),
                row.admitted.to_string(),
                row.completed.to_string(),
                row.shed.to_string(),
                row.quota_rejected.to_string(),
                format!("{:.3}", row.p50_ms),
                format!("{:.3}", row.p99_ms),
                format!("{:.3}", row.p999_ms),
            ]);
        }
        print!("{}", t.render());
        println!();
    }

    let clean = &rows[0];
    let overload = &rows[1];
    let storm = &rows[2];
    let tenant_row = |r: &ScenarioResult, name: &str| -> TenantRow {
        r.tenants
            .iter()
            .find(|t| t.name == name)
            .cloned()
            .expect("tenant row")
    };
    // Quota ceiling: the abuser can never be admitted past burst +
    // rate x elapsed (+1 for the boundary token).
    let abuser = tenant_row(overload, "abuser");
    let abuser_ceiling =
        ABUSER_BURST + ABUSER_RATE_FRAC * capacity_rps * overload.span_s + 1.0;
    let quota_violations = (abuser.admitted as f64 - abuser_ceiling).max(0.0).ceil() as u64;

    let gates = Gates {
        overload_goodput_frac: overload.goodput_rps / capacity_rps,
        clean_critical_p99_ms: tenant_row(clean, "interactive").p99_ms,
        overload_critical_p99_ms: tenant_row(overload, "interactive").p99_ms,
        critical_sheds: rows.iter().map(|r| r.critical_shed).sum(),
        quota_violations,
        brownout_transitions: overload.brownout_transitions,
        bitexact_mismatches: rows.iter().map(|r| r.bitexact_mismatches).sum(),
        envelope_violations: rows.iter().map(|r| r.envelope_violations).sum(),
        overload_flight_dumps: overload.dumps.len() as u64,
    };

    let json = to_json(&rows, quick, service_s, capacity_rps, &gates);
    std::fs::write(&out_path, &json).expect("write BENCH_SERVE.json");
    println!("wrote {out_path}");

    // Observatory artifacts: the richest flight dump across scenarios
    // (JSON + Perfetto trace) and the overload scenario's published
    // gauges as Prometheus text.
    let stem = out_path.strip_suffix(".json").unwrap_or(&out_path);
    if let Some(dump) = rows
        .iter()
        .flat_map(|r| r.dumps.iter())
        .max_by_key(|d| d.records.len())
    {
        let dump_json = format!("{stem}.flight.json");
        let dump_trace = format!("{stem}.flight.trace.json");
        std::fs::write(&dump_json, dump.to_json()).expect("write flight dump JSON");
        std::fs::write(&dump_trace, dump.to_chrome_trace()).expect("write flight dump trace");
        println!(
            "wrote {dump_json} + {dump_trace} (flight dump: {}, {} records)",
            dump.reason.as_str(),
            dump.records.len()
        );
    }
    let prom_path = format!("{stem}.prom");
    std::fs::write(&prom_path, &overload.prom_text).expect("write Prometheus text");
    println!("wrote {prom_path} (overload observatory gauges)");

    // Acceptance gates — hard asserts so CI fails loudly, not quietly.
    assert_eq!(
        clean.completed, clean.requests,
        "clean run must complete everything"
    );
    assert!(
        gates.overload_goodput_frac >= Gates::GOODPUT_FLOOR,
        "goodput at 2x offered load fell to {:.0}% of clean capacity (floor {:.0}%)",
        100.0 * gates.overload_goodput_frac,
        100.0 * Gates::GOODPUT_FLOOR,
    );
    let p99_ceiling = (2.0 * gates.clean_critical_p99_ms).max(Gates::CRITICAL_P99_FLOOR_MS);
    assert!(
        gates.overload_critical_p99_ms <= p99_ceiling,
        "Critical p99 under overload {:.3} ms exceeds ceiling {:.3} ms (clean {:.3} ms)",
        gates.overload_critical_p99_ms,
        p99_ceiling,
        gates.clean_critical_p99_ms,
    );
    let batch_p99 = tenant_row(overload, "batch").p99_ms;
    assert!(
        gates.overload_critical_p99_ms < batch_p99,
        "priority isolation: Critical p99 {:.3} ms must beat Standard p99 {:.3} ms under overload",
        gates.overload_critical_p99_ms,
        batch_p99,
    );
    assert_eq!(gates.critical_sheds, 0, "Critical work must never be shed");
    assert_eq!(
        gates.quota_violations, 0,
        "abuser admitted {} > token-bucket ceiling {:.1}",
        abuser.admitted, abuser_ceiling,
    );
    assert!(
        gates.brownout_transitions >= 1 && overload.brownout_max_tier >= 1,
        "overload must drive the brownout ladder (transitions {}, max tier {})",
        gates.brownout_transitions,
        overload.brownout_max_tier,
    );
    assert!(
        overload.completed_fast >= 1,
        "overload must complete some requests in fast-nonlinear mode"
    );
    assert_eq!(
        gates.bitexact_mismatches, 0,
        "every sampled response must be bit-exact for its executed mode"
    );
    // Observatory gates: the shadow lane actually sampled the brownout's
    // fast-mode completions and found every one inside the pinned
    // envelope; the overload scenario tripped the flight recorder (burn
    // rate over budget and/or brownout escalation); the richest dump is
    // Perfetto-loadable and non-empty; the ring never dropped a record
    // at these rates.
    assert!(
        overload.shadow_samples >= 1,
        "overload ran fast-mode work, the shadow lane must have sampled it"
    );
    assert_eq!(
        gates.envelope_violations, 0,
        "shadow lane found fast-mode outputs outside the pinned envelope"
    );
    assert!(
        gates.overload_flight_dumps >= 1,
        "overload must trip the flight recorder (saw {} dumps)",
        gates.overload_flight_dumps
    );
    let richest = rows
        .iter()
        .flat_map(|r| r.dumps.iter())
        .max_by_key(|d| d.records.len())
        .expect("at least one flight dump");
    assert!(
        !richest.records.is_empty(),
        "the richest flight dump must carry request timelines"
    );
    assert!(richest.to_chrome_trace().contains("\"traceEvents\""));
    for r in &rows {
        assert_eq!(
            r.records_dropped, 0,
            "{}: flight-recorder ring dropped records under contention",
            r.name
        );
    }
    assert!(
        overload.prom_text.contains("serve_slo_burn_rate{")
            && overload.prom_text.contains("serve_shadow_samples_total"),
        "observatory gauges missing from the Prometheus export"
    );
    assert!(storm.quarantine_entries >= 1, "storm must quarantine");
    assert_eq!(
        storm.completed + storm.failed,
        storm.admitted,
        "every admitted request resolves"
    );
    for r in &rows {
        assert!(
            r.bitexact_checked > 0,
            "{}: bit-exactness sample must be non-empty",
            r.name
        );
    }
    println!(
        "gates: goodput {:.0}% of capacity at {:.1}x, Critical p99 {:.3} ms \
         (clean {:.3} ms), 0 Critical sheds, 0 quota violations, {} brownout \
         transitions, {} bit-exact checks all clean",
        100.0 * gates.overload_goodput_frac,
        overload.offered_x,
        gates.overload_critical_p99_ms,
        gates.clean_critical_p99_ms,
        gates.brownout_transitions,
        rows.iter().map(|r| r.bitexact_checked).sum::<u64>(),
    );

    if let Some(path) = trace_out {
        write_trace(&path);
    }
}
