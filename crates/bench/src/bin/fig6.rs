//! Fig. 6 — resource utilisation of the four PE-array design variants,
//! normalised to the int8 design.

use bfp_core::Table;
use bfp_platform::DesignVariant;

fn main() {
    println!("Reproducing Fig. 6: resource utilisation of different PE-array designs");
    println!("(assessed subset: PE array + exponent unit + shifters + controller)\n");

    let base = DesignVariant::Int8.assessed_usage();

    let mut abs = Table::new("Absolute (modelled)", &["Design", "LUT", "FF", "DSP"]);
    let mut norm = Table::new(
        "Normalised to int8 (the figure's y-axis)",
        &["Design", "LUT", "FF", "DSP"],
    );
    for v in DesignVariant::ALL {
        let u = v.assessed_usage();
        abs.row(&[
            v.name().to_string(),
            format!("{:.0}", u.lut),
            format!("{:.0}", u.ff),
            format!("{:.0}", u.dsp),
        ]);
        let n = u.normalized_to(&base);
        norm.row(&[
            v.name().to_string(),
            format!("{:.2}x", n.lut),
            format!("{:.2}x", n.ff),
            format!("{:.2}x", n.dsp),
        ]);
    }
    print!("{}", abs.render());
    println!();
    print!("{}", norm.render());

    let bfp = DesignVariant::Bfp8Only.assessed_usage();
    let multi = DesignVariant::MultiMode.assessed_usage();
    let indiv = DesignVariant::Individual.assessed_usage();
    println!("\nPaper's claims, checked against the model:");
    println!(
        "  bfp8 FF = 1.19x int8           -> modelled {:.2}x",
        bfp.ff / DesignVariant::Int8.assessed_usage().ff
    );
    println!(
        "  multi-mode LUT = 2.94x bfp8    -> modelled {:.2}x",
        multi.lut / bfp.lut
    );
    println!(
        "  vs individual units: saves {:.1}% DSP, {:.1}% FF, {:.1}% LUT\n\
         \x20                 (paper:  20.0% DSP, 61.2% FF, 43.6% LUT)",
        100.0 * (1.0 - multi.dsp / indiv.dsp),
        100.0 * (1.0 - multi.ff / indiv.ff),
        100.0 * (1.0 - multi.lut / indiv.lut),
    );
}
