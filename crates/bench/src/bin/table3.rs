//! Table III — comparison with prior mixed-precision FPGA accelerators.
//! Prior rows are the published numbers; our row is computed by the system
//! model (resources + measured throughput).

use bfp_core::Table;
use bfp_platform::{paper_ours_row, prior_works, RelatedWork, System};

fn row_cells(r: &RelatedWork) -> Vec<String> {
    vec![
        r.work.to_string(),
        r.data_format.to_string(),
        r.application.to_string(),
        if r.needs_retraining { "Yes" } else { "No" }.to_string(),
        r.platform.to_string(),
        format!("{:.1}", r.lut_k),
        r.ff_k
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "-".into()),
        r.bram
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "-".into()),
        r.dsp.to_string(),
        r.freq_mhz.to_string(),
        format!("{:.2}", r.gops),
        format!("{:.2}", r.gops_per_dsp()),
    ]
}

fn main() {
    println!("Reproducing Table III: comparison with related FPGA accelerators\n");

    let mut t = Table::new(
        "Table III (prior rows as published; ours computed by the model)",
        &[
            "Work",
            "Format",
            "Application",
            "Retrain",
            "Platform",
            "LUT(k)",
            "FF(k)",
            "BRAM",
            "DSP",
            "MHz",
            "GOPS",
            "GOPS/DSP",
        ],
    );
    for r in prior_works() {
        t.row(&row_cells(&r));
    }
    let ours = System::paper().table3_row();
    t.row(&row_cells(&ours));
    print!("{}", t.render());

    let paper = paper_ours_row();
    println!("\nOur row, modelled vs the paper's published values:");
    println!(
        "  GOPS      {:.2} vs {:.2}   ({:+.2}%)",
        ours.gops,
        paper.gops,
        100.0 * (ours.gops - paper.gops) / paper.gops
    );
    println!("  DSP       {} vs {}", ours.dsp, paper.dsp);
    println!("  LUT(k)    {:.1} vs {:.1}", ours.lut_k, paper.lut_k);
    println!(
        "  FF(k)     {:.1} vs {:.1}",
        ours.ff_k.unwrap(),
        paper.ff_k.unwrap()
    );
    println!(
        "  BRAM      {:.1} vs {:.1}",
        ours.bram.unwrap(),
        paper.bram.unwrap()
    );
    println!("  GOPS/DSP  {:.2} vs 0.95", ours.gops_per_dsp());
    println!(
        "\n(theoretical fp32 throughput: {:.2} GFLOPS; paper: 33.88)",
        System::paper().theoretical_fp32_gflops(128)
    );

    // The qualitative claims the table supports.
    let best_transformer_prior = prior_works()
        .into_iter()
        .filter(|r| r.application == "Transformer")
        .map(|r| r.gops)
        .fold(0.0f64, f64::max);
    println!(
        "\nOurs beats every prior Transformer accelerator's GOPS ({:.1} vs {:.1}): {}",
        ours.gops,
        best_transformer_prior,
        ours.gops > best_transformer_prior
    );
}
