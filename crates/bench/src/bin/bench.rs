//! `bench` — the repo's perf-trajectory data point generator.
//!
//! Times the three bfp8 GEMM execution paths (naive reference kernel,
//! packed serial kernel, block-row-parallel kernel) at DeiT layer shapes,
//! plus cached vs uncached mixed-precision inference, and emits the
//! results as `BENCH_GEMM.json` so successive PRs have comparable
//! numbers.
//!
//! ```sh
//! cargo run --release -p bfp-bench --bin bench            # full run
//! cargo run --release -p bfp-bench --bin bench -- --quick # CI smoke
//! cargo run --release -p bfp-bench --bin bench -- --out /tmp/b.json
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use bfp_arith::packed::PackedBfp;
use bfp_arith::quant::Quantizer;
use bfp_bench::smooth_matrix;
use bfp_core::{packed_matmul, ParallelPolicy, Table};
use bfp_transformer::{DeitConfig, DeitModel, Image, MixedEngine, VitConfig};

/// GEMM shapes benchmarked: the DeiT-Small projection shape is the
/// acceptance anchor; fc1 stresses the N dimension, scores the skinny-K
/// attention shape.
const SHAPES: [(&str, usize, usize, usize); 3] = [
    ("deit_small_proj_197x384x384", 197, 384, 384),
    ("deit_small_fc1_197x384x1536", 197, 384, 1536),
    ("attn_scores_197x64x197", 197, 64, 197),
];

/// Thread counts every parallel GEMM is actually measured at (satisfying
/// the sweep the JSON records; on a host with fewer cores the extra rows
/// are honest oversubscription numbers, not copies of the 1-thread row).
const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

struct GemmRow {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    naive_ms: f64,
    packed_ms: f64,
    /// `(threads, best-of-reps ms)` for each entry of [`THREAD_SWEEP`].
    parallel_sweep: Vec<(usize, f64)>,
    parallel_ms: f64,
    quantize_pack_ms: f64,
    quantize_pack_fused_ms: f64,
    speedup_packed: f64,
    speedup_parallel: f64,
    packed_gops: f64,
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(out);
    }
    best
}

fn bench_gemms(reps: usize) -> Vec<GemmRow> {
    let q = Quantizer::paper();
    SHAPES
        .iter()
        .map(|&(name, m, k, n)| {
            let a = smooth_matrix(m, k, 1);
            let b = smooth_matrix(k, n, 2);
            let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
            let (pa, pb) = (PackedBfp::pack_lhs(&qa), PackedBfp::pack_rhs(&qb));

            let naive_ms = time_ms(reps, || qa.try_matmul(&qb).unwrap());
            let packed_ms = time_ms(reps, || pa.matmul(&pb).unwrap());
            // Satellite of the parallel path: every sweep entry forces the
            // sharded kernel through `Threads(t)`, so the multi-thread
            // rows genuinely exercise the fork/join machinery.
            let parallel_sweep: Vec<(usize, f64)> = THREAD_SWEEP
                .iter()
                .map(|&t| {
                    let ms = time_ms(reps, || {
                        packed_matmul(&pa, &pb, ParallelPolicy::Threads(t)).unwrap()
                    });
                    (t, ms)
                })
                .collect();
            let parallel_ms = parallel_sweep
                .iter()
                .map(|&(_, ms)| ms)
                .fold(f64::INFINITY, f64::min);
            let quantize_pack_ms = time_ms(reps, || {
                (
                    PackedBfp::quantize_lhs(&q, &a).unwrap(),
                    PackedBfp::quantize_rhs(&q, &b).unwrap(),
                )
            });
            let quantize_pack_fused_ms = time_ms(reps, || {
                (
                    PackedBfp::quantize_pack_lhs(&q, &a).unwrap(),
                    PackedBfp::quantize_pack_rhs(&q, &b).unwrap(),
                )
            });
            // Sanity: every path must agree bit-for-bit before any number
            // is reported.
            let want = qa.try_matmul(&qb).unwrap();
            let mut checks = vec![pa.matmul(&pb).unwrap()];
            for &t in &THREAD_SWEEP {
                checks.push(packed_matmul(&pa, &pb, ParallelPolicy::Threads(t)).unwrap());
            }
            checks.push(
                PackedBfp::quantize_pack_lhs(&q, &a)
                    .unwrap()
                    .matmul(&PackedBfp::quantize_pack_rhs(&q, &b).unwrap())
                    .unwrap(),
            );
            for got in checks {
                assert!(
                    got.data()
                        .iter()
                        .zip(want.data())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{name}: fast path diverged from the reference kernel"
                );
            }

            let gop = 2.0 * (m * k * n) as f64 / 1e9;
            GemmRow {
                name,
                m,
                k,
                n,
                naive_ms,
                packed_ms,
                parallel_sweep,
                parallel_ms,
                quantize_pack_ms,
                quantize_pack_fused_ms,
                speedup_packed: naive_ms / packed_ms,
                speedup_parallel: naive_ms / parallel_ms,
                packed_gops: gop / (packed_ms.min(parallel_ms) / 1e3),
            }
        })
        .collect()
}

/// Gate each shape's thread sweep monotone-within-noise: granting more
/// threads must never slow the kernel below `tol` × the best smaller
/// budget (the PR-8 regression was exactly this — a 2-thread row slower
/// than 1-thread on a core-starved host until `effective_threads`
/// learned to clamp).
fn assert_sweep_monotone(rows: &[GemmRow], tol: f64) {
    for r in rows {
        let mut best = f64::INFINITY;
        for &(t, ms) in &r.parallel_sweep {
            assert!(
                ms * tol <= best,
                "{}: {t}-thread kernel at {ms:.3} ms regressed vs best {best:.3} ms (tolerance {tol})",
                r.name
            );
            best = best.min(ms);
        }
    }
}

struct InferRow {
    images: usize,
    uncached_ips: f64,
    cached_ips: f64,
    speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
}

fn bench_inference(images: usize) -> InferRow {
    let cfg = DeitConfig {
        vit: VitConfig {
            dim: 128,
            depth: 4,
            heads: 4,
            mlp_ratio: 4,
            seq: 17,
        },
        patch: 16,
        channels: 3,
        img: 64,
        classes: 10,
    };
    cfg.validate().unwrap();
    let model = DeitModel::new_random(cfg, 3);
    let imgs: Vec<Image> = (0..images)
        .map(|s| Image::synthetic(3, cfg.img, cfg.img, s as u64))
        .collect();

    let run = |engine: &mut MixedEngine| {
        let t0 = Instant::now();
        for img in &imgs {
            std::hint::black_box(model.predict(engine, img));
        }
        imgs.len() as f64 / t0.elapsed().as_secs_f64()
    };

    let mut uncached = MixedEngine::without_weight_cache();
    let uncached_ips = run(&mut uncached);
    let mut cached = MixedEngine::new();
    // Warm the plan cache with one image, then measure steady state —
    // that is what a serving deployment sees from the second image on.
    std::hint::black_box(model.predict(&mut cached, &imgs[0]));
    let cached_ips = run(&mut cached);
    let stats = cached.plan_cache_stats();
    InferRow {
        images,
        uncached_ips,
        cached_ips,
        speedup: cached_ips / uncached_ips,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
    }
}

fn to_json(rows: &[GemmRow], infer: &InferRow, threads: usize, quick: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"bench_gemm/v2\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"threads\": {threads},");
    s.push_str("  \"gemm\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"m\": {}, \"k\": {}, \"n\": {},", r.m, r.k, r.n);
        let _ = writeln!(s, "      \"naive_ms\": {:.4},", r.naive_ms);
        let _ = writeln!(s, "      \"packed_ms\": {:.4},", r.packed_ms);
        s.push_str("      \"parallel\": [\n");
        for (j, &(t, ms)) in r.parallel_sweep.iter().enumerate() {
            let _ = write!(
                s,
                "        {{ \"threads\": {t}, \"ms\": {ms:.4} }}{}",
                if j + 1 < r.parallel_sweep.len() {
                    ",\n"
                } else {
                    "\n"
                }
            );
        }
        s.push_str("      ],\n");
        let _ = writeln!(s, "      \"parallel_ms\": {:.4},", r.parallel_ms);
        let _ = writeln!(s, "      \"quantize_pack_ms\": {:.4},", r.quantize_pack_ms);
        let _ = writeln!(
            s,
            "      \"quantize_pack_fused_ms\": {:.4},",
            r.quantize_pack_fused_ms
        );
        let _ = writeln!(s, "      \"speedup_packed\": {:.2},", r.speedup_packed);
        let _ = writeln!(s, "      \"speedup_parallel\": {:.2},", r.speedup_parallel);
        let _ = writeln!(s, "      \"packed_gflop_equiv_per_s\": {:.2}", r.packed_gops);
        let _ = write!(s, "    }}{}", if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"inference\": {\n");
    let _ = writeln!(s, "    \"images\": {},", infer.images);
    let _ = writeln!(s, "    \"uncached_images_per_s\": {:.3},", infer.uncached_ips);
    let _ = writeln!(s, "    \"cached_images_per_s\": {:.3},", infer.cached_ips);
    let _ = writeln!(s, "    \"weight_cache_speedup\": {:.2},", infer.speedup);
    let _ = writeln!(s, "    \"cache_hits\": {},", infer.cache_hits);
    let _ = writeln!(s, "    \"cache_misses\": {}", infer.cache_misses);
    s.push_str("  }\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_GEMM.json".to_string());

    let reps = if quick { 2 } else { 5 };
    let images = if quick { 3 } else { 8 };
    let threads = ParallelPolicy::Auto.threads();

    println!(
        "bfp8 GEMM execution paths ({} reps, best-of; {} host threads; sweep {:?})\n",
        reps, threads, THREAD_SWEEP
    );
    let rows = bench_gemms(reps);
    // Quick mode shares loaded CI runners; the full run publishes from a
    // quieter host and holds the tighter bar.
    assert_sweep_monotone(&rows, if quick { 0.65 } else { 0.80 });
    let mut t = Table::new(
        "GEMM kernel wall-clock (pre-quantized operands)",
        &[
            "shape",
            "naive ms",
            "packed ms",
            "parallel ms",
            "speedup",
            "GFLOP-eq/s",
        ],
    );
    for r in &rows {
        t.row(&[
            r.name.to_string(),
            format!("{:.2}", r.naive_ms),
            format!("{:.2}", r.packed_ms),
            format!("{:.2}", r.parallel_ms),
            format!("{:.1}x", r.speedup_packed.max(r.speedup_parallel)),
            format!("{:.2}", r.packed_gops),
        ]);
    }
    print!("{}", t.render());

    println!("\nmixed-precision inference, weight-plan cache on vs off...");
    let infer = bench_inference(images);
    println!(
        "  uncached: {:.2} images/s   cached: {:.2} images/s   speedup {:.2}x (hits {}, misses {})",
        infer.uncached_ips, infer.cached_ips, infer.speedup, infer.cache_hits, infer.cache_misses
    );

    let json = to_json(&rows, &infer, threads, quick);
    std::fs::write(&out_path, &json).expect("write BENCH_GEMM.json");
    println!("\nwrote {out_path}");

    let anchor = &rows[0];
    let best = anchor.speedup_packed.max(anchor.speedup_parallel);
    println!(
        "acceptance anchor {}: {:.1}x over the naive kernel",
        anchor.name, best
    );
}
