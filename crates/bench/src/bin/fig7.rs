//! Fig. 7 — measured vs theoretical throughput of the full system under
//! different workloads: bfp8 MatMul at stream lengths N_X ∈ {8,16,32,64}
//! and fp32 multiplication at L ∈ {8,...,128}.
//!
//! "Theoretical" comes from Eqns. 9–10; "measured" runs the cycle-level
//! unit simulation for the compute part and adds the calibrated HBM/AXI
//! overhead, exactly how the paper's numbers include memory I/O latency.

use bfp_arith::bfp::BfpBlock;
use bfp_core::Table;
use bfp_platform::System;
use bfp_pu::throughput;
use bfp_pu::unit::ProcessingUnit;

fn main() {
    let sys = System::paper();
    let arrays = sys.cfg.total_arrays() as f64;

    println!("Reproducing Fig. 7: measured vs theoretical throughput (30 arrays)\n");

    let mut left = Table::new(
        "bfp8 MatMul (left panel), GOPS",
        &[
            "N_X",
            "compute cycles (sim)",
            "theoretical",
            "measured",
            "measured/theory",
        ],
    );
    for nx in [8usize, 16, 32, 64] {
        // Cycle-level simulation of one Y-stationary pass.
        let mut unit = ProcessingUnit::default();
        let xs = vec![
            BfpBlock {
                exp: 0,
                man: [[1; 8]; 8]
            };
            nx
        ];
        unit.load_y_pair(&xs[0], &xs[0]);
        unit.stream_x(&xs);
        let sim_cycles = unit.stats().cycles;
        assert_eq!(
            sim_cycles,
            throughput::bfp_pass_cycles(nx),
            "sim must match Eqn. 9"
        );

        let theo = sys.theoretical_bfp_gops(nx);
        let meas = sys.measured_bfp_gops(nx);
        left.row(&[
            nx.to_string(),
            sim_cycles.to_string(),
            format!("{theo:.1}"),
            format!("{meas:.1}"),
            format!("{:.1}%", 100.0 * meas / theo),
        ]);
    }
    print!("{}", left.render());
    println!(
        "Paper's operating point: 2052.06 GOPS measured at N_X = 64 -> modelled {:.2} GOPS\n",
        sys.measured_bfp_gops(64)
    );

    let mut right = Table::new(
        "fp32 multiplication (right panel), GFLOPS",
        &[
            "L_fp",
            "compute cycles (sim)",
            "theoretical",
            "measured",
            "measured/theory",
        ],
    );
    for l in [8usize, 16, 32, 64, 128] {
        // Cycle-level simulation of one burst on one lane set.
        let mut unit = ProcessingUnit::default();
        let xs = vec![1.5f32; 4 * l];
        let _ = unit.fp_mul_stream(&xs, &xs);
        let sim_cycles = unit.stats().cycles;
        assert_eq!(
            sim_cycles,
            throughput::fp32_burst_cycles(l),
            "sim must match Eqn. 10"
        );

        let theo = sys.theoretical_fp32_gflops(l);
        let meas = sys.measured_fp32_gflops(l);
        right.row(&[
            l.to_string(),
            sim_cycles.to_string(),
            format!("{theo:.2}"),
            format!("{meas:.2}"),
            format!("{:.1}%", 100.0 * meas / theo),
        ]);
    }
    print!("{}", right.render());
    println!(
        "Paper: theoretical max 33.88 GFLOPS -> modelled {:.2}; measured stays far below\n\
         (unoptimised burst lengths / random access), matching the figure's message.",
        sys.theoretical_fp32_gflops(128)
    );
    let _ = arrays;
}
