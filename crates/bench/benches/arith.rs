//! Microbenchmarks of the arithmetic primitives: bfp8 block operations and
//! the sliced fp32 datapath, against native f32 as the speed-of-light
//! reference. These quantify the cost of bit-exact simulation, not of the
//! hardware — hardware throughput comes from the cycle model (Fig. 7).

use bfp_arith::bfp::{BfpBlock, BlockAcc};
use bfp_arith::fpadd::{AddVariant, HwFp32Add};
use bfp_arith::fpmul::{HwFp32Mul, MulVariant};
use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_block_ops(c: &mut Criterion) {
    let tile_a = {
        let mut t = [[0f32; 8]; 8];
        for (i, row) in t.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = ((i * 8 + j) as f32 * 0.37).sin() * 5.0;
            }
        }
        t
    };
    let a = BfpBlock::quantize(&tile_a);
    let b = BfpBlock::quantize(&tile_a);

    c.bench_function("bfp8/block_quantize", |bch| {
        bch.iter(|| BfpBlock::quantize(black_box(&tile_a)))
    });
    c.bench_function("bfp8/block_matmul_8x8x8", |bch| {
        bch.iter(|| black_box(&a).matmul(black_box(&b)))
    });
    c.bench_function("bfp8/block_accumulate", |bch| {
        let w = a.matmul(&b);
        bch.iter(|| {
            let mut acc = BlockAcc::new();
            acc.add(black_box(&w)).unwrap();
            acc.add(black_box(&w)).unwrap();
            acc.value()
        })
    });
}

fn bench_fp32_datapath(c: &mut Criterion) {
    let hw_mul = HwFp32Mul::new(MulVariant::DropLsp);
    let exact_mul = HwFp32Mul::new(MulVariant::Exact);
    let hw_add = HwFp32Add::new(AddVariant::Exact48);
    let (x, y) = (1.234567f32, -7.654321f32);

    c.bench_function("fp32/native_mul", |b| {
        b.iter(|| black_box(x) * black_box(y))
    });
    c.bench_function("fp32/hw_mul_drop_lsp", |b| {
        b.iter(|| hw_mul.mul(black_box(x), black_box(y)))
    });
    c.bench_function("fp32/hw_mul_exact", |b| {
        b.iter(|| exact_mul.mul(black_box(x), black_box(y)))
    });
    c.bench_function("fp32/native_add", |b| {
        b.iter(|| black_box(x) + black_box(y))
    });
    c.bench_function("fp32/hw_add_exact48", |b| {
        b.iter(|| hw_add.add(black_box(x), black_box(y)))
    });
}

fn bench_matrix_quantize(c: &mut Criterion) {
    let m = MatF32::from_fn(128, 128, |i, j| ((i * 131 + j * 17) as f32 * 0.001).sin());
    let q = Quantizer::paper();
    c.bench_function("quantizer/128x128_to_bfp8", |b| {
        b.iter(|| q.quantize(black_box(&m)).unwrap())
    });
    let qm = q.quantize(&m).unwrap();
    c.bench_function("quantizer/128x128_dequantize", |b| {
        b.iter(|| qm.dequantize())
    });
}

criterion_group!(
    benches,
    bench_block_ops,
    bench_fp32_datapath,
    bench_matrix_quantize
);
criterion_main!(benches);
