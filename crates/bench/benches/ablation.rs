//! Ablations of the design choices DESIGN.md calls out:
//!
//! * dropped least-significant partial product (8 vs 9 products) — ULP cost;
//! * truncation vs round-to-nearest-even at the multiplier's normaliser;
//! * fp32 add datapath width (48-bit window vs literal 24-bit Eqn. 6);
//! * bfp block size (4 / 8 / 16) — quantization SQNR vs hardware cost.
//!
//! Accuracy numbers are printed (they are the result); timing keeps a
//! regression watch on the simulation cost of each variant.

use bfp_arith::fpadd::{AddVariant, HwFp32Add};
use bfp_arith::fpmul::{HwFp32Mul, MulVariant, NormRound};
use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_arith::stats::ErrorStats;
use bfp_platform::{ArrayParams, PuCostModel};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn sample_pairs(n: usize) -> Vec<(f32, f32)> {
    let mut state = 0x1357_9bdfu32;
    (0..n)
        .map(|_| {
            let mut next = || {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                f32::from_bits(
                    0x3e80_0000u32.wrapping_add((state % 6) << 23) | ((state >> 9) & 0x7f_ffff),
                ) * if state & 1 == 0 { 1.0 } else { -1.0 }
            };
            (next(), next())
        })
        .collect()
}

fn mul_variants(c: &mut Criterion) {
    let pairs = sample_pairs(100_000);
    let configs = [
        ("exact_trunc", MulVariant::Exact, NormRound::Truncate),
        (
            "drop_lsp_trunc (paper)",
            MulVariant::DropLsp,
            NormRound::Truncate,
        ),
        ("exact_rne", MulVariant::Exact, NormRound::NearestEven),
        ("drop_lsp_rne", MulVariant::DropLsp, NormRound::NearestEven),
    ];
    for (name, v, r) in configs {
        let m = HwFp32Mul {
            variant: v,
            round: r,
        };
        let mut stats = ErrorStats::new();
        for &(x, y) in &pairs {
            stats.push(m.mul(x, y), x * y);
        }
        println!("ablation/fpmul {name}: {stats}");
    }

    let mut g = c.benchmark_group("ablation_fpmul");
    for (name, v, r) in configs {
        let m = HwFp32Mul {
            variant: v,
            round: r,
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &m, |b, m| {
            b.iter(|| {
                let mut acc = 0f32;
                for &(x, y) in pairs.iter().take(1000) {
                    acc += m.mul(black_box(x), black_box(y));
                }
                acc
            })
        });
    }
    g.finish();
}

fn add_variants(c: &mut Criterion) {
    let pairs = sample_pairs(100_000);
    for (name, v) in [
        ("exact48 (paper)", AddVariant::Exact48),
        ("truncate24", AddVariant::Truncate24),
    ] {
        let a = HwFp32Add::new(v);
        let mut stats = ErrorStats::new();
        for &(x, y) in &pairs {
            stats.push(a.add(x, y), x + y);
        }
        println!("ablation/fpadd {name}: {stats}");
    }
    let mut g = c.benchmark_group("ablation_fpadd");
    for (name, v) in [
        ("exact48", AddVariant::Exact48),
        ("truncate24", AddVariant::Truncate24),
    ] {
        let a = HwFp32Add::new(v);
        g.bench_with_input(BenchmarkId::from_parameter(name), &a, |b, a| {
            b.iter(|| {
                let mut acc = 0f32;
                for &(x, y) in pairs.iter().take(1000) {
                    acc = a.add(acc, a.add(black_box(x), black_box(y)));
                }
                acc
            })
        });
    }
    g.finish();
}

fn block_sizes(c: &mut Criterion) {
    let m = MatF32::from_fn(128, 128, |i, j| {
        let base = ((i * 31 + j * 17) % 97) as f32 / 97.0 - 0.5;
        if (i / 8 + j / 8) % 7 == 0 {
            base * 50.0
        } else {
            base
        }
    });
    for block in [4usize, 8, 16] {
        let q = Quantizer::with_block(block);
        let stats = q.quantize(&m).unwrap().fidelity(&m);
        // Hardware cost scales with the array that matches the block.
        let cost = PuCostModel::unit_total(ArrayParams {
            rows: block,
            cols: block,
        });
        println!(
            "ablation/block_size {block}x{block}: SQNR {:.2} dB | modelled unit: {}",
            stats.sqnr_db(),
            cost
        );
    }
    let mut g = c.benchmark_group("ablation_block_size");
    for block in [4usize, 8, 16] {
        let q = Quantizer::with_block(block);
        g.bench_with_input(BenchmarkId::from_parameter(block), &q, |b, q| {
            b.iter(|| q.quantize(black_box(&m)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, mul_variants, add_variants, block_sizes);
criterion_main!(benches);
