//! End-to-end Transformer inference benches (Table IV's workload): forward
//! passes through encoder blocks on the mixed-precision engine versus the
//! f32 reference. DeiT-Tiny keeps wall time sane; the table4 binary covers
//! DeiT-Small analytically.

use bfp_core::{Accelerator, LatencyModel};
use bfp_transformer::{analytical_census, MixedEngine, RefEngine, VitConfig, VitModel};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn single_block(c: &mut Criterion) {
    let cfg = VitConfig {
        depth: 1,
        ..VitConfig::deit_tiny()
    };
    let model = VitModel::new_random(cfg, 42);
    let x = model.synthetic_input(1);

    let mut g = c.benchmark_group("deit_tiny_one_block");
    g.sample_size(10);
    g.bench_function("f32_reference", |b| {
        b.iter(|| model.forward(&mut RefEngine, black_box(&x)))
    });
    g.bench_function("mixed_precision", |b| {
        b.iter(|| {
            let mut e = MixedEngine::without_weight_cache();
            model.forward(&mut e, black_box(&x))
        })
    });
    g.bench_function("mixed_precision_cached_weights", |b| {
        // A persistent engine reuses the quantize+pack plans of the model's
        // weight matrices across iterations — the serving steady state.
        let mut e = MixedEngine::new();
        model.forward(&mut e, &x);
        b.iter(|| model.forward(&mut e, black_box(&x)))
    });
    g.finish();
}

fn latency_estimation(c: &mut Criterion) {
    // The analytical path (census + latency model) is what regenerates
    // Table IV; keep it instantaneous.
    let acc = Accelerator::u280();
    c.bench_function("table4_estimate_deit_small", |b| {
        b.iter(|| {
            let census = analytical_census(black_box(&VitConfig::deit_small()));
            let breakdown = acc.estimate(&census);
            black_box(breakdown.total_latency_s())
        })
    });

    // Print the modelled end-to-end latency for the record.
    let census = analytical_census(&VitConfig::deit_small());
    let b = LatencyModel::paper().breakdown(&census);
    println!(
        "deit-small modelled: total {:.3} ms, fp32 share {:.1}% of latency",
        b.total_latency_s() * 1e3,
        b.fp32_latency_percent()
    );
}

criterion_group!(benches, single_block, latency_estimation);
criterion_main!(benches);
