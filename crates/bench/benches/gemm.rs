//! GEMM benchmarks at the layer shapes DeiT-Small actually executes
//! (Table IV's bfp8 partition), comparing the bfp8 pipeline simulation
//! against the f32 reference implementation, the packed fast-path
//! kernels, plus the 30-array parallel card simulation.

use bfp_arith::matrix::MatF32;
use bfp_arith::packed::PackedBfp;
use bfp_arith::quant::Quantizer;
use bfp_core::{packed_matmul, ParallelPolicy};
use bfp_platform::System;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// The distinct GEMM shapes of one DeiT-Small block (seq 197, dim 384).
const SHAPES: [(&str, usize, usize, usize); 4] = [
    ("qkv_or_proj_197x384x384", 197, 384, 384),
    ("scores_197x64x197", 197, 64, 197),
    ("fc1_197x384x1536", 197, 384, 1536),
    ("fc2_197x1536x384", 197, 1536, 384),
];

fn layer_gemms(c: &mut Criterion) {
    let mut g = c.benchmark_group("deit_layer_gemm");
    g.sample_size(10);
    for (name, m, k, n) in SHAPES {
        let a = MatF32::from_fn(m, k, |i, j| ((i * 7 + j) as f32 * 0.01).sin());
        let b = MatF32::from_fn(k, n, |i, j| ((i + j * 3) as f32 * 0.005).cos());
        g.bench_with_input(BenchmarkId::new("f32_reference", name), &name, |bch, _| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
        let q = Quantizer::paper();
        g.bench_with_input(BenchmarkId::new("bfp8_pipeline", name), &name, |bch, _| {
            bch.iter(|| {
                let qa = q.quantize(black_box(&a)).unwrap();
                let qb = q.quantize(black_box(&b)).unwrap();
                qa.matmul(&qb)
            })
        });
    }
    g.finish();
}

/// Kernel-for-kernel comparison of the three execution paths on
/// pre-quantized operands: the naive reference kernel, the packed serial
/// kernel, and the block-row-parallel kernel. All three are bit-identical;
/// only the wall clock differs.
fn packed_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("packed_gemm_kernel");
    g.sample_size(10);
    let q = Quantizer::paper();
    for (name, m, k, n) in SHAPES {
        let a = MatF32::from_fn(m, k, |i, j| ((i * 7 + j) as f32 * 0.01).sin());
        let b = MatF32::from_fn(k, n, |i, j| ((i + j * 3) as f32 * 0.005).cos());
        let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
        let (pa, pb) = (PackedBfp::pack_lhs(&qa), PackedBfp::pack_rhs(&qb));
        g.bench_with_input(BenchmarkId::new("naive", name), &name, |bch, _| {
            bch.iter(|| black_box(&qa).try_matmul(black_box(&qb)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("packed_serial", name), &name, |bch, _| {
            bch.iter(|| black_box(&pa).matmul(black_box(&pb)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("packed_parallel", name), &name, |bch, _| {
            bch.iter(|| {
                packed_matmul(black_box(&pa), black_box(&pb), ParallelPolicy::Auto).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("quantize_pack", name), &name, |bch, _| {
            bch.iter(|| {
                (
                    PackedBfp::quantize_lhs(&q, black_box(&a)).unwrap(),
                    PackedBfp::quantize_rhs(&q, black_box(&b)).unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn parallel_card(c: &mut Criterion) {
    let mut g = c.benchmark_group("card_parallel_gemm");
    g.sample_size(10);
    let a = MatF32::from_fn(512, 384, |i, j| ((i + j) as f32 * 0.01).sin());
    let b = MatF32::from_fn(384, 384, |i, j| ((i * 2 + j) as f32 * 0.02).cos());
    let sys = System::paper();
    g.bench_function("30_arrays_512x384x384", |bch| {
        bch.iter(|| sys.matmul_f32(black_box(&a), black_box(&b)))
    });
    g.finish();
}

criterion_group!(benches, layer_gemms, packed_kernels, parallel_card);
criterion_main!(benches);
