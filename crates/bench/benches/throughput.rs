//! Fig. 7 as a bench: the cycle-level simulator runs the same workloads the
//! paper measures (bfp8 passes at N_X ∈ {8..64}, fp32 bursts at
//! L ∈ {8..128}) and reports both wall time of the simulation and — via
//! printed summaries — the modelled hardware throughput.

use bfp_arith::bfp::BfpBlock;
use bfp_platform::System;
use bfp_pu::unit::{Fidelity, ProcessingUnit, UnitConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bfp_pass(c: &mut Criterion) {
    let sys = System::paper();
    let mut g = c.benchmark_group("fig7_bfp8_pass");
    for nx in [8usize, 16, 32, 64] {
        println!(
            "fig7/bfp8 Nx={nx}: theoretical {:.1} GOPS, measured {:.1} GOPS",
            sys.theoretical_bfp_gops(nx),
            sys.measured_bfp_gops(nx)
        );
        let xs = vec![
            BfpBlock {
                exp: 1,
                man: [[7; 8]; 8]
            };
            nx
        ];
        let y = BfpBlock {
            exp: -2,
            man: [[-3; 8]; 8],
        };
        g.bench_with_input(BenchmarkId::new("functional", nx), &nx, |b, _| {
            b.iter(|| {
                let mut unit = ProcessingUnit::default();
                unit.load_y_pair(black_box(&y), black_box(&y));
                unit.stream_x(black_box(&xs));
                unit.take_psu(xs.len())
            })
        });
    }
    g.finish();

    // The stepped (per-DSP-clock) simulation at one design point, to keep a
    // regression watch on the full-fidelity path.
    let mut g = c.benchmark_group("fig7_bfp8_pass_stepped");
    g.sample_size(10);
    let xs = vec![
        BfpBlock {
            exp: 1,
            man: [[7; 8]; 8]
        };
        16
    ];
    let y = BfpBlock {
        exp: -2,
        man: [[-3; 8]; 8],
    };
    g.bench_function("stepped_nx16", |b| {
        b.iter(|| {
            let mut unit = ProcessingUnit::new(UnitConfig {
                fidelity: Fidelity::Stepped,
                ..Default::default()
            });
            unit.load_y_pair(black_box(&y), black_box(&y));
            unit.stream_x(black_box(&xs));
            unit.take_psu(xs.len())
        })
    });
    g.finish();
}

fn fp32_burst(c: &mut Criterion) {
    let sys = System::paper();
    let mut g = c.benchmark_group("fig7_fp32_burst");
    for l in [8usize, 32, 128] {
        println!(
            "fig7/fp32 L={l}: theoretical {:.2} GFLOPS, measured {:.2} GFLOPS",
            sys.theoretical_fp32_gflops(l),
            sys.measured_fp32_gflops(l)
        );
        let xs: Vec<f32> = (0..4 * l).map(|k| (k as f32 * 0.13).sin() + 1.5).collect();
        let ys: Vec<f32> = (0..4 * l).map(|k| (k as f32 * 0.29).cos() - 1.5).collect();
        g.bench_with_input(BenchmarkId::new("mul_stream", l), &l, |b, _| {
            b.iter(|| {
                let mut unit = ProcessingUnit::default();
                unit.fp_mul_stream(black_box(&xs), black_box(&ys))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bfp_pass, fp32_burst);
criterion_main!(benches);
