// Repro: single persistent raw BRAM operand fault under ABFT.
use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_arith::AbftPacked;
use bfp_faults::{FaultPlan, FaultSpec};

fn main() {
    let q = Quantizer::paper();
    let a = MatF32::from_fn(16, 16, |i, j| ((i * 31 + j * 7) % 13) as f32 - 6.0);
    let b = MatF32::from_fn(16, 16, |i, j| ((i * 17 + j * 5) % 11) as f32 - 5.0);
    let pa = AbftPacked::quantize_pack_lhs(&q, &a).unwrap();
    let pb = AbftPacked::quantize_pack_rhs(&q, &b).unwrap();
    let (golden, rg) = pa.matmul(&pb).unwrap();
    assert!(rg.clean());

    // One persistent raw flip in the operand BRAM pool.
    let plan = FaultPlan::new().with(FaultSpec::BramRawFlip { bram: 0, addr: 0, mask: 0x10 });
    let guard = bfp_faults::install(plan);
    let (out, r) = pa.matmul(&pb).unwrap();
    drop(guard);

    let equal = golden.data().iter().zip(out.data()).all(|(x, y)| x.to_bits() == y.to_bits());
    println!("report: detections={} corrected_elements={} corrected_checksums={} uncorrected={:?}",
        r.detections, r.corrected_elements, r.corrected_checksums, r.uncorrected);
    println!("output bit-equal to golden: {equal}");
    println!("uncorrected_detections would be: detected({}) - corrections({}) = {}",
        r.detections, r.corrections(), r.detections as i64 - r.corrections() as i64);
    if !equal && r.uncorrected.is_empty() {
        println!("BUG CONFIRMED: corrupted output accepted with no uncorrected chains");
    }
}
