//! Predicted-vs-measured drift attribution for compiled plans.
//!
//! A plan prices every node in modelled accelerator cycles; the engine
//! measures every node in host wall-clock. The two live in different
//! currencies, so the comparison needs a calibration step: a single
//! cycles-per-second factor chosen so the plan's *total* predicted
//! cycles equal the *total* measured time. After calibration every
//! node's drift ratio
//!
//! ```text
//! drift = (measured_s × calibration_hz) / predicted_cycles
//! ```
//!
//! says how mispriced that node is relative to the rest of the plan:
//! `1.0` means the node consumed exactly its predicted share of the
//! run, `2.0` means the planner undercharged it twofold (it ran slower
//! than its price), `0.5` means the planner overcharged it. The
//! cycle-weighted mean of `drift` is `1.0` by construction — the
//! calibration absorbs the global scale — so the per-node spread *is*
//! the signal: a node drifting hard is one the planner would fuse (or
//! refuse to fuse) for the wrong reason.
//!
//! [`PlanDriftReport`] carries the per-node attribution, publishes it
//! through a [`Registry`] (gauges + drift histograms), renders as a
//! [`Table`], and answers the top-K "mispriced nodes" query benches and
//! dashboards gate on.

use crate::registry::{series, Registry};
use crate::report::Table;
use crate::json;

use std::fmt::Write as _;

/// One node's predicted price and measured cost. The inputs to
/// [`PlanDriftReport::new`]; producers fill `predicted_cycles` /
/// `pack_cycles` from the planner and `measured_s` / `samples` from the
/// engine's node clocks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeSample {
    /// Canonical node key (shared between planner and engine).
    pub name: String,
    /// Array cycles of the node's own work under the plan.
    pub predicted_cycles: f64,
    /// Quantize-pack cycles the node still pays under the plan.
    pub pack_cycles: f64,
    /// Accumulated measured wall-clock seconds.
    pub measured_s: f64,
    /// Number of measured executions folded into `measured_s`.
    pub samples: u64,
}

impl NodeSample {
    /// Total predicted cycles (work + surviving pack).
    pub fn total_cycles(&self) -> f64 {
        self.predicted_cycles + self.pack_cycles
    }
}

/// One attributed node of a [`PlanDriftReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDrift {
    /// The node's sample (prediction + measurement).
    pub sample: NodeSample,
    /// Calibrated measured cycles (`measured_s × calibration_hz`).
    pub measured_cycles: f64,
    /// Mispricing ratio `measured_cycles / predicted_total_cycles`.
    pub drift_ratio: f64,
}

impl NodeDrift {
    /// `log2` of the drift ratio: symmetric mispricing magnitude
    /// (`+1` = 2× undercharged, `-1` = 2× overcharged).
    pub fn log2_drift(&self) -> f64 {
        self.drift_ratio.log2()
    }
}

/// Predicted-vs-measured attribution of one compiled plan.
#[derive(Debug, Clone, Default)]
pub struct PlanDriftReport {
    /// Calibrated cycles-per-second factor (total predicted cycles over
    /// total measured seconds across matched nodes).
    pub calibration_hz: f64,
    /// Matched nodes (prediction *and* measurement present), input order.
    pub nodes: Vec<NodeDrift>,
    /// Nodes the planner priced but the engine never measured.
    pub unmeasured: Vec<String>,
    /// Nodes the engine measured but the planner never priced.
    pub unpriced: Vec<String>,
}

impl PlanDriftReport {
    /// Attribute drift across `samples`. Nodes with a positive predicted
    /// price and a positive measurement participate in the calibration
    /// and get a drift ratio; one-sided nodes land in
    /// [`unmeasured`](Self::unmeasured) / [`unpriced`](Self::unpriced)
    /// so coverage gaps are visible instead of silently dropped.
    pub fn new(samples: Vec<NodeSample>) -> Self {
        let mut total_cycles = 0.0;
        let mut total_s = 0.0;
        for s in &samples {
            if s.total_cycles() > 0.0 && s.measured_s > 0.0 {
                total_cycles += s.total_cycles();
                total_s += s.measured_s;
            }
        }
        let hz = if total_s > 0.0 {
            total_cycles / total_s
        } else {
            0.0
        };
        let mut nodes = Vec::new();
        let mut unmeasured = Vec::new();
        let mut unpriced = Vec::new();
        for s in samples {
            match (s.total_cycles() > 0.0, s.measured_s > 0.0) {
                (true, true) => {
                    let measured_cycles = s.measured_s * hz;
                    let drift_ratio = measured_cycles / s.total_cycles();
                    nodes.push(NodeDrift {
                        sample: s,
                        measured_cycles,
                        drift_ratio,
                    });
                }
                (true, false) => unmeasured.push(s.name),
                (false, true) => unpriced.push(s.name),
                // Zero-priced, zero-measured nodes (absorbed residuals)
                // carry no signal either way.
                (false, false) => {}
            }
        }
        PlanDriftReport {
            calibration_hz: hz,
            nodes,
            unmeasured,
            unpriced,
        }
    }

    /// The `k` most mispriced nodes, by `|log2(drift)|` descending.
    pub fn top_mispriced(&self, k: usize) -> Vec<&NodeDrift> {
        let mut v: Vec<&NodeDrift> = self.nodes.iter().collect();
        v.sort_by(|a, b| {
            b.log2_drift()
                .abs()
                .total_cmp(&a.log2_drift().abs())
                .then_with(|| a.sample.name.cmp(&b.sample.name))
        });
        v.truncate(k);
        v
    }

    /// Largest `|log2(drift)|` across matched nodes (0 when empty).
    pub fn max_abs_log2_drift(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.log2_drift().abs())
            .fold(0.0, f64::max)
    }

    /// Cycle-weighted mean of `|log2(drift)|`: the plan-level mispricing
    /// magnitude, with each node weighted by its predicted share.
    pub fn weighted_mean_abs_log2_drift(&self) -> f64 {
        let total: f64 = self.nodes.iter().map(|n| n.sample.total_cycles()).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(|n| n.log2_drift().abs() * n.sample.total_cycles())
            .sum::<f64>()
            / total
    }

    /// Cycle-weighted fraction of the plan whose nodes drift within
    /// `tolerance` (ratio in `[1/tolerance, tolerance]`). `1.0` for an
    /// empty report.
    pub fn fraction_within(&self, tolerance: f64) -> f64 {
        let total: f64 = self.nodes.iter().map(|n| n.sample.total_cycles()).sum();
        if total <= 0.0 {
            return 1.0;
        }
        let tol = tolerance.max(1.0);
        self.nodes
            .iter()
            .filter(|n| n.drift_ratio >= 1.0 / tol && n.drift_ratio <= tol)
            .map(|n| n.sample.total_cycles())
            .sum::<f64>()
            / total
    }

    /// Publish the attribution through `reg`: the calibration factor and
    /// coverage gaps as gauges, and per-node drift as both a gauge (the
    /// latest ratio) and a log2 histogram of permille ratios (the
    /// continuous serve-time distribution — repeated publishes
    /// accumulate).
    pub fn publish(&self, reg: &Registry) {
        reg.gauge("plan_drift_calibration_hz").set(self.calibration_hz);
        reg.gauge("plan_drift_nodes").set(self.nodes.len() as f64);
        reg.gauge("plan_drift_unmeasured_nodes")
            .set(self.unmeasured.len() as f64);
        reg.gauge("plan_drift_unpriced_nodes")
            .set(self.unpriced.len() as f64);
        reg.gauge("plan_drift_weighted_mean_abs_log2")
            .set(self.weighted_mean_abs_log2_drift());
        for n in &self.nodes {
            let labels = [("node", n.sample.name.as_str())];
            reg.gauge(&series("plan_node_drift_ratio", &labels))
                .set(n.drift_ratio);
            reg.histogram(&series("plan_node_drift_permille", &labels))
                .record((n.drift_ratio * 1000.0).round().max(0.0) as u64);
        }
    }

    /// Render the attribution as a text table, worst mispricing first.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "plan drift attribution — calibration {:.3e} cycles/s, \
                 {} nodes ({} unmeasured, {} unpriced)",
                self.calibration_hz,
                self.nodes.len(),
                self.unmeasured.len(),
                self.unpriced.len(),
            ),
            &[
                "node",
                "pred cycles",
                "pack cycles",
                "measured ms",
                "samples",
                "drift",
                "log2",
            ],
        );
        for n in self.top_mispriced(self.nodes.len()) {
            t.row(&[
                n.sample.name.clone(),
                format!("{:.0}", n.sample.predicted_cycles),
                format!("{:.0}", n.sample.pack_cycles),
                format!("{:.3}", n.sample.measured_s * 1e3),
                n.sample.samples.to_string(),
                format!("{:.3}", n.drift_ratio),
                format!("{:+.2}", n.log2_drift()),
            ]);
        }
        t
    }

    /// JSON rendering for bench artifacts: calibration, per-node rows
    /// (input order), and the top-`k` mispriced list.
    pub fn to_json(&self, top_k: usize) -> String {
        let mut s = String::from("{\n");
        let _ = write!(s, "      \"calibration_hz\": ");
        json::write_f64(&mut s, self.calibration_hz);
        s.push_str(",\n");
        let _ = write!(s, "      \"weighted_mean_abs_log2_drift\": ");
        json::write_f64(&mut s, self.weighted_mean_abs_log2_drift());
        s.push_str(",\n");
        let _ = write!(s, "      \"max_abs_log2_drift\": ");
        json::write_f64(&mut s, self.max_abs_log2_drift());
        s.push_str(",\n");
        let _ = writeln!(s, "      \"unmeasured\": {},", self.unmeasured.len());
        let _ = writeln!(s, "      \"unpriced\": {},", self.unpriced.len());
        s.push_str("      \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"name\": {}, \"predicted_cycles\": {:.1}, \
                 \"pack_cycles\": {:.1}, \"measured_ms\": {:.4}, \
                 \"samples\": {}, \"drift_ratio\": {:.4}}}{}",
                json::string(&n.sample.name),
                n.sample.predicted_cycles,
                n.sample.pack_cycles,
                n.sample.measured_s * 1e3,
                n.sample.samples,
                n.drift_ratio,
                if i + 1 == self.nodes.len() { "\n" } else { ",\n" }
            );
        }
        s.push_str("      ],\n");
        s.push_str("      \"top_mispriced\": [\n");
        let top = self.top_mispriced(top_k);
        for (i, n) in top.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"name\": {}, \"drift_ratio\": {:.4}}}{}",
                json::string(&n.sample.name),
                n.drift_ratio,
                if i + 1 == top.len() { "\n" } else { ",\n" }
            );
        }
        s.push_str("      ]\n    }");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, cycles: f64, pack: f64, s: f64) -> NodeSample {
        NodeSample {
            name: name.into(),
            predicted_cycles: cycles,
            pack_cycles: pack,
            measured_s: s,
            samples: 1,
        }
    }

    #[test]
    fn calibration_makes_weighted_mean_unity() {
        // Two nodes, predictions 100 + 300 cycles, measured 2 + 2 s:
        // hz = 400 / 4 = 100 cycles/s.
        let r = PlanDriftReport::new(vec![
            sample("a", 100.0, 0.0, 2.0),
            sample("b", 300.0, 0.0, 2.0),
        ]);
        assert!((r.calibration_hz - 100.0).abs() < 1e-9);
        // a: measured 200 cycles vs 100 predicted → drift 2.0 (undercharged)
        // b: measured 200 cycles vs 300 predicted → drift 0.667
        assert!((r.nodes[0].drift_ratio - 2.0).abs() < 1e-9);
        assert!((r.nodes[1].drift_ratio - 2.0 / 3.0).abs() < 1e-9);
        // Cycle-weighted mean drift is 1 by construction.
        let total: f64 = r.nodes.iter().map(|n| n.sample.total_cycles()).sum();
        let mean: f64 = r
            .nodes
            .iter()
            .map(|n| n.drift_ratio * n.sample.total_cycles())
            .sum::<f64>()
            / total;
        assert!((mean - 1.0).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn pack_cycles_count_toward_the_price() {
        let r = PlanDriftReport::new(vec![
            sample("a", 50.0, 50.0, 1.0),
            sample("b", 100.0, 0.0, 1.0),
        ]);
        assert!((r.nodes[0].sample.total_cycles() - 100.0).abs() < 1e-9);
        assert!((r.nodes[0].drift_ratio - 1.0).abs() < 1e-9);
        assert!((r.nodes[1].drift_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_gaps_are_reported_not_dropped() {
        let r = PlanDriftReport::new(vec![
            sample("ok", 100.0, 0.0, 1.0),
            sample("priced_only", 50.0, 0.0, 0.0),
            sample("measured_only", 0.0, 0.0, 0.5),
            sample("absorbed", 0.0, 0.0, 0.0),
        ]);
        assert_eq!(r.nodes.len(), 1);
        assert_eq!(r.unmeasured, vec!["priced_only".to_string()]);
        assert_eq!(r.unpriced, vec!["measured_only".to_string()]);
    }

    #[test]
    fn top_mispriced_orders_by_magnitude() {
        let r = PlanDriftReport::new(vec![
            sample("mild", 100.0, 0.0, 1.0),
            sample("over", 400.0, 0.0, 1.0),
            sample("under", 25.0, 0.0, 1.0),
        ]);
        let top = r.top_mispriced(2);
        // "under" drifts hardest (25 cycles priced, equal share measured).
        assert_eq!(top[0].sample.name, "under");
        assert!(top[0].drift_ratio > 1.0);
        assert_eq!(top[1].sample.name, "over");
        assert!(top[1].drift_ratio < 1.0);
        assert!(r.max_abs_log2_drift() >= top[0].log2_drift().abs());
    }

    #[test]
    fn tolerance_fraction_is_cycle_weighted() {
        // hz = 1000/2 = 500: "good" drifts to 0.56, "bad" to 5.0 —
        // only "bad" (10% of cycles) escapes a 4x tolerance.
        let r = PlanDriftReport::new(vec![
            sample("good", 900.0, 0.0, 1.0),
            sample("bad", 100.0, 0.0, 1.0),
        ]);
        let f = r.fraction_within(4.0);
        assert!((f - 0.9).abs() < 1e-9, "{f}");
        assert_eq!(r.fraction_within(1e9), 1.0);
    }

    #[test]
    fn empty_report_is_benign() {
        let r = PlanDriftReport::new(vec![]);
        assert_eq!(r.calibration_hz, 0.0);
        assert_eq!(r.fraction_within(2.0), 1.0);
        assert_eq!(r.max_abs_log2_drift(), 0.0);
        assert!(r.top_mispriced(5).is_empty());
        assert!(r.to_table().is_empty());
    }

    #[test]
    fn publish_registers_gauges_and_histograms() {
        let r = PlanDriftReport::new(vec![
            sample("a", 100.0, 0.0, 1.0),
            sample("b", 100.0, 0.0, 3.0),
        ]);
        let reg = Registry::new();
        r.publish(&reg);
        let snap = reg.snapshot();
        let text = snap.to_prometheus_text();
        assert!(text.contains("plan_drift_calibration_hz"), "{text}");
        assert!(text.contains("plan_node_drift_ratio{node=\"a\"}"), "{text}");
        assert!(
            text.contains("plan_node_drift_permille_count{node=\"b\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn json_is_balanced_and_carries_nodes() {
        let r = PlanDriftReport::new(vec![sample("a", 100.0, 10.0, 1.0)]);
        let j = r.to_json(3);
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "{j}"
        );
        assert!(j.contains("\"calibration_hz\""), "{j}");
        assert!(j.contains("\"name\": \"a\""), "{j}");
        assert!(j.contains("\"top_mispriced\""), "{j}");
    }
}
