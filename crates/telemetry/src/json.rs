//! Minimal JSON string/number rendering shared by the exporters. The
//! workspace is offline-vendored, so there is no serde; the exporters
//! only ever *write* JSON, and only strings and finite numbers, which
//! this module covers completely.

use std::fmt::Write as _;

/// Append `s` as a JSON string literal (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render `s` as a JSON string literal.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_str(&mut out, s);
    out
}

/// Append a finite `f64` as a JSON number (non-finite values, which
/// JSON cannot represent, render as `0`).
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push('0');
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("plain"), "\"plain\"");
    }

    #[test]
    fn numbers() {
        let mut s = String::new();
        write_f64(&mut s, 3.0);
        assert_eq!(s, "3");
        s.clear();
        write_f64(&mut s, 3.25);
        assert_eq!(s, "3.25");
        s.clear();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "0");
    }
}
