//! Span/event tracing with per-thread buffers and causal parent links.
//!
//! There is deliberately no dependency on the `tracing` ecosystem (the
//! workspace is offline-vendored): a [`Tracer`] hands out RAII
//! [`SpanGuard`]s, each thread appends finished events to its own
//! buffer behind its own mutex (uncontended in steady state), and a
//! per-thread span stack supplies parent ids so exported traces nest
//! correctly. [`Tracer::chrome_json`] renders everything as Chrome
//! Trace Event JSON for `ui.perfetto.dev`.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::chrome::ChromeTraceBuilder;

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed interval of `dur_ns` nanoseconds.
    Span { dur_ns: u64 },
    /// A point-in-time marker.
    Instant,
    /// A sampled value (renders as a Perfetto counter track).
    Counter { value: f64 },
}

/// One recorded event, timestamped in nanoseconds since the tracer's
/// epoch.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (the Perfetto slice label).
    pub name: String,
    /// Category, e.g. `"engine"`, `"serve"`, `"faults"`.
    pub cat: &'static str,
    /// Span / instant / counter.
    pub kind: EventKind,
    /// Start time in nanoseconds since the tracer epoch.
    pub ts_ns: u64,
    /// Logical thread id (dense, assigned in order of first use).
    pub tid: u64,
    /// Unique id of this event.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Numeric key/value annotations.
    pub args: Vec<(&'static str, u64)>,
}

struct ThreadBuf {
    events: Vec<TraceEvent>,
}

struct TracerInner {
    id: u64,
    epoch: Instant,
    next_span: AtomicU64,
    next_tid: AtomicU64,
    buffers: Mutex<Vec<Arc<Mutex<ThreadBuf>>>>,
}

/// Thread-local registration of this thread with one tracer: its event
/// buffer, its dense tid, and the stack of currently-open span ids
/// (the top of the stack parents new events).
struct ThreadCtx {
    tracer_id: u64,
    buf: Arc<Mutex<ThreadBuf>>,
    tid: u64,
    stack: Vec<u64>,
}

thread_local! {
    static CTX: RefCell<Vec<ThreadCtx>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

/// The tracing handle. Cheap to clone; all clones record into the same
/// capture. Dropping every clone drops the capture.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer(id={})", self.inner.id)
    }
}

impl Tracer {
    /// A fresh tracer; its epoch (trace time zero) is now.
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                next_tid: AtomicU64::new(0),
                buffers: Mutex::new(Vec::new()),
            }),
        }
    }

    fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    fn next_id(&self) -> u64 {
        self.inner.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Run `f` with this thread's context for this tracer, registering
    /// the thread (new buffer, next dense tid) on first use.
    fn with_ctx<R>(&self, f: impl FnOnce(&mut ThreadCtx) -> R) -> R {
        CTX.with(|slot| {
            let mut ctxs = slot.borrow_mut();
            if let Some(ctx) = ctxs.iter_mut().find(|c| c.tracer_id == self.inner.id) {
                return f(ctx);
            }
            let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
            let buf = Arc::new(Mutex::new(ThreadBuf { events: Vec::new() }));
            self.inner.buffers.lock().unwrap().push(buf.clone());
            ctxs.push(ThreadCtx {
                tracer_id: self.inner.id,
                buf,
                tid,
                stack: Vec::new(),
            });
            f(ctxs.last_mut().unwrap())
        })
    }

    /// Open a span; it closes (and is recorded) when the guard drops.
    /// Spans opened while another span is live on the same thread are
    /// recorded as its children.
    pub fn span(&self, name: impl Into<String>, cat: &'static str) -> SpanGuard {
        let id = self.next_id();
        let parent = self.with_ctx(|ctx| {
            let parent = ctx.stack.last().copied();
            ctx.stack.push(id);
            parent
        });
        SpanGuard {
            tracer: self.clone(),
            name: name.into(),
            cat,
            id,
            parent,
            start_ns: self.now_ns(),
            args: Vec::new(),
            _not_send: std::marker::PhantomData,
        }
    }

    /// Record a completed interval between two explicitly-measured
    /// instants (e.g. phase boundaries already timed by the engine).
    /// Parented under the current thread's open span, if any.
    pub fn complete_between(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start: Instant,
        end: Instant,
    ) {
        self.complete_between_with(name, cat, start, end, Vec::new());
    }

    /// [`Tracer::complete_between`] with numeric annotations.
    pub fn complete_between_with(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start: Instant,
        end: Instant,
        args: Vec<(&'static str, u64)>,
    ) {
        let ts_ns = start
            .saturating_duration_since(self.inner.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let dur_ns = end.saturating_duration_since(start).as_nanos().min(u64::MAX as u128) as u64;
        let id = self.next_id();
        self.record(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Span { dur_ns },
            ts_ns,
            tid: 0, // overwritten in record()
            id,
            parent: self.with_ctx(|ctx| ctx.stack.last().copied()),
            args,
        });
    }

    /// Record a point-in-time marker.
    pub fn instant(&self, name: impl Into<String>, cat: &'static str) {
        self.instant_with(name, cat, Vec::new());
    }

    /// Record a point-in-time marker with numeric annotations.
    pub fn instant_with(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        args: Vec<(&'static str, u64)>,
    ) {
        let id = self.next_id();
        let ts_ns = self.now_ns();
        self.record(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Instant,
            ts_ns,
            tid: 0,
            id,
            parent: self.with_ctx(|ctx| ctx.stack.last().copied()),
            args,
        });
    }

    /// Sample a counter value (one Perfetto counter track per name).
    pub fn counter(&self, name: impl Into<String>, cat: &'static str, value: f64) {
        let id = self.next_id();
        let ts_ns = self.now_ns();
        self.record(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Counter { value },
            ts_ns,
            tid: 0,
            id,
            parent: None,
            args: Vec::new(),
        });
    }

    fn record(&self, mut ev: TraceEvent) {
        self.with_ctx(|ctx| {
            ev.tid = ctx.tid;
            ctx.buf.lock().unwrap().events.push(ev);
        });
    }

    /// Drain every thread's buffer into one list, sorted by timestamp.
    /// Open spans are not included (they record on guard drop).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let buffers = self.inner.buffers.lock().unwrap();
        let mut all = Vec::new();
        for buf in buffers.iter() {
            all.append(&mut buf.lock().unwrap().events);
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Drain and render the capture as Chrome Trace Event JSON
    /// (openable in `ui.perfetto.dev` or `chrome://tracing`).
    pub fn chrome_json(&self) -> String {
        let events = self.drain();
        let mut b = ChromeTraceBuilder::new();
        b.process_name(1, "bfp");
        let mut tids_seen: Vec<u64> = Vec::new();
        for ev in &events {
            if !tids_seen.contains(&ev.tid) {
                tids_seen.push(ev.tid);
                b.thread_name(1, ev.tid, &format!("thread-{}", ev.tid));
            }
            let ts_us = ev.ts_ns as f64 / 1_000.0;
            match ev.kind {
                EventKind::Span { dur_ns } => {
                    b.complete(&ev.name, ev.cat, ts_us, dur_ns as f64 / 1_000.0, 1, ev.tid, &ev.args);
                }
                EventKind::Instant => {
                    b.instant(&ev.name, ev.cat, ts_us, 1, ev.tid, &ev.args);
                }
                EventKind::Counter { value } => {
                    b.counter(&ev.name, ev.cat, ts_us, 1, value);
                }
            }
        }
        b.finish()
    }
}

/// RAII guard for an open span: records a completed event when dropped.
/// Deliberately `!Send` — a span measures one thread's interval, and
/// the parent stack it is registered on is thread-local.
pub struct SpanGuard {
    tracer: Tracer,
    name: String,
    cat: &'static str,
    id: u64,
    parent: Option<u64>,
    start_ns: u64,
    args: Vec<(&'static str, u64)>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    /// Attach a numeric annotation, shown in the Perfetto args panel.
    pub fn set_arg(&mut self, key: &'static str, value: u64) {
        self.args.push((key, value));
    }

    /// This span's id (usable as a parent for manual bookkeeping).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpanGuard({:?})", self.name)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_ns = self.tracer.now_ns();
        let ev = TraceEvent {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            kind: EventKind::Span {
                dur_ns: end_ns.saturating_sub(self.start_ns),
            },
            ts_ns: self.start_ns,
            tid: 0,
            id: self.id,
            parent: self.parent,
            args: std::mem::take(&mut self.args),
        };
        self.tracer.with_ctx(|ctx| {
            // Pop this span (and anything leaked above it) off the stack.
            if let Some(pos) = ctx.stack.iter().rposition(|&s| s == self.id) {
                ctx.stack.truncate(pos);
            }
        });
        self.tracer.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_parent() {
        let t = Tracer::new();
        {
            let outer = t.span("outer", "test");
            let outer_id = outer.id();
            {
                let inner = t.span("inner", "test");
                assert_eq!(inner.parent, Some(outer_id));
            }
            let _sibling = t.span("sibling", "test");
        }
        let events = t.drain();
        assert_eq!(events.len(), 3);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert!(outer.parent.is_none());
        // Child interval inside parent interval.
        let (EventKind::Span { dur_ns: od }, EventKind::Span { dur_ns: id }) =
            (&outer.kind, &inner.kind)
        else {
            panic!("spans expected");
        };
        assert!(inner.ts_ns >= outer.ts_ns);
        assert!(inner.ts_ns + id <= outer.ts_ns + od);
    }

    #[test]
    fn drain_is_sorted_and_empties() {
        let t = Tracer::new();
        t.instant("a", "test");
        t.instant("b", "test");
        let events = t.drain();
        assert_eq!(events.len(), 2);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert!(t.drain().is_empty());
    }

    #[test]
    fn threads_get_distinct_tids() {
        let t = Tracer::new();
        t.instant("main", "test");
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _sp = t.span("worker", "test");
                });
            }
        });
        let events = t.drain();
        assert_eq!(events.len(), 3);
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each thread gets its own tid");
    }

    #[test]
    fn complete_between_uses_given_interval() {
        let t = Tracer::new();
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let end = Instant::now();
        t.complete_between_with("phase", "test", start, end, vec![("n", 7)]);
        let events = t.drain();
        assert_eq!(events.len(), 1);
        let EventKind::Span { dur_ns } = events[0].kind else {
            panic!("span expected");
        };
        assert!(dur_ns >= 1_000_000, "dur {dur_ns}");
        assert_eq!(events[0].args, vec![("n", 7)]);
    }

    #[test]
    fn chrome_json_has_events() {
        let t = Tracer::new();
        {
            let mut sp = t.span("work", "test");
            sp.set_arg("rows", 64);
        }
        t.instant("marker", "test");
        t.counter("depth", "test", 3.0);
        let json = t.chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"work\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"ph\": \"C\""));
        assert!(json.contains("\"rows\": 64"));
    }
}
