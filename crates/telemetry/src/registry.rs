//! Lock-free metrics: counters, gauges, and fixed-bucket log2
//! histograms behind a named registry.
//!
//! The registry's lock is taken only when a handle is *created* (or a
//! snapshot rendered) — both cold paths. Recording through a handle is
//! a single relaxed atomic operation, safe to call from any thread,
//! including the engine's GEMM inner loop and the serving workers.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json;

/// Monotonic event counter. Cheap to clone; all clones share the cell.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A free-standing counter (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Last-value gauge holding an `f64` (stored as bits in an atomic).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// A free-standing gauge (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Bucket count of a [`Histogram`]: bucket 0 holds zero-valued
/// observations; bucket `i` (1 ≤ i ≤ 64) holds values `v` with
/// `2^(i-1) <= v < 2^i`. Covers the full `u64` range with no
/// configuration and no per-record branching beyond a leading-zeros.
pub const HIST_BUCKETS: usize = 65;

struct HistCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistCore {
    fn default() -> Self {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Fixed-bucket log2 histogram of `u64` observations (durations in
/// nanoseconds, sizes in bytes, ULP distances, …).
#[derive(Clone, Default)]
pub struct Histogram {
    core: Arc<HistCore>,
}

/// Which bucket a value lands in (see [`HIST_BUCKETS`]).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// A free-standing histogram (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.core.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a `Duration` in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wraps on overflow).
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(self.core.buckets.iter()) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram(count={}, sum={})", self.count(), self.sum())
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`HIST_BUCKETS`] for the layout).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing quantile `q`, or 0 for an
    /// empty histogram. A log2 histogram can only answer to bucket
    /// resolution; the upper bound is the conservative estimate.
    ///
    /// Edge cases are pinned (not silent bucket-boundary accidents):
    /// `q` outside `[0, 1]` (including NaN) is clamped; `q = 0.0`
    /// answers the first non-empty bucket (the minimum's bucket);
    /// `q = 1.0` answers the last non-empty bucket (the maximum's
    /// bucket); a histogram whose observations all share one bucket
    /// answers that bucket for every `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // NaN clamps to 0.0 (f64::clamp propagates NaN; guard it).
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= rank {
                return bucket_upper(i);
            }
        }
        // Unreachable when the bucket counts sum to `count`; answer the
        // last non-empty bucket for snapshots with inconsistent totals.
        let last = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(HIST_BUCKETS - 1);
        bucket_upper(last)
    }

    /// Mean observation (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Inclusive upper bound of bucket `i`: 0 for bucket 0, else `2^i - 1`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Render a labeled series name in Prometheus exposition form:
/// `series("x", &[("tenant", "3")])` → `x{tenant="3"}`. With no labels
/// the bare name is returned. The registry itself is label-unaware —
/// the full string is the instrument key — so labeled families stay
/// cheap (one map entry per combination actually used) and render
/// correctly in `to_prometheus_text` without a schema change.
///
/// Label values are escaped per the exposition format: backslash,
/// double quote, and newline (the three characters the format reserves
/// inside quoted label values).
pub fn series(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let escaped = v
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    out.push('}');
    out
}

/// The metric family of a (possibly labeled) series key: the name up to
/// the label block. `depth{tenant="1"}` → `depth`.
fn family(series_key: &str) -> &str {
    series_key.split('{').next().unwrap_or(series_key)
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The named metrics registry. Cheap to clone (all clones share state);
/// pass `&Registry` into `publish`-style methods.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Registry")
    }
}

/// Point-in-time copy of a [`Registry`], ready to render.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → buckets, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Prometheus-style text exposition (counters, gauges, and
    /// cumulative histogram buckets with `le` labels).
    ///
    /// `# TYPE` lines are emitted once per metric *family* — the series
    /// name stripped of its label block — immediately before the
    /// family's first series, as the exposition format requires.
    /// Labeled series of the same family (sorted adjacently by the
    /// snapshot's BTreeMap ordering) share one TYPE line.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut typed = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let fam = family(name);
            if typed != fam {
                let _ = writeln!(out, "# TYPE {fam} {kind}");
                typed = fam.to_string();
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            type_line(&mut out, name, "gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            type_line(&mut out, name, "histogram");
            // A labeled histogram series folds its `le` bucket label
            // into the existing label block: `lat{tenant="1"}` buckets
            // render as `lat_bucket{tenant="1",le="..."}`.
            let (base, labels) = match name.find('{') {
                Some(i) => (&name[..i], &name[i + 1..name.len() - 1]),
                None => (name.as_str(), ""),
            };
            let le_block = |le: &str| {
                if labels.is_empty() {
                    format!("{{le=\"{le}\"}}")
                } else {
                    format!("{{{labels},le=\"{le}\"}}")
                }
            };
            let plain_block = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                let _ = writeln!(
                    out,
                    "{base}_bucket{} {cum}",
                    le_block(&bucket_upper(i).to_string())
                );
            }
            let _ = writeln!(out, "{base}_bucket{} {}", le_block("+Inf"), h.count);
            let _ = writeln!(out, "{base}_sum{plain_block} {}", h.sum);
            let _ = writeln!(out, "{base}_count{plain_block} {}", h.count);
        }
        out
    }

    /// JSON object rendering (`{"counters":{...},"gauges":{...},
    /// "histograms":{...}}`), for embedding in bench artifacts.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(s, "{sep}    {}: {v}", json::string(name));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(s, "{sep}    {}: ", json::string(name));
            json::write_f64(&mut s, *v);
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                s,
                "{sep}    {}: {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
                json::string(name),
                h.count,
                h.sum,
                h.quantile(0.50),
                h.quantile(0.99),
            );
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("hits_total");
        c.inc();
        c.add(4);
        // Same name → same cell.
        assert_eq!(reg.counter("hits_total").get(), 5);
        let g = reg.gauge("depth");
        g.set(2.5);
        assert_eq!(reg.gauge("depth").get(), 2.5);
    }

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1105);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the two ones
        // p50 lands in the bucket of 1..=3, p99 in the bucket of 1000.
        assert!(s.quantile(0.5) <= 3);
        assert!(s.quantile(0.99) >= 1000);
        assert!((s.mean() - 1105.0 / 6.0).abs() < 1e-9);
        assert_eq!(HistogramSnapshot { buckets: [0; HIST_BUCKETS], count: 0, sum: 0 }.quantile(0.5), 0);
    }

    #[test]
    fn series_renders_labels() {
        assert_eq!(series("x", &[]), "x");
        assert_eq!(series("x", &[("tenant", "3")]), "x{tenant=\"3\"}");
        assert_eq!(
            series("q", &[("a", "1"), ("b", "two")]),
            "q{a=\"1\",b=\"two\"}"
        );
        // Quotes and backslashes in values are escaped.
        assert_eq!(series("e", &[("k", "a\"b")]), "e{k=\"a\\\"b\"}");
        // Same labeled series name → same cell.
        let reg = Registry::new();
        reg.gauge(&series("depth", &[("tenant", "1")])).set(4.0);
        assert_eq!(reg.gauge(&series("depth", &[("tenant", "1")])).get(), 4.0);
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("depth{tenant=\"1\"} 4"), "{text}");
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = Registry::new();
        reg.counter("reqs_total").add(3);
        reg.gauge("queue_depth").set(7.0);
        reg.histogram("lat_ns").record(1500);
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE reqs_total counter"));
        assert!(text.contains("reqs_total 3"));
        assert!(text.contains("queue_depth 7"));
        assert!(text.contains("lat_ns_count 1"));
        assert!(text.contains("lat_ns_sum 1500"));
        assert!(text.contains("le=\"+Inf\"} 1"));
    }

    #[test]
    fn quantile_edge_cases_are_pinned() {
        // Empty histogram: every quantile answers 0.
        let empty = HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        };
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.quantile(q), 0);
        }

        // Single-bucket histogram: every quantile answers that bucket.
        let h = Histogram::new();
        for _ in 0..5 {
            h.record(100); // bucket of 64..=127
        }
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(s.quantile(q), 127, "q={q}");
        }

        // Multi-bucket: q=0 answers the minimum's bucket, q=1 the
        // maximum's bucket, out-of-range q clamps to those.
        let h = Histogram::new();
        h.record(1);
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(-3.0), 1);
        assert_eq!(s.quantile(f64::NAN), 1);
        assert_eq!(s.quantile(1.0), 1023);
        assert_eq!(s.quantile(7.0), 1023);

        // A single zero observation lands in (and answers) bucket 0.
        let h = Histogram::new();
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 0);
    }

    #[test]
    fn series_escapes_newlines() {
        assert_eq!(series("e", &[("k", "a\nb")]), "e{k=\"a\\nb\"}");
        assert_eq!(series("e", &[("k", "a\\b")]), "e{k=\"a\\\\b\"}");
    }

    /// Unescape one Prometheus label value (the inverse of the escaping
    /// `series` applies), for the round-trip assertion below.
    fn unescape(v: &str) -> String {
        let mut out = String::new();
        let mut chars = v.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some(other) => out.push(other),
                    None => out.push('\\'),
                }
            } else {
                out.push(c);
            }
        }
        out
    }

    #[test]
    fn prometheus_text_round_trips_labels_and_types() {
        let reg = Registry::new();
        let nasty = "a\\b\"c\nd";
        reg.counter(&series("reqs_total", &[("tenant", "1")])).add(2);
        reg.counter(&series("reqs_total", &[("tenant", nasty)])).add(3);
        reg.gauge(&series("depth", &[("q", "hi")])).set(4.0);
        reg.histogram(&series("lat_ns", &[("tenant", "1")]))
            .record(1500);
        let text = reg.snapshot().to_prometheus_text();

        // Exactly one TYPE line per family, naming the bare family (no
        // label block), before the family's first series.
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        assert_eq!(
            type_lines,
            vec![
                "# TYPE reqs_total counter",
                "# TYPE depth gauge",
                "# TYPE lat_ns histogram"
            ],
            "{text}"
        );

        // Histogram bucket lines fold `le` into the label block and the
        // sum/count series keep the original labels.
        assert!(text.contains("lat_ns_bucket{tenant=\"1\",le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("lat_ns_sum{tenant=\"1\"} 1500"), "{text}");
        assert!(text.contains("lat_ns_count{tenant=\"1\"} 1"), "{text}");

        // Round trip: parse every sample line back and recover the
        // escaped label value exactly.
        let mut recovered = None;
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (key, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!value.is_empty(), "{line}");
            if let Some(open) = key.find('{') {
                assert!(key.ends_with('}'), "{line}");
                let block = &key[open + 1..key.len() - 1];
                for pair in split_label_pairs(block) {
                    let (k, v) = pair.split_once('=').expect("label pair");
                    assert!(v.starts_with('"') && v.ends_with('"'), "{line}");
                    if k == "tenant" {
                        let raw = unescape(&v[1..v.len() - 1]);
                        if raw == nasty {
                            recovered = Some(raw);
                        }
                    }
                }
            }
        }
        assert_eq!(recovered.as_deref(), Some(nasty), "{text}");
    }

    /// Split a label block on commas that are outside quoted values.
    fn split_label_pairs(block: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut start = 0;
        let mut in_quotes = false;
        let mut escaped = false;
        for (i, c) in block.char_indices() {
            match c {
                '\\' if in_quotes => escaped = !escaped,
                '"' if !escaped => in_quotes = !in_quotes,
                ',' if !in_quotes => {
                    out.push(&block[start..i]);
                    start = i + 1;
                    escaped = false;
                }
                _ => escaped = false,
            }
        }
        out.push(&block[start..]);
        out
    }

    #[test]
    fn json_snapshot_shape() {
        let reg = Registry::new();
        reg.counter("a_total").inc();
        reg.gauge("g").set(1.5);
        reg.histogram("h").record(10);
        let j = reg.snapshot().to_json();
        assert!(j.contains("\"a_total\": 1"));
        assert!(j.contains("\"g\": 1.5"));
        assert!(j.contains("\"count\": 1"));
    }
}
