//! Anomaly flight recorder: a bounded, non-blocking ring of recent
//! request records that can be dumped on a trigger.
//!
//! The recorder is a black box in the aviation sense — it continuously
//! overwrites itself with the most recent N completed requests, costing
//! one `try_lock` + move per request on the hot path, and only
//! materialises anything when a trigger fires (SLO burn-rate over
//! budget, numeric envelope violation, brownout escalation). The dump
//! pairs a JSON snapshot (schema `flight_recorder/v1`) with a
//! Perfetto/Chrome-loadable trace so the offending request's timeline
//! can be inspected visually next to its neighbours.
//!
//! Push never blocks: each slot is an independent mutex and a writer
//! that loses a `try_lock` race simply drops the record (the slot
//! holder is a request from the same recent window, so the ring stays
//! representative). Triggers are rate-limited by a cooldown so a storm
//! of violations produces one dump per window, not thousands.

use crate::chrome::ChromeTraceBuilder;
use crate::json;

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One execution attempt inside a [`FlightRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlightAttempt {
    /// Array the attempt ran on.
    pub array: usize,
    /// Modelled execution seconds for the attempt.
    pub modelled_s: f64,
    /// Whether the attempt was killed by a fault.
    pub faulted: bool,
    /// Nonlinear mode the attempt ran under (e.g. `"exact"`, `"fast"`).
    pub mode: String,
}

/// Numeric-health sample attached by the shadow-execution lane.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowSample {
    /// Worst ULP distance vs the exact oracle.
    pub max_ulp: u64,
    /// Worst absolute error vs the exact oracle.
    pub max_abs: f64,
    /// Signal-to-quantization-noise ratio in dB.
    pub sqnr_db: f64,
    /// True when the sample escaped the proven envelope.
    pub violation: bool,
}

/// One completed request, as remembered by the recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Request id.
    pub id: u64,
    /// Tenant index.
    pub tenant: usize,
    /// Priority label (e.g. `"critical"`, `"bulk"`).
    pub priority: String,
    /// Admission time, seconds on the server clock.
    pub start_s: f64,
    /// Seconds spent queued before the first attempt.
    pub queue_wait_s: f64,
    /// Admission-to-completion seconds.
    pub total_s: f64,
    /// Whether the request missed its deadline.
    pub deadline_missed: bool,
    /// Terminal outcome (`"ok"`, `"shed"`, `"failed"`, ...).
    pub outcome: String,
    /// Execution attempts, in order.
    pub attempts: Vec<FlightAttempt>,
    /// Shadow-lane numeric sample, when this request was sampled.
    pub shadow: Option<ShadowSample>,
}

/// Why a dump was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerReason {
    /// A tenant/priority stream burned SLO budget over threshold.
    BurnRate,
    /// The shadow lane caught an output outside its proven envelope.
    EnvelopeViolation,
    /// The server escalated to a deeper brownout tier.
    BrownoutEscalation,
}

impl TriggerReason {
    /// Stable string form used in dumps and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            TriggerReason::BurnRate => "burn_rate",
            TriggerReason::EnvelopeViolation => "envelope_violation",
            TriggerReason::BrownoutEscalation => "brownout_escalation",
        }
    }
}

/// A materialised snapshot of the ring, taken at a trigger.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// What fired the trigger.
    pub reason: TriggerReason,
    /// Dump sequence number (0-based, per recorder).
    pub seq: u64,
    /// Server-clock time the trigger fired.
    pub trigger_s: f64,
    /// Free-form trigger detail (tenant, burn value, ...).
    pub detail: String,
    /// Records captured from the ring, oldest first.
    pub records: Vec<FlightRecord>,
}

/// Bounded non-blocking flight recorder.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightRecord>>>,
    cursor: AtomicU64,
    /// Records dropped because a slot lock was contended.
    dropped: AtomicU64,
    pushed: AtomicU64,
    dumps_taken: AtomicU64,
    /// Minimum seconds between dumps.
    cooldown_s: f64,
    /// Bit pattern of the last trigger time (f64), u64::MAX = never.
    last_trigger: AtomicU64,
}

impl FlightRecorder {
    /// Recorder remembering the last `capacity` requests, with at most
    /// one dump per `cooldown_s` seconds.
    pub fn new(capacity: usize, cooldown_s: f64) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            pushed: AtomicU64::new(0),
            dumps_taken: AtomicU64::new(0),
            cooldown_s,
            last_trigger: AtomicU64::new(u64::MAX),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records successfully pushed since creation.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Records dropped to lock contention since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Dumps taken since creation.
    pub fn dumps_taken(&self) -> u64 {
        self.dumps_taken.load(Ordering::Relaxed)
    }

    /// Remember a completed request. Never blocks: if the target slot
    /// is locked by a concurrent reader/writer, the record is dropped
    /// and counted in [`dropped`](Self::dropped).
    pub fn push(&self, record: FlightRecord) {
        let at = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (at % self.slots.len() as u64) as usize;
        match self.slots[slot].try_lock() {
            Ok(mut g) => {
                *g = Some(record);
                self.pushed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot the ring without consuming it, oldest record first.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut out: Vec<FlightRecord> = Vec::with_capacity(self.slots.len());
        let cur = self.cursor.load(Ordering::Relaxed);
        let n = self.slots.len() as u64;
        // Walk slots in ring order starting at the oldest.
        for off in 0..n {
            let slot = ((cur + off) % n) as usize;
            if let Ok(g) = self.slots[slot].try_lock() {
                if let Some(r) = g.as_ref() {
                    out.push(r.clone());
                }
            }
        }
        out.sort_by(|a, b| a.start_s.total_cmp(&b.start_s).then(a.id.cmp(&b.id)));
        out
    }

    /// Fire a trigger at `now_s`. Returns the dump, or `None` while
    /// inside the cooldown window from the previous dump.
    pub fn trigger(
        &self,
        reason: TriggerReason,
        now_s: f64,
        detail: impl Into<String>,
    ) -> Option<FlightDump> {
        let prev = self.last_trigger.load(Ordering::Relaxed);
        if prev != u64::MAX {
            let prev_s = f64::from_bits(prev);
            if now_s - prev_s < self.cooldown_s {
                return None;
            }
        }
        // Races here at worst produce one extra dump; dumps are rare
        // and idempotent, so a CAS loop is not worth the complexity.
        self.last_trigger.store(now_s.to_bits(), Ordering::Relaxed);
        let seq = self.dumps_taken.fetch_add(1, Ordering::Relaxed);
        Some(FlightDump {
            reason,
            seq,
            trigger_s: now_s,
            detail: detail.into(),
            records: self.snapshot(),
        })
    }
}

impl FlightDump {
    /// JSON snapshot, schema `flight_recorder/v1`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"flight_recorder/v1\",\n");
        let _ = writeln!(s, "  \"reason\": {},", json::string(self.reason.as_str()));
        let _ = writeln!(s, "  \"seq\": {},", self.seq);
        let _ = write!(s, "  \"trigger_s\": ");
        json::write_f64(&mut s, self.trigger_s);
        s.push_str(",\n");
        let _ = writeln!(s, "  \"detail\": {},", json::string(&self.detail));
        s.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"id\": {}, \"tenant\": {}, \"priority\": {}, \
                 \"start_s\": {:.6}, \"queue_wait_s\": {:.6}, \"total_s\": {:.6}, \
                 \"deadline_missed\": {}, \"outcome\": {}, \"attempts\": [",
                r.id,
                r.tenant,
                json::string(&r.priority),
                r.start_s,
                r.queue_wait_s,
                r.total_s,
                r.deadline_missed,
                json::string(&r.outcome),
            );
            for (j, a) in r.attempts.iter().enumerate() {
                let _ = write!(
                    s,
                    "{{\"array\": {}, \"modelled_s\": {:.6}, \"faulted\": {}, \"mode\": {}}}{}",
                    a.array,
                    a.modelled_s,
                    a.faulted,
                    json::string(&a.mode),
                    if j + 1 == r.attempts.len() { "" } else { ", " }
                );
            }
            s.push_str("], \"shadow\": ");
            match &r.shadow {
                Some(sh) => {
                    let _ = write!(
                        s,
                        "{{\"max_ulp\": {}, \"max_abs\": {:e}, \"sqnr_db\": {:.2}, \
                         \"violation\": {}}}",
                        sh.max_ulp, sh.max_abs, sh.sqnr_db, sh.violation
                    );
                }
                None => s.push_str("null"),
            }
            let _ = write!(
                s,
                "}}{}",
                if i + 1 == self.records.len() { "\n" } else { ",\n" }
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Perfetto/Chrome-loadable trace of the captured window. Each
    /// tenant renders as a process; a request's queue wait and each
    /// execution attempt render as complete events on the attempt's
    /// array track, and the trigger itself as an instant event.
    pub fn to_chrome_trace(&self) -> String {
        let mut b = ChromeTraceBuilder::new();
        let us = |s: f64| s.max(0.0) * 1e6;
        let mut named: Vec<usize> = Vec::new();
        for r in &self.records {
            let pid = r.tenant as u64 + 1;
            if !named.contains(&r.tenant) {
                named.push(r.tenant);
                b.process_name(pid, &format!("tenant {}", r.tenant));
                b.thread_name(pid, 0, "queue");
            }
            let t0 = us(r.start_s);
            if r.queue_wait_s > 0.0 {
                b.complete(
                    &format!("req {} wait ({})", r.id, r.priority),
                    "flight.queue",
                    t0,
                    us(r.queue_wait_s),
                    pid,
                    0,
                    &[("id", r.id)],
                );
            }
            let mut at = t0 + us(r.queue_wait_s);
            for a in &r.attempts {
                let tid = a.array as u64 + 1;
                b.thread_name(pid, tid, &format!("array {}", a.array));
                let name = format!(
                    "req {} {}{}",
                    r.id,
                    a.mode,
                    if a.faulted { " FAULT" } else { "" }
                );
                b.complete(
                    &name,
                    if a.faulted { "flight.fault" } else { "flight.exec" },
                    at,
                    us(a.modelled_s),
                    pid,
                    tid,
                    &[("id", r.id), ("faulted", a.faulted as u64)],
                );
                at += us(a.modelled_s);
            }
            if r.deadline_missed {
                b.instant(
                    &format!("req {} deadline miss", r.id),
                    "flight.slo",
                    t0 + us(r.total_s),
                    pid,
                    0,
                    &[("id", r.id)],
                );
            }
            if let Some(sh) = &r.shadow {
                if sh.violation {
                    b.instant(
                        &format!("req {} envelope violation", r.id),
                        "flight.numeric",
                        t0 + us(r.total_s),
                        pid,
                        0,
                        &[("id", r.id), ("max_ulp", sh.max_ulp)],
                    );
                }
            }
        }
        b.process_name(0, "flight recorder");
        b.instant(
            &format!("TRIGGER {} ({})", self.reason.as_str(), self.detail),
            "flight.trigger",
            us(self.trigger_s),
            0,
            0,
            &[("seq", self.seq)],
        );
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, tenant: usize, start_s: f64) -> FlightRecord {
        FlightRecord {
            id,
            tenant,
            priority: "critical".into(),
            start_s,
            queue_wait_s: 0.001,
            total_s: 0.005,
            deadline_missed: id.is_multiple_of(2),
            outcome: "ok".into(),
            attempts: vec![
                FlightAttempt {
                    array: 0,
                    modelled_s: 0.002,
                    faulted: true,
                    mode: "exact".into(),
                },
                FlightAttempt {
                    array: 1,
                    modelled_s: 0.002,
                    faulted: false,
                    mode: "fast".into(),
                },
            ],
            shadow: Some(ShadowSample {
                max_ulp: 3,
                max_abs: 1e-3,
                sqnr_db: 42.0,
                violation: id == 7,
            }),
        }
    }

    #[test]
    fn ring_keeps_most_recent_capacity_records() {
        let fr = FlightRecorder::new(4, 0.0);
        for i in 0..10u64 {
            fr.push(rec(i, 0, i as f64));
        }
        assert_eq!(fr.pushed(), 10);
        assert_eq!(fr.dropped(), 0);
        let snap = fr.snapshot();
        let ids: Vec<u64> = snap.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "oldest-first, last 4 survive");
    }

    #[test]
    fn trigger_respects_cooldown() {
        let fr = FlightRecorder::new(4, 10.0);
        fr.push(rec(1, 0, 0.5));
        let d0 = fr.trigger(TriggerReason::BurnRate, 1.0, "tenant 0");
        assert!(d0.is_some());
        assert!(fr
            .trigger(TriggerReason::EnvelopeViolation, 5.0, "x")
            .is_none());
        let d1 = fr.trigger(TriggerReason::BrownoutEscalation, 12.0, "tier 2");
        assert!(d1.is_some());
        assert_eq!(d1.unwrap().seq, 1);
        assert_eq!(fr.dumps_taken(), 2);
    }

    #[test]
    fn dump_json_matches_schema_and_balances() {
        let fr = FlightRecorder::new(8, 0.0);
        fr.push(rec(7, 2, 1.0));
        fr.push(FlightRecord {
            shadow: None,
            attempts: vec![],
            ..rec(8, 0, 2.0)
        });
        let d = fr
            .trigger(TriggerReason::EnvelopeViolation, 3.0, "req 7")
            .unwrap();
        let j = d.to_json();
        assert!(j.contains("\"schema\": \"flight_recorder/v1\""), "{j}");
        assert!(j.contains("\"reason\": \"envelope_violation\""), "{j}");
        assert!(j.contains("\"violation\": true"), "{j}");
        assert!(j.contains("\"shadow\": null"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        assert_eq!(j.matches('[').count(), j.matches(']').count(), "{j}");
    }

    #[test]
    fn chrome_trace_contains_timeline_and_trigger() {
        let fr = FlightRecorder::new(8, 0.0);
        fr.push(rec(7, 2, 1.0));
        let d = fr.trigger(TriggerReason::BurnRate, 2.0, "burn 6.0x").unwrap();
        let t = d.to_chrome_trace();
        assert!(t.contains("\"traceEvents\""), "{t}");
        assert!(t.contains("req 7 exact FAULT"), "{t}");
        assert!(t.contains("req 7 fast"), "{t}");
        assert!(t.contains("req 7 envelope violation"), "{t}");
        assert!(t.contains("TRIGGER burn_rate"), "{t}");
        assert!(t.contains("tenant 2"), "{t}");
        assert_eq!(t.matches('{').count(), t.matches('}').count(), "{t}");
    }

    #[test]
    fn push_under_contention_drops_instead_of_blocking() {
        let fr = FlightRecorder::new(1, 0.0);
        let _held = fr.slots[0].lock().unwrap();
        fr.push(rec(1, 0, 0.0));
        assert_eq!(fr.dropped(), 1);
        assert_eq!(fr.pushed(), 0);
    }
}
