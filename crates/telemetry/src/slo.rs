//! Multi-window SLO burn-rate tracking.
//!
//! An SLO gives each stream a *budget*: the fraction of requests allowed
//! to go bad (miss a deadline, shed, violate an envelope). The burn rate
//! over a window is the observed bad fraction divided by that budget —
//! `1.0` means the stream is consuming budget exactly as fast as the SLO
//! allows, `10.0` means ten times faster. Alerting on a single window is
//! a known trap: a short window pages on noise, a long window pages an
//! hour late. The standard fix is multi-window burn alerts — fire only
//! when *both* a fast and a slow window are over threshold — which is
//! what [`BurnTracker::max_burn`] + per-window gauges enable.
//!
//! Time is an explicit `now_s: f64` parameter rather than `Instant`, so
//! servers feed modelled/simulated clocks and tests are deterministic.

use crate::registry::{series, Registry};

/// Burn-rate windows, in seconds, fast to slow. Classic multiwindow
/// ladder scaled down to bench/simulation timescales.
pub const DEFAULT_WINDOWS_S: [f64; 3] = [5.0, 60.0, 300.0];

/// Event-bucketed burn-rate tracker for one stream (tenant × priority).
///
/// Events land in coarse time buckets (one per `granularity_s`); the
/// ring holds enough buckets to cover the slowest window. Memory is
/// fixed, record cost is O(1), queries are O(ring).
#[derive(Debug, Clone)]
pub struct BurnTracker {
    /// Allowed bad fraction (e.g. `0.01` = 1% error budget).
    budget: f64,
    windows_s: Vec<f64>,
    granularity_s: f64,
    /// (bucket_index, total, bad) per slot; bucket_index stamps validity.
    ring: Vec<(u64, u64, u64)>,
}

impl BurnTracker {
    /// Tracker with the [`DEFAULT_WINDOWS_S`] ladder.
    pub fn new(budget: f64) -> Self {
        Self::with_windows(budget, &DEFAULT_WINDOWS_S)
    }

    /// Tracker over custom windows (seconds, need not be sorted).
    /// Bucket granularity is 1/10 of the fastest window so the fast
    /// window still has resolution.
    pub fn with_windows(budget: f64, windows_s: &[f64]) -> Self {
        assert!(!windows_s.is_empty(), "need at least one window");
        let budget = budget.max(1e-9);
        let fastest = windows_s.iter().cloned().fold(f64::INFINITY, f64::min);
        let slowest = windows_s.iter().cloned().fold(0.0, f64::max);
        let granularity_s = (fastest / 10.0).max(1e-3);
        let slots = ((slowest / granularity_s).ceil() as usize + 2).max(4);
        BurnTracker {
            budget,
            windows_s: windows_s.to_vec(),
            granularity_s,
            ring: vec![(u64::MAX, 0, 0); slots],
        }
    }

    /// The tracker's error budget (bad fraction allowed).
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Configured windows, in seconds.
    pub fn windows_s(&self) -> &[f64] {
        &self.windows_s
    }

    fn bucket_index(&self, now_s: f64) -> u64 {
        (now_s.max(0.0) / self.granularity_s) as u64
    }

    /// Record one request outcome at `now_s`.
    pub fn record(&mut self, now_s: f64, bad: bool) {
        let idx = self.bucket_index(now_s);
        let slot = (idx % self.ring.len() as u64) as usize;
        let entry = &mut self.ring[slot];
        if entry.0 != idx {
            // Slot holds a stale bucket from a previous lap; recycle it.
            *entry = (idx, 0, 0);
        }
        entry.1 += 1;
        entry.2 += bad as u64;
    }

    /// `(total, bad)` over the trailing `window_s` ending at `now_s`.
    pub fn window_counts(&self, window_s: f64, now_s: f64) -> (u64, u64) {
        let hi = self.bucket_index(now_s);
        let span = (window_s / self.granularity_s).ceil() as u64;
        let lo = hi.saturating_sub(span.saturating_sub(1));
        let mut total = 0;
        let mut bad = 0;
        for &(idx, t, b) in &self.ring {
            if idx != u64::MAX && idx >= lo && idx <= hi {
                total += t;
                bad += b;
            }
        }
        (total, bad)
    }

    /// Burn rate over the trailing `window_s`: bad-fraction / budget.
    /// `0.0` when the window saw no traffic.
    pub fn burn_rate(&self, window_s: f64, now_s: f64) -> f64 {
        let (total, bad) = self.window_counts(window_s, now_s);
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / self.budget
    }

    /// Worst burn rate across all configured windows.
    pub fn max_burn(&self, now_s: f64) -> f64 {
        self.windows_s
            .iter()
            .map(|&w| self.burn_rate(w, now_s))
            .fold(0.0, f64::max)
    }

    /// Multiwindow alert: true only when *every* window burns at or
    /// above `threshold` — the fast window proves it is happening now,
    /// the slow window proves it is not a blip.
    pub fn alerting(&self, threshold: f64, now_s: f64) -> bool {
        self.windows_s
            .iter()
            .all(|&w| self.burn_rate(w, now_s) >= threshold)
    }

    /// Publish one gauge per window (`label` values name the stream,
    /// e.g. `[("tenant","2"),("priority","critical")]`).
    pub fn publish(&self, reg: &Registry, name: &str, labels: &[(&str, &str)], now_s: f64) {
        for &w in &self.windows_s {
            let win = format!("{w:.0}s");
            let mut all: Vec<(&str, &str)> = labels.to_vec();
            all.push(("window", &win));
            reg.gauge(&series(name, &all)).set(self.burn_rate(w, now_s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let mut t = BurnTracker::with_windows(0.1, &[10.0]);
        for i in 0..100 {
            t.record(i as f64 * 0.05, i % 5 == 0); // 20% bad
        }
        let b = t.burn_rate(10.0, 5.0);
        assert!((b - 2.0).abs() < 1e-9, "{b}");
        assert_eq!(t.window_counts(10.0, 5.0), (100, 20));
    }

    #[test]
    fn empty_window_burns_zero() {
        let t = BurnTracker::new(0.01);
        assert_eq!(t.burn_rate(5.0, 100.0), 0.0);
        assert_eq!(t.max_burn(100.0), 0.0);
        assert!(!t.alerting(1.0, 100.0));
    }

    #[test]
    fn old_events_age_out_of_fast_window() {
        let mut t = BurnTracker::with_windows(0.1, &[5.0, 60.0]);
        // A burst of failures at t=0..1, then clean traffic.
        for i in 0..10 {
            t.record(i as f64 * 0.1, true);
        }
        for i in 0..100 {
            t.record(2.0 + i as f64 * 0.2, false);
        }
        let fast = t.burn_rate(5.0, 22.0);
        let slow = t.burn_rate(60.0, 22.0);
        assert_eq!(fast, 0.0, "burst left the 5s window");
        assert!(slow > 0.0, "burst still inside the 60s window");
        assert!(t.max_burn(22.0) >= slow);
    }

    #[test]
    fn multiwindow_alert_needs_both_windows() {
        let mut t = BurnTracker::with_windows(0.1, &[5.0, 60.0]);
        // Sustained 100% failure: both windows burn at 10x.
        for i in 0..200 {
            t.record(i as f64 * 0.25, true);
        }
        assert!(t.alerting(5.0, 50.0));
        // Quiet period: fast window empties, alert clears even though
        // the slow window still shows the damage.
        assert!(!t.alerting(5.0, 58.0));
        assert!(t.burn_rate(60.0, 58.0) > 0.0);
    }

    #[test]
    fn ring_laps_recycle_stale_buckets() {
        let mut t = BurnTracker::with_windows(0.5, &[1.0]);
        for lap in 0..5 {
            let base = lap as f64 * 100.0;
            for i in 0..10 {
                t.record(base + i as f64 * 0.1, lap % 2 == 0);
            }
            let expect = if lap % 2 == 0 { 2.0 } else { 0.0 };
            let b = t.burn_rate(1.0, base + 0.9);
            assert!((b - expect).abs() < 1e-9, "lap {lap}: {b}");
        }
    }

    #[test]
    fn publish_emits_one_gauge_per_window() {
        let mut t = BurnTracker::with_windows(0.1, &[5.0, 60.0]);
        t.record(1.0, true);
        let reg = Registry::new();
        t.publish(&reg, "slo_burn", &[("tenant", "0")], 1.0);
        let text = reg.snapshot().to_prometheus_text();
        assert!(
            text.contains("slo_burn{tenant=\"0\",window=\"5s\"}"),
            "{text}"
        );
        assert!(
            text.contains("slo_burn{tenant=\"0\",window=\"60s\"}"),
            "{text}"
        );
    }
}
