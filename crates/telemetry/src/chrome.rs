//! Chrome Trace Event Format writer (the JSON Perfetto and
//! `chrome://tracing` ingest). Usable standalone so captures with a
//! different timebase — e.g. the cycle-accurate systolic waveform in
//! `bfp_pu::trace` — can be merged into the same timeline as the
//! software spans.
//!
//! Only the subset of the format we emit is supported: complete events
//! (`"ph":"X"`), thread-scoped instants (`"ph":"i"`), counters
//! (`"ph":"C"`), and process/thread-name metadata (`"ph":"M"`).
//! Timestamps and durations are in microseconds, per the spec.

use std::fmt::Write as _;

use crate::json;

/// Incremental builder for a Chrome Trace Event JSON document.
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

impl ChromeTraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_common(out: &mut String, name: &str, cat: &str, ph: char, ts_us: f64, pid: u64, tid: u64) {
        out.push_str("{\"name\": ");
        json::write_str(out, name);
        out.push_str(", \"cat\": ");
        json::write_str(out, cat);
        let _ = write!(out, ", \"ph\": \"{ph}\", \"ts\": ");
        json::write_f64(out, ts_us);
        let _ = write!(out, ", \"pid\": {pid}, \"tid\": {tid}");
    }

    fn push_args(out: &mut String, args: &[(&'static str, u64)]) {
        if args.is_empty() {
            return;
        }
        out.push_str(", \"args\": {");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {v}", json::string(k));
        }
        out.push('}');
    }

    /// A completed interval (`"ph":"X"`).
    // One flat call per Chrome-trace field beats a builder struct for
    // the exporter's only callers (the two trace modules).
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        pid: u64,
        tid: u64,
        args: &[(&'static str, u64)],
    ) {
        let mut e = String::new();
        Self::push_common(&mut e, name, cat, 'X', ts_us, pid, tid);
        e.push_str(", \"dur\": ");
        json::write_f64(&mut e, dur_us.max(0.001)); // zero-width slices vanish in Perfetto
        Self::push_args(&mut e, args);
        e.push('}');
        self.events.push(e);
    }

    /// A thread-scoped instant marker (`"ph":"i"`, `"s":"t"`).
    pub fn instant(
        &mut self,
        name: &str,
        cat: &str,
        ts_us: f64,
        pid: u64,
        tid: u64,
        args: &[(&'static str, u64)],
    ) {
        let mut e = String::new();
        Self::push_common(&mut e, name, cat, 'i', ts_us, pid, tid);
        e.push_str(", \"s\": \"t\"");
        Self::push_args(&mut e, args);
        e.push('}');
        self.events.push(e);
    }

    /// A counter sample (`"ph":"C"`); each name gets its own track.
    pub fn counter(&mut self, name: &str, cat: &str, ts_us: f64, pid: u64, value: f64) {
        let mut e = String::new();
        Self::push_common(&mut e, name, cat, 'C', ts_us, pid, 0);
        e.push_str(", \"args\": {\"value\": ");
        json::write_f64(&mut e, value);
        e.push_str("}}");
        self.events.push(e);
    }

    /// Name a process in the timeline (`"ph":"M"`, `process_name`).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        let mut e = format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"args\": {{\"name\": "
        );
        json::write_str(&mut e, name);
        e.push_str("}}");
        self.events.push(e);
    }

    /// Name a thread in the timeline (`"ph":"M"`, `thread_name`).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let mut e = format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"name\": "
        );
        json::write_str(&mut e, name);
        e.push_str("}}");
        self.events.push(e);
    }

    /// Number of events queued so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been queued.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the full JSON document.
    pub fn finish(&self) -> String {
        let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_phases() {
        let mut b = ChromeTraceBuilder::new();
        b.process_name(1, "bfp");
        b.thread_name(1, 0, "main");
        b.complete("gemm", "engine", 10.0, 5.5, 1, 0, &[("macs", 1024)]);
        b.instant("fault", "faults", 12.0, 1, 0, &[]);
        b.counter("queue_depth", "serve", 13.0, 1, 4.0);
        assert_eq!(b.len(), 5);
        let json = b.finish();
        assert!(json.contains("\"displayTimeUnit\": \"ms\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 5.5"));
        assert!(json.contains("\"macs\": 1024"));
        assert!(json.contains("\"s\": \"t\""));
        assert!(json.contains("\"value\": 4"));
        assert!(json.contains("\"process_name\""));
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let b = ChromeTraceBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.finish(), "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n]\n}\n");
    }

    #[test]
    fn escapes_names() {
        let mut b = ChromeTraceBuilder::new();
        b.instant("with \"quote\"", "t", 0.0, 1, 0, &[]);
        assert!(b.finish().contains("with \\\"quote\\\""));
    }
}
