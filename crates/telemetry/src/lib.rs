//! # bfp-telemetry — the observability substrate of the stack
//!
//! Every layer of the reproduction produces numbers about itself: the
//! engine times its phases, the serving runtime counts admissions and
//! deadline misses, the fault layer tallies injections. This crate is
//! the one vocabulary they all publish through, so a single snapshot —
//! or a single Perfetto timeline — covers the whole system.
//!
//! Three pieces:
//!
//! * [`Registry`] — a metrics registry with typed handles. Handle
//!   *creation* takes a short-lived lock; *recording* through a handle
//!   is lock-free (relaxed atomics), so hot paths pay one atomic RMW
//!   per observation. Three instrument kinds: monotonic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket log2 [`Histogram`]s. Snapshots render
//!   as Prometheus-style text or JSON.
//! * [`Tracer`] / [`SpanGuard`] — a span/event tracing core with no
//!   external dependency (the workspace is offline-vendored, so the
//!   `tracing` ecosystem is out of reach by design). Each thread
//!   records into its own buffer; spans carry causally-linked parent
//!   ids from a per-thread stack. [`Tracer::chrome_json`] exports the
//!   whole capture as Chrome Trace Event JSON that opens directly in
//!   `ui.perfetto.dev` (or `chrome://tracing`).
//! * [`chrome::ChromeTraceBuilder`] — the low-level Trace Event writer,
//!   also usable standalone so *other* timebases (e.g. the cycle-level
//!   systolic waveform in `bfp_pu::trace`) can land in the same
//!   timeline as the software spans.
//!
//! On top of those sit three serve-time observatory modules:
//! [`drift`] (predicted-vs-measured plan attribution with a calibrated
//! cycles-per-second factor), [`slo`] (multi-window burn-rate tracking
//! per tenant/priority stream), and [`recorder`] (a bounded
//! non-blocking flight recorder that dumps recent request timelines as
//! JSON + Perfetto trace when a trigger fires).
//!
//! The crate is dependency-free and always safe to link. Hot-path
//! *instrumentation sites* in the rest of the workspace are gated
//! behind their crates' `telemetry` cargo features and compile away
//! entirely when disabled; the types here (and the cold-path
//! `publish`/snapshot methods built on them) are available
//! unconditionally.
//!
//! ## Quickstart
//!
//! ```
//! use bfp_telemetry::{Registry, Tracer};
//!
//! let reg = Registry::new();
//! let served = reg.counter("requests_served_total");
//! served.inc();
//! let lat = reg.histogram("request_ns");
//! lat.record(1_200_000);
//! assert!(reg.snapshot().to_prometheus_text().contains("requests_served_total 1"));
//!
//! let tracer = Tracer::new();
//! {
//!     let _req = tracer.span("request", "serve");
//!     let _gemm = tracer.span("gemm", "engine"); // child of `request`
//! }
//! let json = tracer.chrome_json(); // open in ui.perfetto.dev
//! assert!(json.contains("\"traceEvents\""));
//! ```

pub mod chrome;
pub mod drift;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod slo;
pub mod trace;

pub use chrome::ChromeTraceBuilder;
pub use drift::{NodeDrift, NodeSample, PlanDriftReport};
pub use recorder::{
    FlightAttempt, FlightDump, FlightRecord, FlightRecorder, ShadowSample, TriggerReason,
};
pub use registry::{series, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use report::{fmt_si, Table};
pub use slo::BurnTracker;
pub use trace::{EventKind, SpanGuard, TraceEvent, Tracer};
