//! Plain-text table rendering for the reproduction binaries: every table
//! and figure of the paper is printed in the same row/column shape it has
//! in print, so outputs can be compared side by side.

use std::fmt::Write as _;

/// A simple right-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "cell count must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let line: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let _ = writeln!(out, "{line}");
        let hdr: Vec<String> = (0..cols)
            .map(|c| format!(" {:>width$} ", self.headers[c], width = widths[c]))
            .collect();
        let _ = writeln!(out, "{}", hdr.join("|"));
        let _ = writeln!(out, "{line}");
        for row in &self.rows {
            let cells: Vec<String> = (0..cols)
                .map(|c| format!(" {:>width$} ", row[c], width = widths[c]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("|"));
        }
        let _ = writeln!(out, "{line}");
        out
    }
}

/// Format a float with engineering-style precision for table cells.
pub fn fmt_si(v: f64) -> String {
    let a = v.abs();
    if a >= 1e12 {
        format!("{:.3}T", v / 1e12)
    } else if a >= 1e9 {
        format!("{:.3}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.3}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.3}k", v / 1e3)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row_str(&["a", "1"]).row_str(&["longer-name", "123456"]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("longer-name"));
        // All data lines have the same width.
        let widths: Vec<usize> = s
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.len())
            .collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn row_width_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn si_formatting() {
        assert_eq!(fmt_si(2.052e12), "2.052T");
        assert_eq!(fmt_si(2465.0e6), "2.465G");
        assert_eq!(fmt_si(6.383e6), "6.383M");
        assert_eq!(fmt_si(57.5), "57.500");
        assert_eq!(fmt_si(1500.0), "1.500k");
    }

    #[test]
    fn si_formatting_handles_negatives_and_zero() {
        assert_eq!(fmt_si(0.0), "0.000");
        assert_eq!(fmt_si(-2.052e12), "-2.052T");
        assert_eq!(fmt_si(-6.383e6), "-6.383M");
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new("", &["a"]);
        assert!(t.is_empty());
        t.row_str(&["x"]);
        assert_eq!(t.len(), 1);
    }
}
