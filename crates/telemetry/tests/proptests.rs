//! Property tests for the telemetry substrate: histogram accounting
//! under concurrent recording, and span nesting in exported traces.

use bfp_telemetry::{registry::bucket_of, EventKind, Histogram, Registry, Tracer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bucket counts sum to the observation count (and the sum matches)
    /// after N threads record concurrently into one histogram.
    #[test]
    fn histogram_concurrent_accounting(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..40),
            1..6,
        ),
    ) {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for chunk in &per_thread {
                let h = &h;
                s.spawn(move || {
                    for &v in chunk {
                        h.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        let total: u64 = per_thread.iter().map(|c| c.len() as u64).sum();
        let expect_sum: u64 = per_thread
            .iter()
            .flatten()
            .fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(snap.count, total);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), total);
        prop_assert_eq!(snap.sum, expect_sum);
        // Each value landed in its own bucket.
        for &v in per_thread.iter().flatten() {
            prop_assert!(snap.buckets[bucket_of(v)] > 0);
        }
    }

    /// Exported spans nest: every child's interval lies fully inside
    /// its parent's, on the same thread, for arbitrary open/close
    /// sequences (depth follows a random walk).
    #[test]
    fn span_intervals_nest(walk in proptest::collection::vec(any::<bool>(), 1..60)) {
        let t = Tracer::new();
        {
            let mut open = Vec::new();
            for &push in &walk {
                if push {
                    open.push(t.span(format!("s{}", open.len()), "test"));
                } else {
                    open.pop(); // drop closes the innermost span
                }
            }
            while open.pop().is_some() {} // close innermost-first
        }
        let events = t.drain();
        for ev in &events {
            let EventKind::Span { dur_ns } = ev.kind else { continue };
            let Some(pid) = ev.parent else { continue };
            let parent = events
                .iter()
                .find(|p| p.id == pid)
                .expect("parent span must be exported");
            let EventKind::Span { dur_ns: pdur } = parent.kind else {
                panic!("parent must be a span");
            };
            prop_assert_eq!(ev.tid, parent.tid);
            prop_assert!(ev.ts_ns >= parent.ts_ns);
            prop_assert!(ev.ts_ns + dur_ns <= parent.ts_ns + pdur);
        }
    }

    /// Counter handles are linearizable enough: concurrent increments
    /// from N threads all land.
    #[test]
    fn counter_concurrent_increments(threads in 1usize..6, per in 1u64..500) {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = reg.counter("events_total");
                s.spawn(move || {
                    for _ in 0..per {
                        c.inc();
                    }
                });
            }
        });
        prop_assert_eq!(reg.counter("events_total").get(), threads as u64 * per);
    }
}

/// Spans recorded from multiple threads export with per-thread tids and
/// still nest within each thread.
#[test]
fn multi_thread_spans_nest_per_thread() {
    let t = Tracer::new();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let _outer = t.span("outer", "test");
                for _ in 0..3 {
                    let _inner = t.span("inner", "test");
                }
            });
        }
    });
    let events = t.drain();
    assert_eq!(events.len(), 16);
    for ev in events.iter().filter(|e| e.name == "inner") {
        let parent = events
            .iter()
            .find(|p| Some(p.id) == ev.parent)
            .expect("inner span has exported parent");
        assert_eq!(parent.name, "outer");
        assert_eq!(parent.tid, ev.tid);
    }
}
