//! # bfp-dsp48 — behavioural model of the AMD DSP48E2 slice
//!
//! The paper's processing element (PE) is built around one DSP48E2 block
//! (UG579): a 27-bit pre-adder, a 27×18 signed multiplier, and a 48-bit ALU
//! with a dedicated cascade path (`PCIN`/`PCOUT`) that daisy-chains the
//! slices of a column. This crate models exactly the subset of the slice the
//! accelerator uses, with two goals:
//!
//! 1. **Bit-exactness** — every mode (plain MAC, cascaded partial-product
//!    accumulation for the sliced fp32 multiply, and the *combined MAC*
//!    packing that fits two int8 MACs into one multiplier) produces the same
//!    integers real hardware would.
//! 2. **Cycle-steppable** — the slice has an explicit `P` register and a
//!    `step` function so the systolic simulator in `bfp-pu` can advance a
//!    whole array one clock at a time.
//!
//! The combined-MAC packing (§II-B of the paper, AMD WP486 technique) is in
//! [`packed`]; the cascaded column used by both bfp8 MatMul and fp32
//! partial-product summation is in [`cascade`].

pub mod cascade;
pub mod packed;
pub mod slice;

pub use cascade::DspColumn;
pub use packed::{PackedMac, MAX_SAFE_TERMS};
pub use slice::{Dsp48, ZMux};
