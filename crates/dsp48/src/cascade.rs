//! The dedicated `PCIN`/`PCOUT` cascade: a column of DSP48E2 slices whose
//! accumulators chain downward without touching the FPGA fabric.
//!
//! This is the topology both operating modes of the paper's PE array use:
//!
//! * in **fp32 multiply** mode each of the 8 rows computes one pre-shifted
//!   partial product and the cascade sums them on the way down (Fig. 5 b);
//! * in **bfp8 MatMul** mode the cascade carries the running column partial
//!   sum while X operands flow horizontally.
//!
//! The cascade is pipelined: slice `r` sees slice `r-1`'s *registered* `P`
//! from the previous cycle, so a value injected at the top reaches the
//! bottom of an `n`-deep column after `n` cycles. The simulator in `bfp-pu`
//! relies on exactly this latency; the tests here pin it down.

use crate::slice::{Dsp48, ZMux};

/// A vertical chain of DSP slices connected `PCOUT -> PCIN`.
#[derive(Debug, Clone)]
pub struct DspColumn {
    slices: Vec<Dsp48>,
}

/// Per-slice input for one clock: the pre-adder pair `(a, d)` and the `b`
/// operand.
#[derive(Debug, Clone, Copy, Default)]
pub struct ColumnInput {
    /// `A` port contribution to the pre-adder (already shifted if packing).
    pub a: i64,
    /// `D` port contribution to the pre-adder.
    pub d: i64,
    /// `B` port (multiplier second operand).
    pub b: i64,
}

impl DspColumn {
    /// A column of `depth` slices (8 in the paper's array).
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "column depth must be positive");
        DspColumn {
            slices: vec![Dsp48::new(); depth],
        }
    }

    /// Number of slices.
    pub fn depth(&self) -> usize {
        self.slices.len()
    }

    /// Advance one clock. `inputs[r]` drives slice `r` (row 0 is the top of
    /// the cascade). Each slice adds its product to the *previous-cycle*
    /// `PCOUT` of the slice above; the top slice starts fresh (Z = 0).
    ///
    /// Returns the new bottom-of-column `P`.
    ///
    /// # Panics
    /// Panics if `inputs.len() != depth`.
    pub fn step(&mut self, inputs: &[ColumnInput]) -> i64 {
        assert_eq!(inputs.len(), self.slices.len(), "one input per slice");
        // Capture last cycle's PCOUTs before any slice updates.
        let pcouts: Vec<i64> = self.slices.iter().map(|s| s.p()).collect();
        for (r, (slice, inp)) in self.slices.iter_mut().zip(inputs).enumerate() {
            let (pcin, z) = if r == 0 {
                (0, ZMux::Zero)
            } else {
                (pcouts[r - 1], ZMux::Pcin)
            };
            // Fault model: a broken PCIN route drops the incoming
            // cascade partial for this slice.
            #[cfg(feature = "faults")]
            let pcin = bfp_faults::hook::cascade_pcin(r, pcin);
            slice.step(inp.a, inp.d, inp.b, 0, pcin, z);
        }
        self.bottom()
    }

    /// The bottom slice's `P` (the column's result port).
    pub fn bottom(&self) -> i64 {
        self.slices.last().expect("non-empty column").p()
    }

    /// `P` of an individual slice (top = 0).
    pub fn p_at(&self, row: usize) -> i64 {
        self.slices[row].p()
    }

    /// Reset every slice.
    pub fn reset(&mut self) {
        for s in &mut self.slices {
            s.reset();
        }
    }

    /// Drive a *stationary* set of per-row products through the pipeline
    /// until the first complete sum appears at the bottom (`depth` cycles),
    /// and return it. This is the "fill the triangle" latency the paper's
    /// Eqn. 9 charges as part of the 15 preload cycles.
    pub fn settle(&mut self, inputs: &[ColumnInput]) -> i64 {
        let mut out = 0;
        for _ in 0..self.depth() {
            out = self.step(inputs);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(pairs: &[(i64, i64)]) -> Vec<ColumnInput> {
        pairs
            .iter()
            .map(|&(a, b)| ColumnInput { a, d: 0, b })
            .collect()
    }

    #[test]
    fn settled_column_sums_products() {
        let mut col = DspColumn::new(8);
        let ins = inputs(&[
            (1, 2),
            (3, 4),
            (5, 6),
            (7, 8),
            (9, 10),
            (11, 12),
            (13, 14),
            (15, 16),
        ]);
        let want: i64 = ins.iter().map(|i| i.a * i.b).sum();
        assert_eq!(col.settle(&ins), want);
    }

    #[test]
    fn latency_is_depth_cycles() {
        let mut col = DspColumn::new(4);
        let ins = inputs(&[(1, 1), (1, 1), (1, 1), (1, 1)]);
        // After k steps the bottom has accumulated products from the k
        // nearest rows of the wavefront.
        assert_eq!(col.step(&ins), 1);
        assert_eq!(col.step(&ins), 2);
        assert_eq!(col.step(&ins), 3);
        assert_eq!(col.step(&ins), 4); // first complete sum
        assert_eq!(col.step(&ins), 4); // steady state
    }

    /// The hardware's pre-shift scheme (§II-D): shifts are applied relative
    /// to the smallest *retained* term (shift 8), so the maximum pre-shift
    /// is 24 bits — "the 27-bit & 18-bit input widths of DSP48E2 support
    /// such pre-shifting without encountering overflow". The split gives the
    /// 18-bit B port at most 9 bits (8-bit slice + 9 = 17 ≤ 17 magnitude
    /// bits) and the rest to the 27-bit A/D side.
    fn split_relative_shift(total_shift: u32) -> (u32, u32) {
        let rel = total_shift - 8; // relative to the smallest retained term
        let sb = (rel / 2).min(9); // even split, capped by the B port
        (rel - sb, sb)
    }

    #[test]
    fn pre_shifted_partial_products_reconstruct_fp32_mantissa_product() {
        // The fp32 layout of Fig. 5(b): 8 rows carry slice products with
        // pre-shifts, and the cascade must reproduce the wide integer
        // product (minus the dropped LSP), scaled down by the common 2^8.
        let man_x: u64 = 0xA5_73_1F; // 24-bit mantissa
        let man_y: u64 = 0xC0_00_01;
        let xs = [man_x & 0xff, (man_x >> 8) & 0xff, (man_x >> 16) & 0xff];
        let ys = [man_y & 0xff, (man_y >> 8) & 0xff, (man_y >> 16) & 0xff];
        // The 8 retained (i, j) terms, one per row.
        let terms = [
            (0, 1),
            (1, 0),
            (0, 2),
            (1, 1),
            (2, 0),
            (1, 2),
            (2, 1),
            (2, 2),
        ];
        let mut ins = Vec::new();
        let mut want_rel = 0i64; // product scaled by 2^-8
        for &(i, j) in &terms {
            let total_shift = 8 * (i + j) as u32;
            let (sa, sb) = split_relative_shift(total_shift);
            ins.push(ColumnInput {
                a: (xs[i] << sa) as i64,
                d: 0,
                b: (ys[j] << sb) as i64,
            });
            want_rel += ((xs[i] * ys[j]) as i64) << (total_shift - 8);
        }
        let mut col = DspColumn::new(8);
        assert_eq!(col.settle(&ins), want_rel);
        // Scaled back up and with the dropped (0,0) term restored, the
        // cascade output is exactly the 48-bit mantissa product.
        assert_eq!(
            (want_rel << 8) + (xs[0] * ys[0]) as i64,
            (man_x * man_y) as i64
        );
    }

    #[test]
    fn shift_split_fits_port_widths() {
        for total_shift in [8u32, 16, 24, 32] {
            let (sa, sb) = split_relative_shift(total_shift);
            assert_eq!(sa + sb + 8, total_shift);
            assert!(8 + sa <= 26, "A/D magnitude bits: {}", 8 + sa);
            assert!(8 + sb <= 17, "B magnitude bits: {}", 8 + sb);
        }
        // The paper's example: the shift-8 terms split 4 + 4 ("all PEs in
        // row 1 left-shift the input X slice and Y slice by 4 bits").
        assert_eq!(split_relative_shift(16), (4, 4));
    }

    #[test]
    fn reset_clears_pipeline() {
        let mut col = DspColumn::new(3);
        col.settle(&inputs(&[(2, 2), (2, 2), (2, 2)]));
        col.reset();
        assert_eq!(col.bottom(), 0);
        for r in 0..3 {
            assert_eq!(col.p_at(r), 0);
        }
    }

    #[test]
    #[should_panic(expected = "one input per slice")]
    fn wrong_input_count_panics() {
        let mut col = DspColumn::new(4);
        col.step(&inputs(&[(1, 1)]));
    }
}
