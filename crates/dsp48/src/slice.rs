//! The DSP48E2 slice: pre-adder, 27×18 multiplier, 48-bit ALU, P register.
//!
//! Port widths follow UG579: `A` is 30 bits (27 used ahead of the
//! pre-adder), `B` 18 bits, `D` 27 bits, `C`/`P`/`PCIN` 48 bits. All
//! arithmetic wraps modulo 2^width exactly like the silicon; the *users* of
//! the slice (quantizer clamps, 8-row column depth) are responsible for
//! keeping values in range, and the tests in `bfp-pu` verify they do.

/// Bit widths of the modelled ports.
pub mod widths {
    /// Pre-adder / `D` port / multiplier X input width.
    pub const AD: u32 = 27;
    /// Multiplier Y input (`B` port) width.
    pub const B: u32 = 18;
    /// Accumulator / `C` / `P` / cascade width.
    pub const P: u32 = 48;
}

/// Sign-extend the low `bits` of `v`.
#[inline]
pub fn sext(v: i64, bits: u32) -> i64 {
    let s = 64 - bits;
    (v << s) >> s
}

/// Truncate `v` to `bits` (two's-complement wrap), returning the
/// sign-extended result — the silicon's behaviour on overflow.
#[inline]
pub fn wrap(v: i64, bits: u32) -> i64 {
    sext(v, bits)
}

/// Z-multiplexer selection: what the ALU adds to the product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZMux {
    /// Z = 0 (start of a fresh accumulation).
    #[default]
    Zero,
    /// Z = C port (bias / externally supplied partial sum).
    C,
    /// Z = P (self-accumulate).
    P,
    /// Z = PCIN (cascade input from the neighbouring slice).
    Pcin,
}

/// One DSP48E2 slice with an explicit `P` register.
#[derive(Debug, Clone, Default)]
pub struct Dsp48 {
    /// Accumulator / output register (48-bit, sign-extended into i64).
    p: i64,
}

impl Dsp48 {
    /// A slice with `P = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current `P` register (also drives `PCOUT`).
    #[inline]
    pub fn p(&self) -> i64 {
        self.p
    }

    /// Synchronous clear (the `RSTP` pin).
    pub fn reset(&mut self) {
        self.p = 0;
    }

    /// Combinational datapath: `(A27 + D) × B`, then the ALU adds the
    /// Z-mux selection. Returns the next `P` value without committing it.
    ///
    /// `a` and `d` are truncated to 27 bits, `b` to 18, inputs `c`/`pcin`
    /// and the result to 48 — silicon wrap semantics.
    pub fn eval(&self, a: i64, d: i64, b: i64, c: i64, pcin: i64, z: ZMux) -> i64 {
        let ad = wrap(wrap(a, widths::AD) + wrap(d, widths::AD), widths::AD);
        let m = ad * wrap(b, widths::B); // 27x18 -> 45 bits, exact in i64
        let zval = match z {
            ZMux::Zero => 0,
            ZMux::C => wrap(c, widths::P),
            ZMux::P => self.p,
            ZMux::Pcin => wrap(pcin, widths::P),
        };
        wrap(m + zval, widths::P)
    }

    /// Clock edge: evaluate and commit `P`.
    pub fn step(&mut self, a: i64, d: i64, b: i64, c: i64, pcin: i64, z: ZMux) -> i64 {
        self.p = self.eval(a, d, b, c, pcin, z);
        // Fault model: a bit upset in the P pipeline register lands at
        // the commit point, exactly where the silicon latches.
        #[cfg(feature = "faults")]
        {
            self.p = wrap(bfp_faults::hook::dsp_p_commit(self.p), widths::P);
        }
        self.p
    }

    /// Convenience: plain multiply-accumulate `P += a × b` (no pre-adder).
    pub fn mac(&mut self, a: i64, b: i64) -> i64 {
        self.step(a, 0, b, 0, 0, ZMux::P)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sext_and_wrap() {
        assert_eq!(sext(0xff, 8), -1);
        assert_eq!(sext(0x7f, 8), 127);
        assert_eq!(wrap(1 << 47, 48), -(1i64 << 47));
        assert_eq!(wrap((1 << 47) - 1, 48), (1i64 << 47) - 1);
    }

    #[test]
    fn simple_multiply() {
        let mut d = Dsp48::new();
        assert_eq!(d.step(123, 0, -45, 0, 0, ZMux::Zero), -5535);
    }

    #[test]
    fn pre_adder_feeds_multiplier() {
        let mut d = Dsp48::new();
        // (100 + 23) * 7 = 861
        assert_eq!(d.step(100, 23, 7, 0, 0, ZMux::Zero), 861);
    }

    #[test]
    fn self_accumulation() {
        let mut d = Dsp48::new();
        d.step(10, 0, 10, 0, 0, ZMux::Zero);
        d.step(10, 0, 10, 0, 0, ZMux::P);
        assert_eq!(d.step(10, 0, 10, 0, 0, ZMux::P), 300);
    }

    #[test]
    fn c_port_adds_bias() {
        let mut d = Dsp48::new();
        assert_eq!(d.step(6, 0, 7, 1000, 0, ZMux::C), 1042);
    }

    #[test]
    fn cascade_input_sums() {
        let mut d = Dsp48::new();
        assert_eq!(d.step(2, 0, 3, 0, 40, ZMux::Pcin), 46);
    }

    #[test]
    fn multiplier_input_truncation() {
        let mut d = Dsp48::new();
        // b is truncated to 18 bits: 2^17 wraps to -2^17.
        let p = d.step(1, 0, 1 << 17, 0, 0, ZMux::Zero);
        assert_eq!(p, -(1i64 << 17));
    }

    #[test]
    fn full_width_products_are_exact() {
        // Largest 27x18 magnitudes fit the 48-bit P without wrap.
        let mut d = Dsp48::new();
        let a = (1i64 << 26) - 1;
        let b = (1i64 << 17) - 1;
        assert_eq!(d.step(a, 0, b, 0, 0, ZMux::Zero), a * b);
    }

    #[test]
    fn p_wraps_at_48_bits() {
        let mut d = Dsp48::new();
        let big = (1i64 << 47) - 1;
        d.step(0, 0, 0, big, 0, ZMux::C);
        // Adding 1 via a 1x1 product wraps to the negative extreme.
        assert_eq!(d.step(1, 0, 1, 0, 0, ZMux::P), -(1i64 << 47));
    }

    #[test]
    fn reset_clears_p() {
        let mut d = Dsp48::new();
        d.mac(5, 5);
        d.reset();
        assert_eq!(d.p(), 0);
    }

    #[test]
    fn eval_does_not_commit() {
        let d = Dsp48::new();
        let v = d.eval(3, 0, 3, 0, 0, ZMux::Zero);
        assert_eq!(v, 9);
        assert_eq!(d.p(), 0);
    }

    #[test]
    fn mac_accumulates_products() {
        let mut d = Dsp48::new();
        for k in 1..=10i64 {
            d.mac(k, k);
        }
        assert_eq!(d.p(), (1..=10i64).map(|k| k * k).sum::<i64>());
    }
}
