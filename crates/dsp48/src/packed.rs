//! Combined MAC: two int8 multiply-accumulates in one DSP48E2 (paper §II-B,
//! Fig. 3; the AMD WP486 "INT8 optimization" technique).
//!
//! The pre-adder forms `AD = (x1 << 18) + x2`, a 27-bit value holding two
//! int8 lanes. One multiply by the shared operand `y` then yields
//! `AD × y = (x1·y) << 18 + x2·y`, and successive products accumulate in the
//! 48-bit `P` register. Because the low lane `Σ x2·y` can be negative, its
//! sign bits *borrow from* the upper lane; extraction therefore re-splits
//! `P` by interpreting the low 18 bits as signed and compensating the upper
//! lane — exactly what the unpacking LUT logic after the array does.
//!
//! The low lane only holds a faithful sum while `|Σ x2·y| < 2^17`. With
//! mantissas clamped to the symmetric range `[-127, 127]`, eight products
//! reach at most `8·127² = 129 032 < 2^17`, which is the reason the paper's
//! quantizer clamps symmetrically and why an 8-row column is safe ("up to 7
//! product terms without overflow ... configuring the row numbers as 8, we
//! can cleverly circumvent such overflow").

use crate::slice::{sext, Dsp48, ZMux};

/// Number of accumulated `[-128, 127] × [-128, 127]` products guaranteed to
/// stay inside the low lane without the symmetric clamp. (With the clamp,
/// 8 terms fit; see module docs.)
pub const MAX_SAFE_TERMS: usize = 7;

/// Bit position of the upper lane inside the packed operand.
const LANE_SHIFT: u32 = 18;

/// Pack two int8 lanes into the 27-bit pre-adder output.
#[inline]
pub fn pack(x1: i8, x2: i8) -> i64 {
    ((x1 as i64) << LANE_SHIFT) + x2 as i64
}

/// Split an accumulated 48-bit `P` into the two lane sums.
///
/// The low 18 bits are interpreted as a signed value; whatever it borrowed
/// from bit 18 upward is given back to the upper lane.
#[inline]
pub fn unpack(p: i64) -> (i64, i64) {
    let low = sext(p & ((1 << LANE_SHIFT) - 1), LANE_SHIFT);
    let high = (p - low) >> LANE_SHIFT;
    (high, low)
}

/// A DSP slice driven in combined-MAC mode: accumulates pairs of int8
/// products sharing the `y` operand.
///
/// ```
/// use bfp_dsp48::packed::PackedMac;
///
/// let mut mac = PackedMac::new();
/// mac.mac(3, -5, 7);           // lanes: 3*7 and -5*7 in ONE multiply
/// mac.mac(2, 4, -1);
/// assert_eq!(mac.lanes(), (3 * 7 + 2 * -1, -5 * 7 + 4 * -1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PackedMac {
    dsp: Dsp48,
    terms: usize,
}

impl PackedMac {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate `x1·y` into the upper lane and `x2·y` into the lower lane.
    pub fn mac(&mut self, x1: i8, x2: i8, y: i8) {
        // Pre-adder path: A carries the shifted lane, D the low lane.
        let z = if self.terms == 0 { ZMux::Zero } else { ZMux::P };
        self.dsp
            .step((x1 as i64) << LANE_SHIFT, x2 as i64, y as i64, 0, 0, z);
        self.terms += 1;
    }

    /// Number of accumulated terms.
    pub fn terms(&self) -> usize {
        self.terms
    }

    /// Extract `(Σ x1·y, Σ x2·y)`.
    pub fn lanes(&self) -> (i64, i64) {
        unpack(self.dsp.p())
    }

    /// Raw 48-bit accumulator (for cascading into the column model).
    pub fn p(&self) -> i64 {
        self.dsp.p()
    }

    /// Restart a new accumulation.
    pub fn clear(&mut self) {
        self.dsp.reset();
        self.terms = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_places_lanes() {
        assert_eq!(pack(1, 0), 1 << 18);
        assert_eq!(pack(0, 1), 1);
        assert_eq!(pack(-1, 0), -(1i64 << 18));
        // Negative low lane borrows from the high lane in the raw encoding;
        // unpack must undo that.
        let (hi, lo) = unpack(pack(3, -2));
        assert_eq!((hi, lo), (3, -2));
    }

    #[test]
    fn single_product_pairs() {
        for &(x1, x2, y) in &[
            (1i8, 2i8, 3i8),
            (-5, 7, -9),
            (127, -127, 127),
            (-128, -128, 127),
        ] {
            let mut m = PackedMac::new();
            m.mac(x1, x2, y);
            let (hi, lo) = m.lanes();
            assert_eq!(hi, x1 as i64 * y as i64, "hi lane for ({x1},{x2},{y})");
            assert_eq!(lo, x2 as i64 * y as i64, "lo lane for ({x1},{x2},{y})");
        }
    }

    #[test]
    fn eight_symmetric_terms_are_exact() {
        // The paper's operating point: 8 accumulated terms with mantissas
        // clamped to ±127.
        let mut m = PackedMac::new();
        let mut want_hi = 0i64;
        let mut want_lo = 0i64;
        let xs1 = [127i8, -127, 127, -127, 127, -127, 127, -127];
        let xs2 = [-127i8; 8];
        let ys = [127i8, 127, -127, -127, 127, 127, -127, -127];
        for k in 0..8 {
            m.mac(xs1[k], xs2[k], ys[k]);
            want_hi += xs1[k] as i64 * ys[k] as i64;
            want_lo += xs2[k] as i64 * ys[k] as i64;
        }
        assert_eq!(m.lanes(), (want_hi, want_lo));
    }

    #[test]
    fn worst_case_symmetric_low_lane_still_recovers() {
        // 8 x (-127 * 127) = -129032, magnitude < 2^17: still faithful.
        let mut m = PackedMac::new();
        for _ in 0..8 {
            m.mac(0, -127, 127);
        }
        assert_eq!(m.lanes(), (0, -129032));
    }

    #[test]
    fn unclamped_corner_overflows_low_lane() {
        // 8 x (-128 * -128) = +131072 = 2^17: one past the lane range. The
        // extraction mis-attributes it — demonstrating exactly why the
        // quantizer clamps to ±127.
        let mut m = PackedMac::new();
        for _ in 0..8 {
            m.mac(0, -128, -128);
        }
        let (hi, lo) = m.lanes();
        assert_ne!(
            (hi, lo),
            (0, 131072),
            "2^17 cannot be represented in the lane"
        );
    }

    #[test]
    fn exhaustive_single_pair_sweep() {
        // Every (x1, x2) pair at a few y values recovers exactly.
        for y in [-128i8, -127, -1, 0, 1, 63, 127] {
            for x1 in (-128i16..=127).step_by(17) {
                for x2 in (-128i16..=127).step_by(13) {
                    let mut m = PackedMac::new();
                    m.mac(x1 as i8, x2 as i8, y);
                    let (hi, lo) = m.lanes();
                    assert_eq!(hi, x1 as i64 * y as i64);
                    assert_eq!(lo, x2 as i64 * y as i64);
                }
            }
        }
    }

    #[test]
    fn random_dot_products_match_reference() {
        let mut state = 0xace1u32;
        let mut r = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as i32 % 255 - 127).clamp(-127, 127) as i8
        };
        for _ in 0..2000 {
            let mut m = PackedMac::new();
            let mut w1 = 0i64;
            let mut w2 = 0i64;
            for _ in 0..8 {
                let (x1, x2, y) = (r(), r(), r());
                m.mac(x1, x2, y);
                w1 += x1 as i64 * y as i64;
                w2 += x2 as i64 * y as i64;
            }
            assert_eq!(m.lanes(), (w1, w2));
        }
    }

    #[test]
    fn clear_restarts() {
        let mut m = PackedMac::new();
        m.mac(1, 1, 1);
        m.clear();
        assert_eq!(m.terms(), 0);
        assert_eq!(m.lanes(), (0, 0));
    }
}
