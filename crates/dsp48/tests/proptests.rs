//! Property tests for the DSP48E2 model: packing exactness, cascade sums,
//! and silicon wrap semantics.

use bfp_dsp48::cascade::{ColumnInput, DspColumn};
use bfp_dsp48::packed::{pack, unpack, PackedMac};
use bfp_dsp48::slice::{sext, wrap, Dsp48, ZMux};
use proptest::prelude::*;

/// Mantissas as the quantizer emits them: symmetric ±127.
fn mant() -> impl Strategy<Value = i8> {
    (-127i8..=127).prop_map(|v| v)
}

proptest! {
    #[test]
    fn pack_unpack_roundtrip(x1 in any::<i8>(), x2 in any::<i8>()) {
        let (hi, lo) = unpack(pack(x1, x2));
        prop_assert_eq!((hi, lo), (x1 as i64, x2 as i64));
    }

    #[test]
    fn packed_mac_eight_terms_exact(
        xs1 in proptest::array::uniform8(mant()),
        xs2 in proptest::array::uniform8(mant()),
        ys in proptest::array::uniform8(mant()),
    ) {
        let mut m = PackedMac::new();
        let mut w1 = 0i64;
        let mut w2 = 0i64;
        for k in 0..8 {
            m.mac(xs1[k], xs2[k], ys[k]);
            w1 += xs1[k] as i64 * ys[k] as i64;
            w2 += xs2[k] as i64 * ys[k] as i64;
        }
        prop_assert_eq!(m.lanes(), (w1, w2));
    }

    #[test]
    fn wrap_matches_two_complement(v in any::<i64>(), bits in 1u32..63) {
        let w = wrap(v, bits);
        // Congruent modulo 2^bits and inside the signed range.
        prop_assert_eq!(w.wrapping_sub(v) % (1i64 << bits), 0);
        prop_assert!(w >= -(1i64 << (bits - 1)));
        prop_assert!(w < (1i64 << (bits - 1)));
    }

    #[test]
    fn sext_preserves_low_bits(v in any::<i64>(), bits in 1u32..63) {
        let s = sext(v, bits);
        let mask = (1i64 << bits) - 1;
        prop_assert_eq!(s & mask, v & mask);
    }

    #[test]
    fn slice_mac_accumulates_like_integer_math(
        pairs in proptest::collection::vec((-(1i64 << 20)..(1i64 << 20), -(1i64 << 15)..(1i64 << 15)), 1..20)
    ) {
        let mut d = Dsp48::new();
        let mut want = 0i64;
        for &(a, b) in &pairs {
            d.mac(a, b);
            want += a * b;
        }
        // Products stay far from the 48-bit edge, so no wrap occurs.
        prop_assert_eq!(d.p(), want);
    }

    #[test]
    fn cascade_settles_to_dot_product(
        pairs in proptest::collection::vec((-(1i64 << 12)..(1i64 << 12), -(1i64 << 12)..(1i64 << 12)), 1..12)
    ) {
        let mut col = DspColumn::new(pairs.len());
        let ins: Vec<ColumnInput> =
            pairs.iter().map(|&(a, b)| ColumnInput { a, d: 0, b }).collect();
        let want: i64 = pairs.iter().map(|&(a, b)| a * b).sum();
        prop_assert_eq!(col.settle(&ins), want);
    }

    #[test]
    fn cascade_is_deterministic_after_reset(
        pairs in proptest::collection::vec((-100i64..100, -100i64..100), 2..8)
    ) {
        let mut col = DspColumn::new(pairs.len());
        let ins: Vec<ColumnInput> =
            pairs.iter().map(|&(a, b)| ColumnInput { a, d: 0, b }).collect();
        let first = col.settle(&ins);
        col.reset();
        let second = col.settle(&ins);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn pre_adder_is_linear(a in -(1i64 << 20)..(1i64 << 20), d in -(1i64 << 20)..(1i64 << 20), b in -(1i64 << 15)..(1i64 << 15)) {
        let mut s1 = Dsp48::new();
        let with_pre = s1.step(a, d, b, 0, 0, ZMux::Zero);
        let mut s2 = Dsp48::new();
        let sum_first = s2.step(a + d, 0, b, 0, 0, ZMux::Zero);
        // a + d stays inside 27 bits for these ranges, so both are exact.
        prop_assert_eq!(with_pre, sum_first);
    }
}
