//! Property tests for the compiler, scheduler and vector-program layers.

use bfp_arith::matrix::MatF32;
use bfp_core::vprog::{compile_exp, compile_recip, compile_softmax, DivMode, VBuilder, VMachine};
use bfp_core::{compile_gemm, lower_vit, schedule};
use bfp_platform::{System, SystemConfig};
use bfp_pu::isa::Interpreter;
use bfp_pu::unit::ProcessingUnit;
use bfp_transformer::{VitConfig, Vpu};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compiled_gemm_equals_reference_for_integer_inputs(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0usize..50,
    ) {
        let a = MatF32::from_fn(m, k, |i, j| (((i * 3 + j * 7 + seed) % 15) as f32) - 7.0);
        let b = MatF32::from_fn(k, n, |i, j| (((i * 11 + j + seed) % 13) as f32) - 6.0);
        let c = compile_gemm(&a, &b);
        let mut env = c.env.clone();
        let res = Interpreter::new(ProcessingUnit::default()).run(&c.program, &mut env);
        prop_assert_eq!(c.assemble(&res.drained), a.matmul(&b));
    }

    #[test]
    fn schedule_invariants_hold_for_random_configs(
        dim_mult in 1usize..6,
        depth in 1usize..6,
        heads in 1usize..4,
        seq in 4usize..64,
        arrays in 1usize..16,
    ) {
        let cfg = VitConfig {
            dim: 16 * dim_mult * heads,
            depth,
            heads,
            mlp_ratio: 4,
            seq,
        };
        prop_assume!(cfg.validate().is_ok());
        let g = lower_vit(&cfg);
        prop_assert!(g.is_topological());
        let sys = System {
            cfg: SystemConfig { units: arrays, arrays_per_unit: 1 },
            ..System::paper()
        };
        let s = schedule(&g, &sys);
        prop_assert!(s.makespan_cycles > 0.0);
        prop_assert!(s.makespan_cycles <= s.serial_cycles + s.switch_cycles + 1e-6);
        prop_assert!(s.speedup() <= arrays as f64 + 1e-9);
        // Level cycle totals plus switches reconstruct the makespan.
        let level_sum: f64 = s.levels.iter().map(|l| l.cycles).sum();
        prop_assert!((level_sum + s.switch_cycles - s.makespan_cycles).abs() < 1e-6);
    }

    #[test]
    fn compiled_exp_matches_kernel_for_any_operands(
        xs in proptest::collection::vec(-80.0f32..80.0, 1..40)
    ) {
        let mut m = VMachine::new();
        let x = m.alloc(xs.clone());
        let mut b = VBuilder::new(m.regs.len());
        let out = compile_exp(&mut b, x);
        m.run(&b.prog);
        let mut vpu = Vpu::new();
        for (k, &xv) in xs.iter().enumerate() {
            // The compiled program has no range clamp; compare inside the
            // kernel's clamp window.
            if (-87.0..=88.0).contains(&xv) {
                prop_assert_eq!(m.regs[out][k].to_bits(), vpu.exp(xv).to_bits());
            }
        }
    }

    #[test]
    fn compiled_softmax_always_normalises(
        xs in proptest::collection::vec(-12.0f32..12.0, 2..50),
        onchip in any::<bool>(),
    ) {
        let mut m = VMachine::new();
        let x = m.alloc(xs.clone());
        let mut b = VBuilder::new(m.regs.len());
        let mode = if onchip { DivMode::OnChip } else { DivMode::Host };
        let out = compile_softmax(&mut b, x, mode);
        m.run(&b.prog);
        let sum: f64 = m.regs[out].iter().map(|&v| v as f64).sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        if onchip {
            prop_assert_eq!(m.vpu.count.host_div, 0);
        } else {
            prop_assert_eq!(m.vpu.count.host_div, xs.len() as u64);
        }
    }

    #[test]
    fn compiled_recip_accuracy(x in 0.01f32..1000.0) {
        let mut m = VMachine::new();
        let reg = m.alloc(vec![x]);
        let mut b = VBuilder::new(m.regs.len());
        let out = compile_recip(&mut b, reg, 3);
        m.run(&b.prog);
        let got = m.regs[out][0] as f64;
        let want = 1.0 / x as f64;
        prop_assert!(((got - want) / want).abs() < 3e-6, "recip({x}) = {got}");
    }
}
