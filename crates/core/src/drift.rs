//! Bridge from planner predictions to serve-time drift attribution.
//!
//! The planner ([`crate::planner`]) prices every lowered graph node in
//! modelled array cycles; [`bfp_transformer::MixedEngine`] (with node
//! timing enabled) measures every compiled-plan node in host seconds.
//! The two sides do not speak the same names: the graph is per-block
//! (`blk3.fc1`), the engine aggregates across blocks (`fc1`), and
//! fusion rewires both — a fused MLP front half executes as one
//! `fc1+gelu` kernel, and residual adds are billed inside the GEMM
//! drain that absorbed them. This module owns that mapping: it folds a
//! [`FusePlan`]'s per-node prices and an engine's measured
//! [`NodeTime`]s onto shared canonical keys and hands the joined
//! samples to [`PlanDriftReport`] for calibration and attribution.

use std::collections::BTreeMap;
use std::collections::HashMap;

use bfp_telemetry::drift::{NodeSample, PlanDriftReport};
use bfp_transformer::NodeTime;

use crate::planner::{FuseDecision, FuseKind, FusePlan, PlanNode};

/// Canonical drift key for one planned node: the per-block prefix is
/// stripped (predictions aggregate across blocks, exactly as the
/// engine's measurements do), residual adds fold into the GEMM that
/// executes them (`res1` → `wo`, `res2` → `fc2`), and an MLP front
/// half fused at the drain prices as the engine's single `fc1+gelu`
/// kernel.
pub fn canonical_node_key(node: &PlanNode) -> String {
    let name = node.name.as_str();
    let local = match name.split_once('.') {
        Some((head, rest)) if head.starts_with("blk") => rest,
        _ => name,
    };
    let fused_gelu = matches!(
        node.decision,
        FuseDecision::FusedGemm(FuseKind::BiasGelu | FuseKind::BiasGeluRequant)
    );
    match local {
        "res1" => "wo".to_string(),
        "res2" => "fc2".to_string(),
        "fc1" if fused_gelu => "fc1+gelu".to_string(),
        // A gelu absorbed into a GEMM drain executes inside the fused
        // fc1 kernel; its (zero-cycle) price lands on the same key.
        "gelu" if matches!(node.decision, FuseDecision::FusedInto(_)) => "fc1+gelu".to_string(),
        other => other.to_string(),
    }
}

/// Join a plan's predicted cycles with an engine's measured node times
/// onto canonical keys, returning the samples for
/// [`PlanDriftReport::new`]. Predictions sum across blocks; the
/// `measured` map (from [`MixedEngine::take_node_times`]) is already
/// block-aggregated because the engine emits per-block node names
/// without the `blk` prefix.
///
/// [`MixedEngine::take_node_times`]: bfp_transformer::MixedEngine::take_node_times
pub fn drift_samples(plan: &FusePlan, measured: &HashMap<String, NodeTime>) -> Vec<NodeSample> {
    // BTreeMap keeps sample (and report) order deterministic.
    let mut by_key: BTreeMap<String, NodeSample> = BTreeMap::new();
    for node in &plan.nodes {
        let key = canonical_node_key(node);
        let s = by_key.entry(key.clone()).or_insert_with(|| NodeSample {
            name: key,
            ..NodeSample::default()
        });
        s.predicted_cycles += node.cycles;
        s.pack_cycles += node.pack_cycles;
    }
    for (name, t) in measured {
        let s = by_key.entry(name.clone()).or_insert_with(|| NodeSample {
            name: name.clone(),
            ..NodeSample::default()
        });
        s.measured_s += t.seconds;
        s.samples += t.samples;
    }
    by_key.into_values().collect()
}

/// Attribute predicted-vs-measured drift for one plan: the calibrated
/// cycles-per-second factor, per-node drift ratios, and coverage gaps.
pub fn attribute_plan_drift(
    plan: &FusePlan,
    measured: &HashMap<String, NodeTime>,
) -> PlanDriftReport {
    PlanDriftReport::new(drift_samples(plan, measured))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::lower_vit;
    use crate::planner::plan_fusion;
    use bfp_platform::System;
    use bfp_transformer::VitConfig;

    fn deit_plan() -> FusePlan {
        plan_fusion(&lower_vit(&VitConfig::deit_small()), &System::paper())
    }

    #[test]
    fn canonical_keys_strip_blocks_and_follow_fusion() {
        let plan = deit_plan();
        let keys: Vec<String> = plan.nodes.iter().map(canonical_node_key).collect();
        assert!(keys.iter().any(|k| k == "ln1"));
        assert!(keys.iter().any(|k| k == "wq"));
        assert!(keys.iter().any(|k| k == "h0.softmax"));
        // The paper plan fuses the MLP front half and both residuals.
        assert!(keys.iter().any(|k| k == "fc1+gelu"));
        assert!(!keys.iter().any(|k| k == "gelu"));
        assert!(!keys.iter().any(|k| k == "res1"));
        assert!(!keys.iter().any(|k| k == "res2"));
        // No per-block keys survive.
        assert!(!keys.iter().any(|k| k.starts_with("blk")));
    }

    #[test]
    fn predictions_aggregate_across_blocks() {
        let plan = deit_plan();
        let depth = VitConfig::deit_small().depth as f64;
        let samples = drift_samples(&plan, &HashMap::new());
        let ln1 = samples.iter().find(|s| s.name == "ln1").unwrap();
        let per_block: f64 = plan
            .nodes
            .iter()
            .filter(|n| n.name == "blk0.ln1")
            .map(|n| n.cycles + n.pack_cycles)
            .sum();
        assert!(per_block > 0.0);
        assert!((ln1.total_cycles() - per_block * depth).abs() < 1e-6 * per_block * depth);
        assert_eq!(ln1.measured_s, 0.0);
    }

    #[test]
    fn measured_times_join_on_canonical_keys() {
        let plan = deit_plan();
        let mut measured = HashMap::new();
        for key in ["ln1", "wq", "fc1+gelu", "fc2"] {
            measured.insert(
                key.to_string(),
                NodeTime {
                    seconds: 0.010,
                    samples: 4,
                },
            );
        }
        // A key the planner never priced.
        measured.insert(
            "mystery".to_string(),
            NodeTime {
                seconds: 0.001,
                samples: 1,
            },
        );
        let report = attribute_plan_drift(&plan, &measured);
        assert!(report.calibration_hz > 0.0);
        assert_eq!(report.nodes.len(), 4);
        assert_eq!(report.unpriced, vec!["mystery".to_string()]);
        // Everything priced but unmeasured is reported, not dropped.
        assert!(report.unmeasured.iter().any(|n| n == "h0.softmax"));
        // Equal measured time on unequal prices: the cheap node drifts
        // high, the expensive one low, and weighted mean stays 1.
        let total: f64 = report.nodes.iter().map(|n| n.sample.total_cycles()).sum();
        let mean: f64 = report
            .nodes
            .iter()
            .map(|n| n.drift_ratio * n.sample.total_cycles())
            .sum::<f64>()
            / total;
        assert!((mean - 1.0).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn proportional_measurements_attribute_cleanly() {
        // Measured seconds exactly proportional to predicted cycles →
        // every node drifts at 1.0 under any calibration.
        let plan = deit_plan();
        let samples = drift_samples(&plan, &HashMap::new());
        let mut measured = HashMap::new();
        for s in &samples {
            if s.total_cycles() > 0.0 {
                measured.insert(
                    s.name.clone(),
                    NodeTime {
                        seconds: s.total_cycles() * 1e-9,
                        samples: 1,
                    },
                );
            }
        }
        let report = attribute_plan_drift(&plan, &measured);
        assert!((report.calibration_hz - 1e9).abs() < 1.0);
        assert!(report.max_abs_log2_drift() < 1e-9);
        assert_eq!(report.fraction_within(1.01), 1.0);
        assert!(report.unpriced.is_empty());
    }
}
