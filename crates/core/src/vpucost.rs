//! Bridge between the live VPU op census (`bfp_transformer::OpCount`)
//! and the platform's nonlinear-unit pricing (`bfp_platform::nonlinear`),
//! plus the cycle cross-check tying the two together.
//!
//! The transformer crate counts what the simulated kernels *did*; the
//! platform crate prices what a hardware op mix *costs*. This module is
//! the only place the two vocabularies meet: [`op_mix`] converts field
//! for field, and [`nonlinear_cycles`] prices a whole census the way the
//! latency model prices GEMMs. The tests pin the invariant that makes
//! the telemetry counters trustworthy: pricing the *analytical* census
//! equals pricing the *measured* one, in both nonlinear modes.

use bfp_platform::nonlinear::{NonlinearUnit, VpuOpMix};
use bfp_transformer::{OpCensus, OpCount};

/// Convert a live VPU op count into the platform's pricing vocabulary.
pub fn op_mix(count: &OpCount) -> VpuOpMix {
    VpuOpMix {
        fp_mul: count.fp_mul,
        fp_add: count.fp_add,
        exp_adjust: count.exp_adjust,
        cmp: count.cmp,
        lut: count.lut,
        host_div: count.host_div,
        host_sqrt: count.host_sqrt,
    }
}

/// Total nonlinear-unit cycles to drain a census's softmax + GELU +
/// LayerNorm work on `unit`. The three kinds run back to back (they are
/// separated by GEMMs in the model graph, so their pipelines cannot
/// overlap each other).
pub fn nonlinear_cycles(unit: &NonlinearUnit, census: &OpCensus) -> f64 {
    unit.cycles(&op_mix(&census.softmax))
        + unit.cycles(&op_mix(&census.gelu))
        + unit.cycles(&op_mix(&census.layernorm))
}

/// Wall-clock seconds for [`nonlinear_cycles`] at the unit's clock.
pub fn nonlinear_latency_s(unit: &NonlinearUnit, census: &OpCensus) -> f64 {
    nonlinear_cycles(unit, census) / unit.freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_transformer::{
        analytical_census_mode, MixedEngine, NonlinearMode, VitConfig, VitModel,
    };

    fn live_census(mode: NonlinearMode) -> OpCensus {
        let cfg = VitConfig::tiny_test();
        let model = VitModel::new_random(cfg, 3);
        let x = model.synthetic_input(4);
        let mut e = MixedEngine::new().with_nonlinear(mode);
        let _ = model.forward(&mut e, &x);
        e.census()
    }

    #[test]
    fn conversion_is_field_for_field() {
        let c = OpCount {
            fp_mul: 1,
            fp_add: 2,
            exp_adjust: 3,
            cmp: 4,
            lut: 5,
            host_div: 6,
            host_sqrt: 7,
        };
        let m = op_mix(&c);
        assert_eq!(
            (m.fp_mul, m.fp_add, m.exp_adjust, m.cmp, m.lut),
            (1, 2, 3, 4, 5)
        );
        assert_eq!((m.host_div, m.host_sqrt), (6, 7));
    }

    #[test]
    fn modelled_cycles_match_between_analytical_and_live_census() {
        // The cross-check that keeps the engine's fast-op-mix telemetry
        // honest: the cycle model sees identical mixes whether fed the
        // closed-form census or the one the engine actually counted.
        let unit = NonlinearUnit::recommended();
        let cfg = VitConfig::tiny_test();
        for mode in [NonlinearMode::Exact, NonlinearMode::Fast] {
            let analytic = analytical_census_mode(&cfg, mode);
            let live = live_census(mode);
            let ca = nonlinear_cycles(&unit, &analytic);
            let cl = nonlinear_cycles(&unit, &live);
            assert_eq!(ca, cl, "mode {mode:?}: {ca} vs {cl}");
            assert!(ca > 0.0);
        }
    }

    #[test]
    fn fast_mode_prices_far_below_exact_mode() {
        // Exact-mode softmax ships one host division per attention
        // weight; fast mode never leaves the array. The priced gap is the
        // hardware argument for the fast unit.
        let unit = NonlinearUnit::recommended();
        let cfg = VitConfig::tiny_test();
        let exact = analytical_census_mode(&cfg, NonlinearMode::Exact);
        let fast = analytical_census_mode(&cfg, NonlinearMode::Fast);
        let (ce, cf) = (
            nonlinear_cycles(&unit, &exact),
            nonlinear_cycles(&unit, &fast),
        );
        assert!(
            ce > 50.0 * cf,
            "host round-trips dominate exact mode: {ce} vs {cf}"
        );
        assert_eq!(fast.host_ops(), 0);
    }

    #[test]
    fn latency_is_cycles_over_clock() {
        let unit = NonlinearUnit::recommended();
        let census = analytical_census_mode(&VitConfig::tiny_test(), NonlinearMode::Fast);
        let c = nonlinear_cycles(&unit, &census);
        let s = nonlinear_latency_s(&unit, &census);
        assert!((s * unit.freq_hz - c).abs() < 1e-6);
    }
}
