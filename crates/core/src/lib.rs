//! # bfp-core — public API of the bfp8/fp32 multi-mode accelerator
//!
//! This crate ties the reproduction together behind the interface a
//! downstream user would program against:
//!
//! * [`Accelerator`] — the modelled Alveo U280 card: mixed-precision GEMMs,
//!   whole-Transformer inference with Table IV-style latency reports;
//! * [`compiler`] — lowers GEMMs onto the processing unit's instruction
//!   set (`bfp_pu::isa`);
//! * [`latency`] — the operations→time model calibrated to the paper's
//!   measured operating points;
//! * [`report`] — plain-text table rendering used by every reproduction
//!   binary.
//!
//! ## Quickstart
//!
//! ```
//! use bfp_core::Accelerator;
//! use bfp_core::prelude::*;
//!
//! let acc = Accelerator::u280();
//! let a = MatF32::from_fn(64, 64, |i, j| ((i * j) as f32 * 0.01).sin());
//! let b = MatF32::from_fn(64, 64, |i, j| ((i + j) as f32 * 0.02).cos());
//! let (product, report) = acc.gemm(&a, &b);
//! assert_eq!(product.rows(), 64);
//! assert!(report.gops() > 0.0);
//! ```

// Index-based loops mirror the paper's (i, j, k) matrix notation and are
// clearer than iterator chains for the hardware datapath descriptions.
#![allow(clippy::needless_range_loop)]

pub mod accelerator;
pub mod batch;
pub mod compiler;
pub mod degrade;
pub mod drift;
pub mod fastgemm;
pub mod graph;
pub mod latency;
pub mod planner;
pub mod report;
pub mod resilient;
pub mod scheduler;
pub mod vprog;
pub mod vpucost;

pub use accelerator::{Accelerator, GemmReport, InferenceReport};
pub use batch::{BatchLatency, BatchResult};
pub use compiler::{compile_gemm, compile_gemm_blocks, CompiledGemm, DrainSlot};
pub use degrade::{gelu_with_mode, op_count_latency_s};
pub use drift::{attribute_plan_drift, canonical_node_key, drift_samples};
pub use fastgemm::{effective_threads, fast_matmul_f32, packed_matmul, ParallelPolicy};
pub use graph::{lower_vit, Graph, OpKind, OpNode};
pub use latency::{Breakdown, LatencyModel, Partition};
pub use planner::{plan_fusion, FuseDecision, FuseKind, FusePlan, PlanNode, PlanTiming};
pub use report::{fmt_si, Table};
pub use resilient::{
    resilient_matmul, resilient_matmul_with, RecoveryPolicy, ResilientOutcome, VerifyMode,
};
pub use scheduler::{abft_overhead_cycles, quantize_pack_cycles, schedule, Level, Schedule};
// Fault accounting types surface through `GemmReport`/`SystemStats`.
pub use bfp_faults::{FaultCounters, FaultReport};
pub use vprog::{
    compile_exp, compile_recip, compile_softmax, DivMode, VBuilder, VInstr, VMachine, VProgram,
};
pub use vpucost::{nonlinear_cycles, nonlinear_latency_s, op_mix};

/// Commonly used types from across the workspace.
pub mod prelude {
    pub use bfp_arith::matrix::MatF32;
    pub use bfp_arith::quant::Quantizer;
    pub use bfp_arith::stats::ErrorStats;
    pub use bfp_platform::{System, SystemConfig, U280};
    pub use bfp_pu::unit::ProcessingUnit;
    pub use bfp_transformer::{
        DivisionPolicy, Engine, MixedEngine, NonlinearMode, OpCount, RefEngine, VitConfig,
        VitModel, Vpu,
    };
}
