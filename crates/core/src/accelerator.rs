//! The top-level accelerator facade: one object that owns the modelled
//! card, executes GEMMs and whole Transformer models in mixed precision,
//! and reports the paper's metrics (throughput, latency split, fidelity).

use bfp_arith::matrix::MatF32;
use bfp_arith::stats::ErrorStats;
use bfp_platform::{System, SystemStats};
use bfp_transformer::{MixedEngine, OpCensus, RefEngine, VitModel};

use crate::latency::{Breakdown, LatencyModel};
use crate::resilient::{resilient_matmul_with, RecoveryPolicy};
use bfp_arith::cancel::CancelToken;
use bfp_arith::error::ArithError;
use bfp_arith::quant::Quantizer;

/// A modelled Alveo U280 running the multi-mode processing system.
#[derive(Debug, Clone)]
pub struct Accelerator {
    system: System,
    latency: LatencyModel,
}

impl Default for Accelerator {
    fn default() -> Self {
        Self::u280()
    }
}

impl Accelerator {
    /// The paper's deployment (15 units × 2 arrays, 300 MHz, calibrated
    /// memory model).
    pub fn u280() -> Self {
        let system = System::paper();
        let latency = LatencyModel::from_system(&system);
        Accelerator { system, latency }
    }

    /// Build around a custom system model.
    pub fn with_system(system: System) -> Self {
        let latency = LatencyModel::from_system(&system);
        Accelerator { system, latency }
    }

    /// The underlying system model.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The latency operating points in use.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// bfp8 GEMM on the modelled card (quantize → parallel block MatMul
    /// across arrays → dequantize), with execution statistics.
    ///
    /// # Panics
    /// Panics where [`Accelerator::try_gemm`] would return an error:
    /// non-finite inputs or an inner-dimension mismatch.
    pub fn gemm(&self, a: &MatF32, b: &MatF32) -> (MatF32, GemmReport) {
        self.try_gemm(a, b).unwrap_or_else(|e| panic!("gemm: {e}"))
    }

    /// Fallible [`Accelerator::gemm`]: the guardrail errors of
    /// [`System::try_matmul_f32`] (non-finite operands, dimension
    /// mismatches) propagate as typed errors instead of panicking the
    /// batch path.
    pub fn try_gemm(&self, a: &MatF32, b: &MatF32) -> Result<(MatF32, GemmReport), ArithError> {
        let (out, stats) = self.system.try_matmul_f32(a, b)?;
        let seconds = stats.seconds(self.system.freq_hz);
        let report = GemmReport {
            stats,
            seconds,
            macs: (a.rows() * a.cols() * b.cols()) as u64,
        };
        Ok((out, report))
    }

    /// Fault-tolerant bfp8 GEMM: each output tile is checked against the
    /// hardware fault telemetry and the numeric guardrails, retried with
    /// capped backoff, cross-checked cycle-exactly when suspicious, and
    /// degraded to fp32 if a defect persists (see [`crate::resilient`]).
    ///
    /// Recovery is firmware-serialised onto one array, so throughput is
    /// not comparable to [`Accelerator::gemm`]; the point of the report
    /// is the [`bfp_faults::FaultReport`] in `report.stats.faults`.
    pub fn gemm_resilient(
        &self,
        a: &MatF32,
        b: &MatF32,
        policy: &RecoveryPolicy,
    ) -> Result<(MatF32, GemmReport), ArithError> {
        self.gemm_resilient_with(a, b, policy, &CancelToken::new())
    }

    /// [`Accelerator::gemm_resilient`] under a cancel/deadline token: the
    /// tile loop polls `cancel` and abandons the GEMM with
    /// [`ArithError::Cancelled`] once it fires, so a serving runtime can
    /// revoke work whose deadline has already passed.
    pub fn gemm_resilient_with(
        &self,
        a: &MatF32,
        b: &MatF32,
        policy: &RecoveryPolicy,
        cancel: &CancelToken,
    ) -> Result<(MatF32, GemmReport), ArithError> {
        let outcome = resilient_matmul_with(a, b, &Quantizer::paper(), policy, cancel)?;
        let mut stats = SystemStats::default();
        stats.per_array.push(outcome.stats);
        // Backoff stalls the card just like memory overhead does.
        stats.mem_overhead_cycles = outcome.report.backoff_cycles as f64;
        stats.faults = outcome.report;
        let seconds = stats.seconds(self.system.freq_hz);
        let report = GemmReport {
            stats,
            seconds,
            macs: (a.rows() * a.cols() * b.cols()) as u64,
        };
        Ok((outcome.out, report))
    }

    /// Run a Transformer forward pass in mixed precision and produce the
    /// full inference report (census, Table IV-style breakdown, fidelity
    /// versus the fp32 reference).
    pub fn infer(&self, model: &VitModel, input: &MatF32) -> (MatF32, InferenceReport) {
        let mut mixed = MixedEngine::new();
        let output = model.forward(&mut mixed, input);
        let census = mixed.take_census();
        let breakdown = self.latency.breakdown(&census);

        let mut reference = RefEngine;
        let ref_out = model.forward(&mut reference, input);
        let mut fidelity = ErrorStats::new();
        fidelity.push_slices(output.data(), ref_out.data());

        (
            output,
            InferenceReport {
                census,
                breakdown,
                fidelity,
            },
        )
    }

    /// Latency breakdown for a census without executing (architecture-only
    /// estimates, e.g. full DeiT-Small without waiting for the simulation).
    pub fn estimate(&self, census: &OpCensus) -> Breakdown {
        self.latency.breakdown(census)
    }
}

/// Statistics of one accelerated GEMM.
#[derive(Debug, Clone)]
pub struct GemmReport {
    /// Per-array and memory statistics.
    pub stats: SystemStats,
    /// Modelled wall-clock seconds.
    pub seconds: f64,
    /// MAC count of the GEMM.
    pub macs: u64,
}

impl GemmReport {
    /// Achieved throughput in GOPS (2 ops per MAC).
    pub fn gops(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            2.0 * self.macs as f64 / self.seconds / 1e9
        }
    }
}

/// Everything the paper reports about one inference.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// The executed operation census.
    pub census: OpCensus,
    /// Table IV-style latency breakdown.
    pub breakdown: Breakdown,
    /// Output fidelity versus the fp32 reference engine.
    pub fidelity: ErrorStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_transformer::VitConfig;

    #[test]
    fn gemm_end_to_end() {
        let acc = Accelerator::u280();
        let a = MatF32::from_fn(32, 32, |i, j| ((i + j) % 9) as f32 - 4.0);
        let b = MatF32::from_fn(32, 32, |i, j| ((i * 3 + j) % 7) as f32 - 3.0);
        let (out, report) = acc.gemm(&a, &b);
        assert_eq!(out, a.matmul(&b));
        assert!(report.seconds > 0.0);
        assert!(report.gops() > 0.0);
    }

    #[test]
    fn try_gemm_propagates_guardrail_errors() {
        let acc = Accelerator::u280();
        let mut a = MatF32::from_fn(16, 16, |i, j| (i + j) as f32);
        let b = MatF32::from_fn(16, 16, |i, j| i as f32 - j as f32);
        assert!(matches!(
            acc.try_gemm(&a, &MatF32::zeros(8, 8)),
            Err(ArithError::DimensionMismatch { .. })
        ));
        a.set(1, 2, f32::NAN);
        assert!(matches!(
            acc.try_gemm(&a, &b),
            Err(ArithError::NonFinite { at: (1, 2) })
        ));
    }

    #[test]
    fn inference_report_is_complete() {
        let acc = Accelerator::u280();
        let model = VitModel::new_random(VitConfig::tiny_test(), 11);
        let x = model.synthetic_input(12);
        let (out, report) = acc.infer(&model, &x);
        assert_eq!(out.rows(), model.cfg.seq);
        assert!(report.census.matmul_macs > 0);
        assert_eq!(report.breakdown.rows.len(), 4);
        assert!(report.breakdown.total_latency_s() > 0.0);
        assert!(
            report.fidelity.sqnr_db() > 15.0,
            "fidelity {}",
            report.fidelity
        );
    }

    #[test]
    fn estimate_matches_infer_breakdown() {
        let acc = Accelerator::u280();
        let model = VitModel::new_random(VitConfig::tiny_test(), 1);
        let x = model.synthetic_input(2);
        let (_, report) = acc.infer(&model, &x);
        let est = acc.estimate(&report.census);
        assert_eq!(est.total_latency_s(), report.breakdown.total_latency_s());
    }

    #[test]
    fn deit_small_estimate_shows_fp32_latency_dominance() {
        // Architecture-only: no execution needed for the Table IV shape.
        let acc = Accelerator::u280();
        let census = bfp_transformer::analytical_census(&VitConfig::deit_small());
        let b = acc.estimate(&census);
        assert!(b.fp32_ops_percent() < 5.0);
        assert!(b.fp32_latency_percent() > 60.0);
    }
}
