//! End-to-end latency model: turns an operation census into the Table IV
//! latency split using the accelerator's measured throughputs.

use bfp_platform::System;
use bfp_transformer::OpCensus;

/// Throughput operating points used to convert ops into time.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Measured bfp8 MatMul throughput (OPS).
    pub bfp_ops_per_sec: f64,
    /// Measured fp32 vector throughput (FLOPS).
    pub fp32_flops_per_sec: f64,
    /// Host CPU scalar-division rate (ops/s) for the offloaded divisions;
    /// reported separately, never inside the Table IV rows (the paper's
    /// table excludes host time too).
    pub host_ops_per_sec: f64,
}

impl LatencyModel {
    /// The operating points the paper's Table IV implies: 2052.06 GOPS for
    /// bfp8 and 15.0 GFLOPS for fp32.
    pub fn paper() -> Self {
        LatencyModel {
            bfp_ops_per_sec: 2052.06e9,
            fp32_flops_per_sec: 15.0e9,
            host_ops_per_sec: 1.0e9,
        }
    }

    /// Derive the operating points from a modelled system (measured at the
    /// paper's workload sizes: N_X = 64, L = 128).
    pub fn from_system(sys: &System) -> Self {
        LatencyModel {
            bfp_ops_per_sec: sys.measured_bfp_gops(64) * 1e9,
            fp32_flops_per_sec: sys.measured_fp32_gflops(128) * 1e9,
            host_ops_per_sec: 1.0e9,
        }
    }

    /// Produce the Table IV breakdown for a census.
    pub fn breakdown(&self, census: &OpCensus) -> Breakdown {
        let rows = vec![
            Partition {
                name: "bfp8 MatMul",
                ops: census.bfp_ops() as f64,
                latency_s: census.bfp_ops() as f64 / self.bfp_ops_per_sec,
            },
            Partition {
                name: "fp32 LayerNorm",
                ops: census.layernorm.flops() as f64,
                latency_s: census.layernorm.flops() as f64 / self.fp32_flops_per_sec,
            },
            Partition {
                name: "fp32 SoftMax",
                ops: census.softmax.flops() as f64,
                latency_s: census.softmax.flops() as f64 / self.fp32_flops_per_sec,
            },
            Partition {
                name: "fp32 GELU",
                ops: census.gelu.flops() as f64,
                latency_s: census.gelu.flops() as f64 / self.fp32_flops_per_sec,
            },
        ];
        Breakdown {
            rows,
            host_ops: census.host_ops() as f64,
            host_latency_s: census.host_ops() as f64 / self.host_ops_per_sec,
        }
    }
}

/// One workload partition (a Table IV row).
#[derive(Debug, Clone)]
pub struct Partition {
    /// Row label.
    pub name: &'static str,
    /// Operations in this partition.
    pub ops: f64,
    /// Modelled latency in seconds.
    pub latency_s: f64,
}

/// The full latency breakdown.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// The four partitions, in Table IV row order.
    pub rows: Vec<Partition>,
    /// Host-offloaded operations (divisions, square roots).
    pub host_ops: f64,
    /// Host time (excluded from the table, reported separately).
    pub host_latency_s: f64,
}

impl Breakdown {
    /// Total accelerator latency.
    pub fn total_latency_s(&self) -> f64 {
        self.rows.iter().map(|r| r.latency_s).sum()
    }

    /// Total operation count.
    pub fn total_ops(&self) -> f64 {
        self.rows.iter().map(|r| r.ops).sum()
    }

    /// Operation proportion of row `i` (percent).
    pub fn ops_percent(&self, i: usize) -> f64 {
        100.0 * self.rows[i].ops / self.total_ops()
    }

    /// Latency proportion of row `i` (percent).
    pub fn latency_percent(&self, i: usize) -> f64 {
        100.0 * self.rows[i].latency_s / self.total_latency_s()
    }

    /// Combined fp32 operation share (the paper's "1.35 % of workloads").
    pub fn fp32_ops_percent(&self) -> f64 {
        100.0 - self.ops_percent(0)
    }

    /// Combined fp32 latency share (the paper's "92.45 % of latency").
    pub fn fp32_latency_percent(&self) -> f64 {
        100.0 - self.latency_percent(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_transformer::{analytical_census, VitConfig};

    #[test]
    fn paper_model_reproduces_table4_shape_for_deit_small() {
        let census = analytical_census(&VitConfig::deit_small());
        let b = LatencyModel::paper().breakdown(&census);
        // fp32 is a tiny share of ops but dominates latency — the paper's
        // central Table IV conclusion (1.35 % ops, 92.45 % latency there).
        assert!(
            b.fp32_ops_percent() < 5.0,
            "fp32 ops % = {}",
            b.fp32_ops_percent()
        );
        assert!(
            b.fp32_latency_percent() > 60.0,
            "fp32 latency % = {}",
            b.fp32_latency_percent()
        );
        // The bfp8 partition dominates ops overwhelmingly.
        assert!(b.ops_percent(0) > 95.0);
    }

    #[test]
    fn latencies_scale_inversely_with_throughput() {
        let census = analytical_census(&VitConfig::tiny_test());
        let slow = LatencyModel {
            fp32_flops_per_sec: 1.0e9,
            ..LatencyModel::paper()
        };
        let fast = LatencyModel {
            fp32_flops_per_sec: 30.0e9,
            ..LatencyModel::paper()
        };
        let bs = slow.breakdown(&census);
        let bf = fast.breakdown(&census);
        assert!((bs.rows[2].latency_s / bf.rows[2].latency_s - 30.0).abs() < 1e-6);
    }

    #[test]
    fn from_system_matches_paper_operating_points() {
        let m = LatencyModel::from_system(&System::paper());
        assert!((m.bfp_ops_per_sec / 2052.06e9 - 1.0).abs() < 0.01);
        assert!((m.fp32_flops_per_sec / 15.0e9 - 1.0).abs() < 0.02);
    }

    #[test]
    fn percentages_sum_to_one_hundred() {
        let census = analytical_census(&VitConfig::deit_small());
        let b = LatencyModel::paper().breakdown(&census);
        let ops: f64 = (0..4).map(|i| b.ops_percent(i)).sum();
        let lat: f64 = (0..4).map(|i| b.latency_percent(i)).sum();
        assert!((ops - 100.0).abs() < 1e-9);
        assert!((lat - 100.0).abs() < 1e-9);
    }

    #[test]
    fn host_divisions_are_reported_separately() {
        let census = analytical_census(&VitConfig::deit_small());
        let b = LatencyModel::paper().breakdown(&census);
        assert!(b.host_ops > 0.0);
        assert!(b.host_latency_s > 0.0);
        // And they never appear in the table's total.
        let table_ops = b.total_ops();
        assert!(table_ops > 0.0 && !table_ops.is_nan());
    }
}
