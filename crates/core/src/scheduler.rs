//! Dependency-aware scheduling of an operator graph onto the multi-array
//! card — the "full stack acceleration" compilation layer the paper lists
//! as ongoing work.
//!
//! The scheduler performs levelled list scheduling: nodes whose
//! dependencies are satisfied run concurrently, sharing the card's arrays;
//! a level's duration is the work-conserving bound
//! `max(total_work / arrays, longest single pass)`. Costs come from the
//! same calibrated models as everything else — Eqn. 9 pass cycles plus the
//! HBM overhead for GEMMs, the Eqn. 10 burst rate for fp32 vector ops —
//! so the schedule's makespan is directly comparable to the Table IV
//! throughput-division estimate, but additionally accounts for dependency
//! stalls and mode switches.

use bfp_platform::{MemParams, System};
use bfp_pu::throughput;
use bfp_pu::MAX_X_BLOCKS;

use crate::graph::{Graph, OpKind};

/// Cycles to reconfigure an array between bfp8 and fp32 modes (the run-time
/// mode switch; a handful of control cycles).
pub const MODE_SWITCH_CYCLES: f64 = 8.0;

/// One scheduled level: concurrently running nodes.
#[derive(Debug, Clone)]
pub struct Level {
    /// Node indices running in this level.
    pub nodes: Vec<usize>,
    /// Level duration in cycles.
    pub cycles: f64,
    /// Whether the level contains bfp8 work.
    pub has_bfp: bool,
    /// Whether the level contains fp32 work.
    pub has_fp32: bool,
}

/// A complete schedule with its timing analysis.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The levels in execution order.
    pub levels: Vec<Level>,
    /// Total makespan in cycles (including mode switches).
    pub makespan_cycles: f64,
    /// Cycles attributable to bfp8 levels.
    pub bfp_cycles: f64,
    /// Cycles attributable to fp32 levels.
    pub fp32_cycles: f64,
    /// Cycles lost to mode switches.
    pub switch_cycles: f64,
    /// The serial (single-array, no-overlap) execution time, for speedup.
    pub serial_cycles: f64,
}

impl Schedule {
    /// Makespan in seconds at `freq` Hz.
    pub fn seconds(&self, freq: f64) -> f64 {
        self.makespan_cycles / freq
    }

    /// Speedup of the scheduled parallel execution over one array run
    /// serially.
    pub fn speedup(&self) -> f64 {
        self.serial_cycles / self.makespan_cycles
    }

    /// Makespan after fault recovery (degraded mode): backoff stalls the
    /// card outright, every retry and stepped cross-check re-executes one
    /// tile pass of `tile_cycles`, and every per-layer fp32 fallback
    /// re-runs its GEMM on the vector path at `fallback_cycles`.
    ///
    /// The inputs come straight from the [`bfp_faults::FaultReport`] a
    /// resilient execution produces, so a schedule can price the same
    /// fault history it just survived.
    pub fn degraded_cycles(
        &self,
        faults: &bfp_faults::FaultReport,
        tile_cycles: f64,
        fallback_cycles: f64,
    ) -> f64 {
        self.makespan_cycles
            + faults.backoff_cycles as f64
            + (faults.retries + faults.stepped_crosschecks) as f64 * tile_cycles
            + faults.fp32_fallbacks as f64 * fallback_cycles
    }

    /// [`Schedule::degraded_cycles`] for an ABFT-protected execution: on
    /// top of the backoff/retry/fallback pricing, every checksum
    /// detection costs `abft_event_cycles` of localization work (the
    /// row×column intersection and, when it succeeds, the in-place
    /// repair). The *steady-state* checksum maintenance is not priced
    /// here — it belongs in the pass model via
    /// [`abft_overhead_cycles`], faults or no faults.
    pub fn degraded_cycles_abft(
        &self,
        faults: &bfp_faults::FaultReport,
        tile_cycles: f64,
        fallback_cycles: f64,
        abft_event_cycles: f64,
    ) -> f64 {
        self.degraded_cycles(faults, tile_cycles, fallback_cycles)
            + faults.abft_detections as f64 * abft_event_cycles
    }
}

/// Modelled cycle overhead of checksum protection for an `m × k × n`
/// GEMM on one array, in the same currency as
/// [`gemm_cycles_one_array`].
///
/// The per-step checksum products themselves ride in the augmented PE
/// row and column of the classic ABFT systolic arrangement — an *area*
/// cost (`2b + 1` extra PEs over `b²`, ~26% at `b = 8`), not a time
/// cost: checksum outputs emerge in the same passes as the data. What
/// does cost cycles, with the array retiring `b² = 64` MAC-equivalents
/// per cycle:
///
/// * pack-time lane generation — `b²` adds per operand tile:
///   `(mb·kb + kb·nb)` cycles;
/// * checkpoint re-summations at exponent-rescale (truncation) events —
///   a `b²`-add re-sync of the running column/row sums, budgeted at one
///   rescale every fourth accumulation step: `mb·nb·kb/4` cycles;
/// * final verification — one `b²` re-summation plus compare per output
///   chain: `mb·nb` cycles.
pub fn abft_overhead_cycles(m: usize, k: usize, n: usize) -> f64 {
    let mb = m.div_ceil(8);
    let kb = k.div_ceil(8);
    let nb = n.div_ceil(8);
    let lane_gen = (mb * kb + kb * nb) as f64;
    let checkpoints = (mb * nb) as f64 * (kb as f64 / 4.0);
    let final_verify = (mb * nb) as f64;
    lane_gen + checkpoints + final_verify
}

/// Serial cycles of one node on a single array.
pub fn node_cycles(kind: &OpKind, mem: &MemParams) -> f64 {
    match *kind {
        OpKind::MatMul { m, k, n } => gemm_cycles_one_array(m, k, n, mem),
        OpKind::Residual { .. } => 0.0, // memory-side, overlapped with DMA
        _ => {
            let flops = kind.fp32_flops() as f64;
            // Sustained fp32 rate per array at the full burst length.
            let per_cycle = (4 * 128) as f64
                / (throughput::fp32_burst_cycles(128) as f64 + mem.fp_burst_overhead(128));
            flops / per_cycle
        }
    }
}

/// Cycles for an `m × k × n` GEMM on one array: Eqn. 9 passes (Y-pair
/// stationary over N, K-reduction, PSU-chunked M) plus HBM overhead.
pub fn gemm_cycles_one_array(m: usize, k: usize, n: usize, mem: &MemParams) -> f64 {
    let mb = m.div_ceil(8);
    let kb = k.div_ceil(8);
    let nb = n.div_ceil(8);
    let n_pairs = nb.div_ceil(2);
    let mut cycles = 0.0;
    let mut m0 = 0;
    while m0 < mb {
        let chunk = (mb - m0).min(MAX_X_BLOCKS);
        let per_pass = throughput::bfp_pass_cycles(chunk) as f64 + mem.bfp_pass_overhead(chunk);
        cycles += per_pass * (n_pairs * kb) as f64;
        m0 += chunk;
    }
    cycles
}

/// Cycles to quantize-pack a `rows × cols` f32 operand into the bfp8
/// block-major layout: one shared-exponent scan pass plus one
/// round-and-pack pass, each streaming every element through the
/// 64-lane (8×8-tile) pack datapath. This is the cost a fused
/// requantizing epilogue eliminates when it writes the GEMM drain
/// straight into the next GEMM's packed layout, and what a shared-LHS
/// group saves `size − 1` times over.
pub fn quantize_pack_cycles(rows: usize, cols: usize) -> f64 {
    2.0 * (rows * cols) as f64 / 64.0
}

/// Maximum useful parallelism of a node (how many arrays can share it).
pub fn node_parallelism(kind: &OpKind) -> usize {
    match *kind {
        // Independent (M-chunk, N-pair) pass groups.
        OpKind::MatMul { m, n, .. } => m.div_ceil(8).max(1) * n.div_ceil(16).max(1),
        OpKind::Softmax { rows, .. } => rows.max(1),
        OpKind::LayerNorm { rows, .. } => rows.max(1),
        OpKind::Gelu { elems } => elems.div_ceil(512).max(1),
        OpKind::Residual { .. } => usize::MAX,
    }
}

/// Schedule a graph onto `sys`.
///
/// ```
/// use bfp_core::{lower_vit, schedule};
/// use bfp_platform::System;
/// use bfp_transformer::VitConfig;
///
/// let g = lower_vit(&VitConfig::deit_small());
/// let s = schedule(&g, &System::paper());
/// assert!(s.speedup() > 1.0);                  // 30 arrays help
/// assert!(s.fp32_cycles > s.bfp_cycles);       // Table IV's conclusion
/// ```
pub fn schedule(graph: &Graph, sys: &System) -> Schedule {
    assert!(
        graph.is_topological(),
        "graph must be topologically ordered"
    );
    let arrays = sys.cfg.total_arrays().max(1) as f64;
    let mem = &sys.mem;

    // ASAP levelling.
    let mut level_of = vec![0usize; graph.nodes.len()];
    let mut max_level = 0;
    for (i, node) in graph.nodes.iter().enumerate() {
        let l = node
            .deps
            .iter()
            .map(|&d| level_of[d] + 1)
            .max()
            .unwrap_or(0);
        level_of[i] = l;
        max_level = max_level.max(l);
    }
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    for (i, &l) in level_of.iter().enumerate() {
        buckets[l].push(i);
    }

    let mut levels = Vec::with_capacity(buckets.len());
    let mut serial = 0.0;
    let mut bfp_cycles = 0.0;
    let mut fp32_cycles = 0.0;
    let mut switch_cycles = 0.0;
    let mut prev_mode: Option<bool> = None; // true = bfp level

    for bucket in buckets {
        let mut total_work = 0.0;
        let mut longest_indivisible: f64 = 0.0;
        let mut has_bfp = false;
        let mut has_fp32 = false;
        for &i in &bucket {
            let kind = &graph.nodes[i].kind;
            let w = node_cycles(kind, mem);
            serial += w;
            total_work += w;
            // A node cannot finish faster than its work spread over its
            // own maximum parallelism allows.
            let par = node_parallelism(kind).min(arrays as usize).max(1) as f64;
            longest_indivisible = longest_indivisible.max(w / par);
            match kind {
                OpKind::MatMul { .. } => has_bfp = true,
                OpKind::Residual { .. } => {}
                _ => has_fp32 = true,
            }
        }
        let cycles = (total_work / arrays).max(longest_indivisible);
        // Mode switch whenever the dominant mode changes between levels.
        let mode = has_bfp && !has_fp32;
        if let Some(p) = prev_mode {
            if p != mode && (has_bfp || has_fp32) {
                switch_cycles += MODE_SWITCH_CYCLES;
            }
        }
        if has_bfp || has_fp32 {
            prev_mode = Some(mode);
        }
        if has_bfp {
            bfp_cycles += cycles;
        } else if has_fp32 {
            fp32_cycles += cycles;
        }
        levels.push(Level {
            nodes: bucket,
            cycles,
            has_bfp,
            has_fp32,
        });
    }

    let makespan: f64 = levels.iter().map(|l| l.cycles).sum::<f64>() + switch_cycles;
    Schedule {
        levels,
        makespan_cycles: makespan,
        bfp_cycles,
        fp32_cycles,
        switch_cycles,
        serial_cycles: serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::lower_vit;
    use crate::latency::LatencyModel;
    use bfp_transformer::{analytical_census, VitConfig};

    fn sys() -> System {
        System::paper()
    }

    #[test]
    fn makespan_is_between_critical_path_and_serial() {
        let g = lower_vit(&VitConfig::deit_small());
        let s = schedule(&g, &sys());
        assert!(s.makespan_cycles > 0.0);
        assert!(
            s.makespan_cycles <= s.serial_cycles,
            "parallelism must help"
        );
        assert!(s.speedup() > 1.0);
        assert!(s.speedup() <= 30.0 + 1e-9, "cannot beat the array count");
    }

    #[test]
    fn schedule_latency_is_comparable_to_table4_model() {
        // The dependency-aware estimate must land in the same regime as the
        // ops/throughput division (same models, plus stalls).
        let cfg = VitConfig::deit_small();
        let g = lower_vit(&cfg);
        let s = schedule(&g, &sys());
        let sched_ms = s.seconds(300.0e6) * 1e3;

        let census = analytical_census(&cfg);
        let table4_ms = LatencyModel::from_system(&sys())
            .breakdown(&census)
            .total_latency_s()
            * 1e3;
        assert!(
            sched_ms >= table4_ms * 0.5 && sched_ms <= table4_ms * 4.0,
            "schedule {sched_ms:.3} ms vs throughput model {table4_ms:.3} ms"
        );
    }

    #[test]
    fn fp32_levels_dominate_the_makespan() {
        // The Table IV conclusion shows up in the schedule too.
        let g = lower_vit(&VitConfig::deit_small());
        let s = schedule(&g, &sys());
        assert!(
            s.fp32_cycles > s.bfp_cycles,
            "fp32 {} vs bfp8 {} cycles",
            s.fp32_cycles,
            s.bfp_cycles
        );
    }

    #[test]
    fn levels_respect_dependencies() {
        let g = lower_vit(&VitConfig::tiny_test());
        let s = schedule(&g, &sys());
        let mut level_of = vec![0usize; g.nodes.len()];
        for (li, level) in s.levels.iter().enumerate() {
            for &n in &level.nodes {
                level_of[n] = li;
            }
        }
        for (i, node) in g.nodes.iter().enumerate() {
            for &d in &node.deps {
                assert!(level_of[d] < level_of[i], "dep {d} must precede {i}");
            }
        }
    }

    #[test]
    fn mode_switches_are_counted() {
        let g = lower_vit(&VitConfig::tiny_test());
        let s = schedule(&g, &sys());
        // Each block alternates bfp8/fp32 several times.
        assert!(s.switch_cycles >= MODE_SWITCH_CYCLES * 4.0);
    }

    #[test]
    fn single_array_schedule_equals_serial_within_granularity() {
        let g = lower_vit(&VitConfig::tiny_test());
        let one = System {
            cfg: bfp_platform::SystemConfig {
                units: 1,
                arrays_per_unit: 1,
            },
            ..System::paper()
        };
        let s = schedule(&g, &one);
        assert!((s.makespan_cycles - s.switch_cycles - s.serial_cycles).abs() < 1.0);
    }

    #[test]
    fn degraded_mode_prices_recovery_work() {
        let g = lower_vit(&VitConfig::tiny_test());
        let s = schedule(&g, &sys());
        let clean = bfp_faults::FaultReport::default();
        assert_eq!(
            s.degraded_cycles(&clean, 100.0, 1000.0),
            s.makespan_cycles,
            "no faults, no overhead"
        );
        let faults = bfp_faults::FaultReport {
            retries: 2,
            backoff_cycles: 96,
            stepped_crosschecks: 1,
            fp32_fallbacks: 1,
            ..Default::default()
        };
        let got = s.degraded_cycles(&faults, 100.0, 1000.0);
        assert_eq!(got, s.makespan_cycles + 96.0 + 3.0 * 100.0 + 1000.0);
    }

    #[test]
    fn abft_degraded_mode_prices_detection_events() {
        let g = lower_vit(&VitConfig::tiny_test());
        let s = schedule(&g, &sys());
        let faults = bfp_faults::FaultReport {
            retries: 1,
            backoff_cycles: 32,
            abft_detections: 4,
            abft_corrections: 3,
            fp32_fallbacks: 1,
            ..Default::default()
        };
        let got = s.degraded_cycles_abft(&faults, 100.0, 1000.0, 25.0);
        // Corrections are free beyond the detection's localization work:
        // only detections are priced, on top of the base degraded model.
        assert_eq!(
            got,
            s.degraded_cycles(&faults, 100.0, 1000.0) + 4.0 * 25.0
        );
    }

    #[test]
    fn abft_overhead_is_a_modest_fraction_of_the_pass_model() {
        // DeiT-S attention-projection shape: the checksum maintenance must
        // stay well under the pass cycles it protects (the <10% target the
        // chaos campaign measures end to end).
        let mem = MemParams::paper_calibrated();
        let (m, k, n) = (197, 384, 384);
        let pass = gemm_cycles_one_array(m, k, n, &mem);
        let abft = abft_overhead_cycles(m, k, n);
        assert!(abft > 0.0);
        assert!(
            abft < 0.10 * pass,
            "abft overhead {abft} vs pass {pass} cycles"
        );
    }

    #[test]
    fn gemm_cost_matches_unit_accounting() {
        // One pass worth of work: the closed form equals the simulator's
        // compute cycles plus the modelled memory overhead.
        let mem = MemParams::paper_calibrated();
        let got = gemm_cycles_one_array(64, 8, 16, &mem);
        let want = throughput::bfp_pass_cycles(8) as f64 + mem.bfp_pass_overhead(8);
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }
}
