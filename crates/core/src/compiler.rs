//! The mixed-precision compiler: lowers matrix workloads onto the
//! processing unit's instruction set ([`bfp_pu::isa`]).
//!
//! The paper positions the multi-mode unit as a target for "top-level
//! compilers" that "map different types of workload to the hardware with
//! mixed-precision during runtime" (§III-B). This module is that layer for
//! the workloads the evaluation uses: blocked GEMMs (Y-pair stationary,
//! PSU-chunked M streaming) and element-wise fp32 vector expressions.

use bfp_arith::bfp::WideBlock;
use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_pu::isa::{Env, Instr, Program};
use bfp_pu::unit::{grid_from_matrix, BlockGrid};
use bfp_pu::MAX_X_BLOCKS;

/// A compiled GEMM: program, environment, and the output-tile schedule
/// needed to reassemble the drained blocks into a matrix.
#[derive(Debug)]
pub struct CompiledGemm {
    /// The instruction stream.
    pub program: Program,
    /// Operand registers.
    pub env: Env,
    /// For each `Drain`, the `(m_tile_range_start, chunk, n0, has_n1)`
    /// placement of the drained blocks.
    pub schedule: Vec<DrainSlot>,
    /// Output dimensions in tiles.
    pub out_tiles: (usize, usize),
    /// Logical output dimensions in elements.
    pub out_shape: (usize, usize),
}

/// Where one `Drain` instruction's results land in the output grid.
#[derive(Debug, Clone, Copy)]
pub struct DrainSlot {
    /// First output block-row of the chunk.
    pub m0: usize,
    /// Number of block-rows drained.
    pub chunk: usize,
    /// Output block-column of lane 1.
    pub n0: usize,
    /// Whether lane 2 carries a real tile (`n0 + 1`).
    pub has_n1: bool,
}

/// Compile `a · b` (f32 matrices) into a unit program.
///
/// # Panics
/// Panics on inner-dimension mismatch or non-finite inputs.
pub fn compile_gemm(a: &MatF32, b: &MatF32) -> CompiledGemm {
    assert_eq!(a.cols(), b.rows(), "inner dimensions");
    let q = Quantizer::paper();
    let ga = grid_from_matrix(&q.quantize(a).expect("finite lhs"));
    let gb = grid_from_matrix(&q.quantize(b).expect("finite rhs"));
    compile_gemm_blocks(&ga, &gb, (a.rows(), b.cols()))
}

/// Compile a GEMM already in block-grid form.
pub fn compile_gemm_blocks(
    a: &BlockGrid,
    b: &BlockGrid,
    out_shape: (usize, usize),
) -> CompiledGemm {
    let mb = a.len();
    let kb = b.len();
    let nb = b.first().map(|r| r.len()).unwrap_or(0);
    assert!(a.iter().all(|r| r.len() == kb), "ragged lhs grid");

    let mut env = Env::default();
    let zero = env.push_block(bfp_arith::bfp::BfpBlock::ZERO);
    // Register every tile once.
    let ra: Vec<Vec<usize>> = a
        .iter()
        .map(|row| row.iter().map(|&blk| env.push_block(blk)).collect())
        .collect();
    let rb: Vec<Vec<usize>> = b
        .iter()
        .map(|row| row.iter().map(|&blk| env.push_block(blk)).collect())
        .collect();

    let mut code = Vec::new();
    let mut schedule = Vec::new();
    for n0 in (0..nb).step_by(2) {
        let has_n1 = n0 + 1 < nb;
        for m0 in (0..mb).step_by(MAX_X_BLOCKS) {
            let chunk = (mb - m0).min(MAX_X_BLOCKS);
            for k in 0..kb {
                let y1 = rb[k][n0];
                let y2 = if has_n1 { rb[k][n0 + 1] } else { zero };
                code.push(Instr::LoadY { y1, y2 });
                code.push(Instr::StreamX {
                    xs: (0..chunk).map(|dm| ra[m0 + dm][k]).collect(),
                });
            }
            code.push(Instr::Drain { n: chunk });
            schedule.push(DrainSlot {
                m0,
                chunk,
                n0,
                has_n1,
            });
        }
    }

    CompiledGemm {
        program: Program { code },
        env,
        schedule,
        out_tiles: (mb, nb),
        out_shape,
    }
}

impl CompiledGemm {
    /// Reassemble drained blocks (in drain order) into the output matrix.
    ///
    /// # Panics
    /// Panics if `drained` does not match the schedule.
    pub fn assemble(&self, drained: &[(WideBlock, WideBlock)]) -> MatF32 {
        let (mb, nb) = self.out_tiles;
        let mut grid = vec![vec![WideBlock::ZERO; nb]; mb];
        let mut cursor = 0;
        for slot in &self.schedule {
            for dm in 0..slot.chunk {
                let (z1, z2) = drained[cursor];
                cursor += 1;
                grid[slot.m0 + dm][slot.n0] = z1;
                if slot.has_n1 {
                    grid[slot.m0 + dm][slot.n0 + 1] = z2;
                }
            }
        }
        assert_eq!(
            cursor,
            drained.len(),
            "drained block count must match schedule"
        );
        let (rows, cols) = self.out_shape;
        MatF32::from_fn(rows, cols, |i, j| {
            let w = &grid[i / 8][j / 8];
            (w.man[i % 8][j % 8] as f64 * (w.exp as f64).exp2()) as f32
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_pu::isa::Interpreter;
    use bfp_pu::unit::ProcessingUnit;

    fn ramp(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| ((i * cols + j) % 13) as f32 - 6.0)
    }

    #[test]
    fn compiled_program_reproduces_reference_gemm() {
        let a = ramp(24, 16);
        let b = ramp(16, 24);
        let compiled = compile_gemm(&a, &b);
        let mut env = compiled.env.clone();
        let mut interp = Interpreter::new(ProcessingUnit::default());
        let res = interp.run(&compiled.program, &mut env);
        let got = compiled.assemble(&res.drained);
        assert_eq!(got, a.matmul(&b), "exact integer inputs");
    }

    #[test]
    fn program_structure_counts() {
        let a = ramp(16, 16); // 2x2 tiles
        let b = ramp(16, 24); // 2x3 tiles
        let c = compile_gemm(&a, &b);
        // n-pairs = 2 (cols 0-1, col 2), chunks = 1, k = 2:
        // per (pair, chunk): 2 LoadY + 2 StreamX + 1 Drain = 5 -> 10 instr.
        assert_eq!(c.program.code.len(), 10);
        assert_eq!(c.schedule.len(), 2);
        assert!(
            !c.schedule[1].has_n1,
            "odd tile column pairs with the zero block"
        );
    }

    #[test]
    fn large_m_splits_into_psu_chunks() {
        let a = ramp(8 * 70, 8); // 70 block rows > 64 PSU slots
        let b = ramp(8, 8);
        let c = compile_gemm(&a, &b);
        assert_eq!(c.schedule.len(), 2);
        assert_eq!(c.schedule[0].chunk, 64);
        assert_eq!(c.schedule[1].chunk, 6);
        // And it still computes the right thing.
        let mut env = c.env.clone();
        let mut interp = Interpreter::new(ProcessingUnit::default());
        let res = interp.run(&c.program, &mut env);
        assert_eq!(c.assemble(&res.drained), a.matmul(&b));
    }

    #[test]
    fn cycle_cost_matches_direct_api() {
        let a = ramp(32, 32);
        let b = ramp(32, 32);
        let c = compile_gemm(&a, &b);
        let mut env = c.env.clone();
        let mut interp = Interpreter::new(ProcessingUnit::default());
        let res = interp.run(&c.program, &mut env);

        let q = Quantizer::paper();
        let mut unit = ProcessingUnit::default();
        let _ = unit.matmul_grid(
            &grid_from_matrix(&q.quantize(&a).unwrap()),
            &grid_from_matrix(&q.quantize(&b).unwrap()),
        );
        assert_eq!(res.stats.cycles, unit.stats().cycles);
    }
}
