//! Per-request nonlinear-mode plumbing for degraded-mode serving.
//!
//! `MixedEngine` carries its nonlinear kernel family as engine-level
//! state (`set_nonlinear_mode`), which is the right shape for a model
//! run but the wrong shape for a serving runtime: under a brownout
//! ladder each *request* runs in the tier it was dispatched at, and one
//! engine instance serves requests from different tiers back to back.
//! [`gelu_with_mode`] is the seam — it scopes a mode to a single kernel
//! invocation (set, run, restore) and returns exactly the op count that
//! invocation added to the census, so the caller can price the work and
//! pin bit-exactness *for the mode that ran*.

use bfp_arith::matrix::MatF32;
use bfp_platform::nonlinear::NonlinearUnit;
use bfp_transformer::{Engine, MixedEngine, NonlinearMode, OpCount};

use crate::vpucost::op_mix;

/// Run the engine's GELU over `m` in `mode`, restoring the engine's
/// configured mode afterwards, and return the VPU op count this call
/// contributed. Outputs are bit-identical to an engine permanently
/// configured in `mode` — the knob is engine state, not kernel state,
/// so scoping it around one call is exact.
pub fn gelu_with_mode(engine: &mut MixedEngine, m: &mut MatF32, mode: NonlinearMode) -> OpCount {
    let saved = engine.nonlinear_mode();
    let before = engine.census().gelu;
    engine.set_nonlinear_mode(mode);
    engine.gelu(m);
    engine.set_nonlinear_mode(saved);
    let after = engine.census().gelu;
    OpCount {
        fp_mul: after.fp_mul - before.fp_mul,
        fp_add: after.fp_add - before.fp_add,
        exp_adjust: after.exp_adjust - before.exp_adjust,
        cmp: after.cmp - before.cmp,
        lut: after.lut - before.lut,
        host_div: after.host_div - before.host_div,
        host_sqrt: after.host_sqrt - before.host_sqrt,
    }
}

/// Modelled wall-clock seconds to drain `count` on `unit` — the same
/// pricing the latency model applies to whole-census nonlinear work,
/// specialised to one request's op count so serving backends can fold
/// degraded-tier savings into their modelled service time.
pub fn op_count_latency_s(unit: &NonlinearUnit, count: &OpCount) -> f64 {
    unit.cycles(&op_mix(count)) / unit.freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| ((i * 31 + j * 7) as f32 * 0.13).sin() * 3.0)
    }

    #[test]
    fn scoped_mode_matches_configured_engine_bit_for_bit() {
        for mode in [NonlinearMode::Exact, NonlinearMode::Fast] {
            // Engine left in the *other* mode: the scope must win.
            let other = match mode {
                NonlinearMode::Exact => NonlinearMode::Fast,
                NonlinearMode::Fast => NonlinearMode::Exact,
            };
            let mut scoped_engine = MixedEngine::new().with_nonlinear(other);
            let mut scoped = sample(5, 17);
            gelu_with_mode(&mut scoped_engine, &mut scoped, mode);
            assert_eq!(scoped_engine.nonlinear_mode(), other, "mode restored");

            let mut configured_engine = MixedEngine::new().with_nonlinear(mode);
            let mut configured = sample(5, 17);
            configured_engine.gelu(&mut configured);

            for i in 0..scoped.rows() {
                for j in 0..scoped.cols() {
                    assert_eq!(
                        scoped.get(i, j).to_bits(),
                        configured.get(i, j).to_bits(),
                        "mode {mode:?} at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn returned_count_is_the_delta_and_fast_is_cheaper() {
        let mut e = MixedEngine::new();
        let mut m1 = sample(8, 8);
        let exact = gelu_with_mode(&mut e, &mut m1, NonlinearMode::Exact);
        let mut m2 = sample(8, 8);
        let fast = gelu_with_mode(&mut e, &mut m2, NonlinearMode::Fast);
        assert!(exact.flops() > 0);
        assert!(fast.lut > 0, "fast GELU uses the LUT unit");
        // Deltas, not cumulative totals: same-size inputs give
        // same-size counts regardless of call order.
        let mut m3 = sample(8, 8);
        let exact2 = gelu_with_mode(&mut e, &mut m3, NonlinearMode::Exact);
        assert_eq!(exact, exact2);

        let unit = NonlinearUnit::recommended();
        let (se, sf) = (
            op_count_latency_s(&unit, &exact),
            op_count_latency_s(&unit, &fast),
        );
        assert!(se > sf, "fast mode must price below exact: {se} vs {sf}");
        assert!(sf > 0.0);
    }
}
