//! Vector programs: the fp32 vector unit's instruction set and a compiler
//! from non-linear functions to instruction sequences.
//!
//! The paper's argument for run-time programmability is that non-linear
//! functions keep changing, so the unit must execute *programs*, not fixed
//! kernels. This module makes that concrete: [`VInstr`] is the vector ISA
//! (element-wise multiply/add on the 4 FPU lanes, broadcast, reductions on
//! the accumulator path, exponent-unit scaling, and the host-division
//! escape hatch), [`VMachine`] interprets programs with the bit-exact
//! hardware arithmetic, and [`compile_softmax`]/[`compile_exp`] emit the
//! same operation sequences as the hand-written kernels in
//! `bfp_transformer::vpu` — *bit-identically*, which the tests pin down.

use bfp_transformer::Vpu;

/// A vector register id.
pub type VReg = usize;

/// One vector-unit instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VInstr {
    /// `dst = a + b` element-wise (equal lengths).
    Add {
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Destination.
        dst: VReg,
    },
    /// `dst = a − b` element-wise.
    Sub {
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Destination.
        dst: VReg,
    },
    /// `dst = a × b` element-wise.
    Mul {
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Destination.
        dst: VReg,
    },
    /// `dst = a + imm`.
    AddI {
        /// Operand.
        a: VReg,
        /// Immediate.
        imm: f32,
        /// Destination.
        dst: VReg,
    },
    /// `dst = a × imm`.
    MulI {
        /// Operand.
        a: VReg,
        /// Immediate.
        imm: f32,
        /// Destination.
        dst: VReg,
    },
    /// `dst = imm − a` (reverse-subtract immediate; sign flip is free
    /// through the XOR gate).
    RSubI {
        /// Operand.
        a: VReg,
        /// Immediate.
        imm: f32,
        /// Destination.
        dst: VReg,
    },
    /// `dst = a − s[0]` (broadcast the length-1 register `s`).
    SubB {
        /// Vector operand.
        a: VReg,
        /// Length-1 scalar register.
        s: VReg,
        /// Destination.
        dst: VReg,
    },
    /// `dst = a × s[0]`.
    MulB {
        /// Vector operand.
        a: VReg,
        /// Length-1 scalar register.
        s: VReg,
        /// Destination.
        dst: VReg,
    },
    /// Accumulator-path reduction: `dst = [Σ a]` (length 1, in index
    /// order, hardware adds).
    Sum {
        /// Operand.
        a: VReg,
        /// Destination (length-1).
        dst: VReg,
    },
    /// Comparator reduction: `dst = [max a]` (length 1, no FLOPs).
    Max {
        /// Operand.
        a: VReg,
        /// Destination (length-1).
        dst: VReg,
    },
    /// Exponent-unit scaling: `dst_i = a_i × 2^(k_i)` where `k` holds
    /// integer-valued floats.
    ScaleExp2 {
        /// Mantissa operand.
        a: VReg,
        /// Integer exponent operand.
        k: VReg,
        /// Destination.
        dst: VReg,
    },
    /// Exponent-unit reciprocal seed (the bit-trick initial guess that the
    /// Newton–Raphson iterations refine).
    RecipSeed {
        /// Operand.
        a: VReg,
        /// Destination.
        dst: VReg,
    },
    /// Host division `dst = a / b` (the prototype's escape hatch).
    HostDiv {
        /// Numerator.
        a: VReg,
        /// Denominator (broadcast if length 1).
        b: VReg,
        /// Destination.
        dst: VReg,
    },
}

/// A compiled vector program.
#[derive(Debug, Clone, Default)]
pub struct VProgram {
    /// Instructions in order.
    pub code: Vec<VInstr>,
}

/// The interpreter: a register file over the bit-exact VPU arithmetic,
/// with Eqn.-10-style cycle accounting.
#[derive(Debug, Default)]
pub struct VMachine {
    /// The datapath (hardware multiply/add + counters).
    pub vpu: Vpu,
    /// Vector register file.
    pub regs: Vec<Vec<f32>>,
    /// Modelled cycles consumed (4-lane bursts + pipeline fills).
    pub cycles: u64,
}

impl VMachine {
    /// A machine with an empty register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a register holding `v`; returns its id.
    pub fn alloc(&mut self, v: Vec<f32>) -> VReg {
        self.regs.push(v);
        self.regs.len() - 1
    }

    fn ensure(&mut self, reg: VReg) {
        if reg >= self.regs.len() {
            self.regs.resize(reg + 1, Vec::new());
        }
    }

    /// Cycles for an element-wise burst of `n` ops on 4 lanes (Eqn. 10).
    fn burst_cycles(n: usize) -> u64 {
        (n.div_ceil(4) + 8) as u64
    }

    /// Execute a program.
    ///
    /// # Panics
    /// Panics on malformed programs (length mismatches, unallocated
    /// sources) — programs are compiler-generated.
    pub fn run(&mut self, prog: &VProgram) {
        for instr in &prog.code {
            self.step(*instr);
        }
    }

    fn step(&mut self, instr: VInstr) {
        match instr {
            VInstr::Add { a, b, dst } => self.elementwise2(a, b, dst, |vpu, x, y| vpu.a(x, y)),
            VInstr::Sub { a, b, dst } => self.elementwise2(a, b, dst, |vpu, x, y| vpu.s(x, y)),
            VInstr::Mul { a, b, dst } => self.elementwise2(a, b, dst, |vpu, x, y| vpu.m(x, y)),
            VInstr::AddI { a, imm, dst } => self.elementwise1(a, dst, |vpu, x| vpu.a(x, imm)),
            VInstr::MulI { a, imm, dst } => self.elementwise1(a, dst, |vpu, x| vpu.m(x, imm)),
            VInstr::RSubI { a, imm, dst } => self.elementwise1(a, dst, |vpu, x| vpu.s(imm, x)),
            VInstr::SubB { a, s, dst } => {
                let sv = self.scalar(s);
                self.elementwise1(a, dst, |vpu, x| vpu.s(x, sv));
            }
            VInstr::MulB { a, s, dst } => {
                let sv = self.scalar(s);
                self.elementwise1(a, dst, |vpu, x| vpu.m(x, sv));
            }
            VInstr::Sum { a, dst } => {
                let src = self.regs[a].clone();
                let mut acc = 0f32;
                for &v in &src {
                    acc = self.vpu.a(acc, v);
                }
                self.ensure(dst);
                self.regs[dst] = vec![acc];
                // Serial accumulation on the ACC path: one add per element.
                self.cycles += (src.len() + 8) as u64;
            }
            VInstr::Max { a, dst } => {
                let src = &self.regs[a];
                assert!(!src.is_empty(), "Max of an empty register");
                let mut best = src[0];
                for &v in &src[1..] {
                    self.vpu.count.cmp += 1;
                    if v > best {
                        best = v;
                    }
                }
                let n = src.len();
                self.ensure(dst);
                self.regs[dst] = vec![best];
                self.cycles += (n + 8) as u64;
            }
            VInstr::ScaleExp2 { a, k, dst } => {
                let src = self.regs[a].clone();
                let ks = self.regs[k].clone();
                assert_eq!(src.len(), ks.len(), "ScaleExp2 length mismatch");
                let out: Vec<f32> = src
                    .iter()
                    .zip(&ks)
                    .map(|(&x, &kf)| self.vpu.scale_exp2(x, kf as i32))
                    .collect();
                self.ensure(dst);
                self.regs[dst] = out;
                self.cycles += Self::burst_cycles(src.len());
            }
            VInstr::RecipSeed { a, dst } => {
                let src = self.regs[a].clone();
                let out: Vec<f32> = src
                    .iter()
                    .map(|&x| {
                        self.vpu.count.exp_adjust += 1;
                        let y = f32::from_bits(0x7EEF_311Du32.wrapping_sub(x.abs().to_bits()));
                        if x < 0.0 {
                            -y
                        } else {
                            y
                        }
                    })
                    .collect();
                self.ensure(dst);
                self.regs[dst] = out;
                self.cycles += Self::burst_cycles(src.len());
            }
            VInstr::HostDiv { a, b, dst } => {
                let num = self.regs[a].clone();
                let den = self.regs[b].clone();
                let out: Vec<f32> = if den.len() == 1 {
                    num.iter().map(|&x| self.vpu.div_host(x, den[0])).collect()
                } else {
                    assert_eq!(num.len(), den.len(), "HostDiv length mismatch");
                    num.iter()
                        .zip(&den)
                        .map(|(&x, &y)| self.vpu.div_host(x, y))
                        .collect()
                };
                self.ensure(dst);
                self.regs[dst] = out;
                // Host round-trip: charged as stall cycles per element.
                self.cycles += (num.len() * 50) as u64;
            }
        }
    }

    fn elementwise1(&mut self, a: VReg, dst: VReg, f: impl Fn(&mut Vpu, f32) -> f32) {
        let src = self.regs[a].clone();
        let out: Vec<f32> = src.iter().map(|&x| f(&mut self.vpu, x)).collect();
        self.ensure(dst);
        self.regs[dst] = out;
        self.cycles += Self::burst_cycles(src.len());
    }

    fn elementwise2(&mut self, a: VReg, b: VReg, dst: VReg, f: impl Fn(&mut Vpu, f32, f32) -> f32) {
        let xa = self.regs[a].clone();
        let xb = self.regs[b].clone();
        assert_eq!(xa.len(), xb.len(), "element-wise length mismatch");
        let out: Vec<f32> = xa
            .iter()
            .zip(&xb)
            .map(|(&x, &y)| f(&mut self.vpu, x, y))
            .collect();
        self.ensure(dst);
        self.regs[dst] = out;
        self.cycles += Self::burst_cycles(xa.len());
    }

    fn scalar(&self, s: VReg) -> f32 {
        assert_eq!(self.regs[s].len(), 1, "broadcast source must be length 1");
        self.regs[s][0]
    }
}

/// A small register allocator for the compilers.
#[derive(Debug)]
pub struct VBuilder {
    next: VReg,
    /// Program under construction.
    pub prog: VProgram,
}

impl VBuilder {
    /// Start allocating after the caller's `reserved` input registers.
    pub fn new(reserved: usize) -> Self {
        VBuilder {
            next: reserved,
            prog: VProgram::default(),
        }
    }

    /// A fresh register id.
    pub fn fresh(&mut self) -> VReg {
        let r = self.next;
        self.next += 1;
        r
    }

    fn emit(&mut self, i: VInstr) {
        self.prog.code.push(i);
    }
}

/// The exp2 Taylor coefficients shared with `bfp_transformer::vpu` (same
/// values, so the compiled program is bit-identical to the kernel).
const EXP2_POLY: [f32; 6] = [
    1.0,
    std::f32::consts::LN_2,
    0.240_226_5,
    0.055_504_11,
    0.009_618_13,
    0.001_333_36,
];
const ROUND_MAGIC: f32 = 12_582_912.0;

/// Emit `e^x` for register `x` (any length); returns the result register.
/// Identical operation sequence to `Vpu::exp`: range reduction with the
/// truncating-adder rounding trick, degree-5 Horner, EU scaling.
pub fn compile_exp(b: &mut VBuilder, x: VReg) -> VReg {
    let t = b.fresh();
    b.emit(VInstr::MulI {
        a: x,
        imm: std::f32::consts::LOG2_E,
        dst: t,
    });
    let th = b.fresh();
    b.emit(VInstr::AddI {
        a: t,
        imm: 0.5,
        dst: th,
    });
    let sh = b.fresh();
    b.emit(VInstr::AddI {
        a: th,
        imm: ROUND_MAGIC,
        dst: sh,
    });
    let kf = b.fresh();
    b.emit(VInstr::AddI {
        a: sh,
        imm: -ROUND_MAGIC,
        dst: kf,
    });
    let f = b.fresh();
    b.emit(VInstr::Sub {
        a: t,
        b: kf,
        dst: f,
    });
    // Horner with p seeded by the constant c5: p = f*c5 + c4; ...
    let mut p = b.fresh();
    b.emit(VInstr::MulI {
        a: f,
        imm: EXP2_POLY[5],
        dst: p,
    });
    b.emit(VInstr::AddI {
        a: p,
        imm: EXP2_POLY[4],
        dst: p,
    });
    for c in EXP2_POLY[..4].iter().rev() {
        let pf = b.fresh();
        b.emit(VInstr::Mul {
            a: p,
            b: f,
            dst: pf,
        });
        let pn = b.fresh();
        b.emit(VInstr::AddI {
            a: pf,
            imm: *c,
            dst: pn,
        });
        p = pn;
    }
    let out = b.fresh();
    b.emit(VInstr::ScaleExp2 {
        a: p,
        k: kf,
        dst: out,
    });
    out
}

/// Emit `1/x` (Newton–Raphson, same sequence as `Vpu::recip`).
pub fn compile_recip(b: &mut VBuilder, x: VReg, iters: u32) -> VReg {
    let mut y = b.fresh();
    b.emit(VInstr::RecipSeed { a: x, dst: y });
    for _ in 0..iters {
        let xy = b.fresh();
        b.emit(VInstr::Mul {
            a: x,
            b: y,
            dst: xy,
        });
        let e = b.fresh();
        b.emit(VInstr::RSubI {
            a: xy,
            imm: 2.0,
            dst: e,
        });
        let yn = b.fresh();
        b.emit(VInstr::Mul {
            a: y,
            b: e,
            dst: yn,
        });
        y = yn;
    }
    y
}

/// Where the softmax normalisation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivMode {
    /// The prototype's host division.
    Host,
    /// On-chip Newton–Raphson reciprocal.
    OnChip,
}

/// Compile a full softmax over input register `x`; returns the output
/// register. With [`DivMode::OnChip`] the program is bit-identical to
/// `Vpu::softmax_row_onchip`.
pub fn compile_softmax(b: &mut VBuilder, x: VReg, mode: DivMode) -> VReg {
    let m = b.fresh();
    b.emit(VInstr::Max { a: x, dst: m });
    let shifted = b.fresh();
    b.emit(VInstr::SubB {
        a: x,
        s: m,
        dst: shifted,
    });
    let e = compile_exp(b, shifted);
    let s = b.fresh();
    b.emit(VInstr::Sum { a: e, dst: s });
    let out = b.fresh();
    match mode {
        DivMode::Host => b.emit(VInstr::HostDiv {
            a: e,
            b: s,
            dst: out,
        }),
        DivMode::OnChip => {
            let inv = compile_recip(b, s, 3);
            b.emit(VInstr::MulB {
                a: e,
                s: inv,
                dst: out,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits(n: usize) -> Vec<f32> {
        (0..n).map(|k| (k as f32 * 0.47).sin() * 6.0).collect()
    }

    #[test]
    fn compiled_exp_is_bit_identical_to_the_kernel() {
        let xs: Vec<f32> = (-40..=40).map(|k| k as f32 * 0.31).collect();
        let mut m = VMachine::new();
        let x = m.alloc(xs.clone());
        let mut b = VBuilder::new(m.regs.len());
        let out = compile_exp(&mut b, x);
        m.run(&b.prog);
        let mut vpu = Vpu::new();
        for (k, &xv) in xs.iter().enumerate() {
            assert_eq!(
                m.regs[out][k].to_bits(),
                vpu.exp(xv).to_bits(),
                "exp({xv}) diverges from the kernel"
            );
        }
    }

    #[test]
    fn compiled_softmax_onchip_is_bit_identical_to_the_kernel() {
        let src = logits(97);
        let mut m = VMachine::new();
        let x = m.alloc(src.clone());
        let mut b = VBuilder::new(m.regs.len());
        let out = compile_softmax(&mut b, x, DivMode::OnChip);
        m.run(&b.prog);

        let mut vpu = Vpu::new();
        let mut want = src.clone();
        vpu.softmax_row_onchip(&mut want);
        for k in 0..src.len() {
            assert_eq!(m.regs[out][k].to_bits(), want[k].to_bits(), "element {k}");
        }
        // Operation accounting matches too.
        assert_eq!(m.vpu.count, vpu.count);
    }

    #[test]
    fn compiled_softmax_host_matches_host_kernel() {
        let src = logits(64);
        let mut m = VMachine::new();
        let x = m.alloc(src.clone());
        let mut b = VBuilder::new(m.regs.len());
        let out = compile_softmax(&mut b, x, DivMode::Host);
        m.run(&b.prog);

        let mut vpu = Vpu::new();
        let mut want = src.clone();
        vpu.softmax_row(&mut want);
        for k in 0..src.len() {
            assert_eq!(m.regs[out][k].to_bits(), want[k].to_bits(), "element {k}");
        }
        assert_eq!(m.vpu.count.host_div, 64);
    }

    #[test]
    fn a_brand_new_activation_compiles_from_the_same_isa() {
        // The run-time-programmability claim: SiLU never existed when the
        // "hardware" was built, yet it compiles to the same instructions.
        // silu(x) = x * sigmoid(x) = x * recip(1 + exp(-x))
        let src: Vec<f32> = (-30..=30).map(|k| k as f32 * 0.2).collect();
        let mut m = VMachine::new();
        let x = m.alloc(src.clone());
        let mut b = VBuilder::new(m.regs.len());
        let negx = b.fresh();
        b.prog.code.push(VInstr::MulI {
            a: x,
            imm: -1.0,
            dst: negx,
        });
        let e = compile_exp(&mut b, negx);
        let d = b.fresh();
        b.prog.code.push(VInstr::AddI {
            a: e,
            imm: 1.0,
            dst: d,
        });
        let r = compile_recip(&mut b, d, 3);
        let out = b.fresh();
        b.prog.code.push(VInstr::Mul {
            a: x,
            b: r,
            dst: out,
        });
        m.run(&b.prog);
        for (k, &xv) in src.iter().enumerate() {
            let want = xv as f64 / (1.0 + (-xv as f64).exp());
            assert!(
                (m.regs[out][k] as f64 - want).abs() < 2e-5,
                "silu({xv}): {} vs {want}",
                m.regs[out][k]
            );
        }
        assert_eq!(m.vpu.count.host_div, 0);
    }

    #[test]
    fn cycle_accounting_scales_with_length_and_lanes() {
        let mut m = VMachine::new();
        let x = m.alloc(vec![1.0; 128]);
        let mut b = VBuilder::new(m.regs.len());
        let dst = b.fresh();
        b.prog.code.push(VInstr::AddI {
            a: x,
            imm: 1.0,
            dst,
        });
        m.run(&b.prog);
        // 128 elements over 4 lanes + 8 fill.
        assert_eq!(m.cycles, 32 + 8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn malformed_programs_are_rejected() {
        let mut m = VMachine::new();
        let a = m.alloc(vec![1.0; 4]);
        let b_reg = m.alloc(vec![1.0; 5]);
        let mut b = VBuilder::new(m.regs.len());
        let dst = b.fresh();
        b.prog.code.push(VInstr::Add { a, b: b_reg, dst });
        m.run(&b.prog);
    }
}
