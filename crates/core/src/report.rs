//! Plain-text table rendering for the reproduction binaries.
//!
//! The implementation moved to `bfp_telemetry::report` so the stats
//! types below `bfp-core` in the dependency graph (platform, serve)
//! can render through the same `Table`; this module re-exports it to
//! keep `bfp_core::report::Table` / `bfp_core::Table` working.

pub use bfp_telemetry::report::*;
