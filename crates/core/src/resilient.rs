//! Graceful degradation: execute GEMMs tile by tile with fault detection,
//! capped-backoff retry, cycle-exact cross-checking, and per-layer fp32
//! fallback.
//!
//! The pipeline mirrors what a radiation-tolerant deployment of the card
//! would do in firmware:
//!
//! 1. **Detect** — after each output block-row ("tile"), read the delta of
//!    the hardware protection counters (ECC/TMR uncorrected events are
//!    hardware-visible) and run the `bfp_arith::guard` numeric guardrails
//!    over the tile's values.
//! 2. **Cross-check** — when the injection telemetry reports *silent*
//!    perturbations (P-register/PSU flips, stuck lanes, dropped partials
//!    have no ECC coverage), optionally re-execute the tile under
//!    [`Fidelity::Stepped`] and compare bit-for-bit — the model's analogue
//!    of a residue/duplication check.
//! 3. **Retry** — a detected tile is re-executed after a capped
//!    exponential backoff (transient upsets de-assert; `nth`-triggered
//!    plan entries have already fired, so replays are clean).
//! 4. **Fall back** — a tile that stays faulty across all retries (a
//!    persistent defect: stuck lane, latched BRAM cell) is recomputed in
//!    fp32 on the vector path, and the degradation is counted.
//!
//! Every action is accounted in a [`FaultReport`], which callers surface
//! through [`crate::GemmReport`] / `SystemStats`.

use bfp_arith::cancel::CancelToken;
use bfp_arith::error::ArithError;
use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_faults::FaultReport;
use bfp_pu::unit::{grid_from_matrix, BlockGrid, Fidelity, ProcessingUnit, UnitConfig};
use bfp_pu::CycleStats;

/// How hard the recovery layer tries before degrading precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Re-executions allowed per tile after a detected fault.
    pub max_retries: u32,
    /// Backoff before the first retry, in cycles.
    pub backoff_base_cycles: u64,
    /// Ceiling for the exponential backoff, in cycles.
    pub backoff_cap_cycles: u64,
    /// Re-run tiles with silent perturbations under [`Fidelity::Stepped`]
    /// and compare bit-for-bit.
    pub stepped_crosscheck: bool,
    /// Recompute irrecoverable tiles (and unquantizable layers) in fp32
    /// instead of returning an error.
    pub fp32_fallback: bool,
    /// Fidelity of the primary tile execution.
    pub fidelity: Fidelity,
    /// Largest finite magnitude the guardrails accept in a tile output
    /// before declaring it corrupted (catches exponent-field upsets that
    /// stay finite). `f32::INFINITY` disables the watermark.
    pub overflow_watermark: f32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_base_cycles: 32,
            backoff_cap_cycles: 256,
            stepped_crosscheck: true,
            fp32_fallback: true,
            fidelity: Fidelity::Functional,
            overflow_watermark: f32::INFINITY,
        }
    }
}

impl RecoveryPolicy {
    /// No recovery at all: detection still runs, but a detected fault is
    /// immediately a typed error (or an fp32 fallback is never taken).
    pub fn strict() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            stepped_crosscheck: false,
            fp32_fallback: false,
            ..Self::default()
        }
    }

    /// Backoff before retry number `attempt` (zero-based), capped.
    ///
    /// `base << attempt` is computed with explicit saturation: a shift
    /// that would push any set bit out of the u64 yields `u64::MAX` (then
    /// the cap), never a silently wrapped small value — a wrapped backoff
    /// of 0 cycles would turn a capped retry loop into a hot spin.
    pub fn backoff(&self, attempt: u32) -> u64 {
        if self.backoff_base_cycles == 0 {
            // 0 << n is 0 for every n; without this case the saturation
            // guard below would misreport u64::MAX for large attempts.
            return 0;
        }
        // The top set bit of `base` sits at 63 - leading_zeros; shifting
        // by more than leading_zeros loses bits, so saturate there.
        let shifted = if attempt > self.backoff_base_cycles.leading_zeros() {
            u64::MAX
        } else {
            self.backoff_base_cycles << attempt
        };
        shifted.min(self.backoff_cap_cycles)
    }
}

/// Outcome of a resilient GEMM: the (possibly partially degraded) result
/// plus everything that happened along the way.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The output matrix. Tiles that fell back are fp32-exact; healthy
    /// tiles are the usual dequantized bfp8 product.
    pub out: MatF32,
    /// Fault and recovery accounting for the whole GEMM.
    pub report: FaultReport,
    /// Aggregate cycle statistics across all tile executions (retries and
    /// cross-checks included — recovery work costs real cycles).
    pub stats: CycleStats,
}

/// Execute `a × b` in bfp8 with the full detect → retry → cross-check →
/// fall-back pipeline, one output block-row at a time.
///
/// Returns a typed error only when recovery is disabled by `policy` (or
/// for dimension mismatches, which no amount of retrying fixes).
pub fn resilient_matmul(
    a: &MatF32,
    b: &MatF32,
    quantizer: &Quantizer,
    policy: &RecoveryPolicy,
) -> Result<ResilientOutcome, ArithError> {
    resilient_matmul_with(a, b, quantizer, policy, &CancelToken::new())
}

/// [`resilient_matmul`] with a cooperative cancel/deadline token.
///
/// The token is polled at every tile boundary and before every backoff
/// retry — the executor's natural preemption points — so a serving
/// runtime can revoke a GEMM whose deadline has passed (or whose array is
/// being drained for quarantine) without waiting for the whole product.
/// A fired token surfaces as [`ArithError::Cancelled`]; tiles already
/// committed are discarded with the partial output.
pub fn resilient_matmul_with(
    a: &MatF32,
    b: &MatF32,
    quantizer: &Quantizer,
    policy: &RecoveryPolicy,
    cancel: &CancelToken,
) -> Result<ResilientOutcome, ArithError> {
    if a.cols() != b.rows() {
        return Err(ArithError::DimensionMismatch {
            got: format!("lhs {}x{}, rhs {}x{}", a.rows(), a.cols(), b.rows(), b.cols()),
            expected: "lhs cols == rhs rows".into(),
        });
    }

    let mut report = FaultReport::default();

    // Layer-level degradation: operands the quantizer rejects (non-finite
    // values) can never run on the bfp8 path, so the whole layer falls
    // back to fp32 — the same policy `MixedEngine` applies.
    let (qa, qb) = match (quantizer.quantize(a), quantizer.quantize(b)) {
        (Ok(qa), Ok(qb)) => (qa, qb),
        (ra, rb) => {
            let err = ra.err().or(rb.err()).expect("one side failed");
            if !policy.fp32_fallback {
                return Err(err);
            }
            report.detected += 1;
            report.fp32_fallbacks += 1;
            return Ok(ResilientOutcome {
                out: a.matmul(b),
                report,
                stats: CycleStats::default(),
            });
        }
    };

    let ga = grid_from_matrix(&qa);
    let gb = grid_from_matrix(&qb);
    let mut out = MatF32::zeros(a.rows(), b.cols());
    let mut stats = CycleStats::default();

    for (bi, row) in ga.iter().enumerate() {
        cancel.check()?;
        let tile: BlockGrid = vec![row.clone()];
        let mut attempt = 0u32;
        loop {
            let (values, delta, s) = run_tile(&tile, &gb, policy.fidelity);
            stats.merge(&s);
            report.counters.merge(&delta);

            let mut faulty = delta.uncorrected() > 0 || !tile_clean(&values, policy);

            // Silent events (no ECC/TMR coverage) may or may not have
            // perturbed the numerics; confirm with a cycle-exact replay
            // before paying for a retry.
            if !faulty && delta.silent() > 0 && policy.stepped_crosscheck {
                report.stepped_crosschecks += 1;
                let (check, check_delta, cs) = run_tile(&tile, &gb, Fidelity::Stepped);
                stats.merge(&cs);
                report.counters.merge(&check_delta);
                faulty = check != values || check_delta.uncorrected() > 0;
            }

            if !faulty {
                commit_tile(&mut out, bi, &values, b.cols());
                break;
            }

            report.detected += 1;
            if attempt < policy.max_retries {
                // A retry burns backoff cycles; don't start one the
                // deadline can no longer afford.
                cancel.check()?;
                report.retries += 1;
                report.backoff_cycles += policy.backoff(attempt);
                attempt += 1;
                continue;
            }

            // Retries exhausted: persistent defect. Degrade this tile's
            // block-row to fp32 on the vector path.
            if !policy.fp32_fallback {
                return Err(ArithError::AccumulatorOverflow);
            }
            report.fp32_fallbacks += 1;
            let rows = tile_rows(bi, a.rows());
            for i in rows.clone() {
                for j in 0..b.cols() {
                    let mut acc = 0f64;
                    for k in 0..a.cols() {
                        acc += a.get(i, k) as f64 * b.get(k, j) as f64;
                    }
                    out.set(i, j, acc as f32);
                }
            }
            break;
        }
    }

    Ok(ResilientOutcome { out, report, stats })
}

/// Execute one tile (a block-row strip against all of `y`) on a fresh
/// unit, returning the dequantized values and the fault-counter delta.
fn run_tile(
    x: &BlockGrid,
    y: &BlockGrid,
    fidelity: Fidelity,
) -> (Vec<Vec<f32>>, bfp_faults::FaultCounters, CycleStats) {
    let before = bfp_faults::counters();
    let mut unit = ProcessingUnit::new(UnitConfig {
        fidelity,
        ..UnitConfig::default()
    });
    let wide = unit.matmul_grid(x, y);
    let delta = bfp_faults::counters() - before;

    let nb = wide[0].len();
    let mut values = vec![vec![0f32; nb * 8]; 8];
    for (bj, w) in wide[0].iter().enumerate() {
        let scale = (w.exp as f64).exp2();
        for i in 0..8 {
            for j in 0..8 {
                values[i][bj * 8 + j] = (w.man[i][j] as f64 * scale) as f32;
            }
        }
    }
    (values, delta, unit.take_stats())
}

/// Numeric guardrails over one tile's dequantized values.
fn tile_clean(values: &[Vec<f32>], policy: &RecoveryPolicy) -> bool {
    values
        .iter()
        .flatten()
        .all(|v| v.is_finite() && v.abs() <= policy.overflow_watermark)
}

/// Rows of the output covered by block-row `bi`.
fn tile_rows(bi: usize, rows: usize) -> std::ops::Range<usize> {
    bi * 8..((bi + 1) * 8).min(rows)
}

/// Write a tile's values into the output, clipping grid padding.
fn commit_tile(out: &mut MatF32, bi: usize, values: &[Vec<f32>], cols: usize) {
    let rows = out.rows();
    for i in tile_rows(bi, rows) {
        for j in 0..cols {
            out.set(i, j, values[i - bi * 8][j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| ((i * cols + j) % 13) as f32 - 6.0)
    }

    #[test]
    fn clean_run_matches_plain_quantized_matmul() {
        let a = ramp(24, 16);
        let b = ramp(16, 24);
        let q = Quantizer::paper();
        let got = resilient_matmul(&a, &b, &q, &RecoveryPolicy::default()).unwrap();
        assert!(got.report.is_clean(), "{}", got.report);
        assert_eq!(got.out, a.matmul(&b), "exact integer inputs stay exact");
        assert!(got.stats.cycles > 0);
    }

    #[test]
    fn dimension_mismatch_is_typed_not_panicking() {
        let q = Quantizer::paper();
        let err = resilient_matmul(&ramp(8, 8), &ramp(16, 8), &q, &RecoveryPolicy::default())
            .unwrap_err();
        assert!(matches!(err, ArithError::DimensionMismatch { .. }));
    }

    #[test]
    fn non_finite_layer_falls_back_to_fp32() {
        let mut a = ramp(16, 8);
        a.set(0, 0, f32::NAN);
        let b = ramp(8, 8);
        let q = Quantizer::paper();
        let got = resilient_matmul(&a, &b, &q, &RecoveryPolicy::default()).unwrap();
        assert_eq!(got.report.fp32_fallbacks, 1);
        assert_eq!(got.report.detected, 1);
        // Clean rows still compute; the NaN propagates exactly as fp32.
        assert_eq!(got.out.get(8, 0), a.matmul(&b).get(8, 0));
    }

    #[test]
    fn strict_policy_surfaces_the_error_instead() {
        let mut a = ramp(16, 8);
        a.set(0, 0, f32::INFINITY);
        let q = Quantizer::paper();
        let err = resilient_matmul(&a, &ramp(8, 8), &q, &RecoveryPolicy::strict()).unwrap_err();
        assert!(matches!(err, ArithError::NonFinite { at: (0, 0) }));
    }

    #[test]
    fn cancelled_token_aborts_between_tiles() {
        let a = ramp(24, 16);
        let b = ramp(16, 24);
        let q = Quantizer::paper();
        let token = CancelToken::new();
        token.cancel();
        let err = resilient_matmul_with(&a, &b, &q, &RecoveryPolicy::default(), &token)
            .expect_err("cancelled before the first tile");
        assert_eq!(err, ArithError::Cancelled { expired: false });
        // A live token changes nothing.
        let got = resilient_matmul_with(&a, &b, &q, &RecoveryPolicy::default(), &CancelToken::new())
            .unwrap();
        assert_eq!(got.out, a.matmul(&b));
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff(0), 32);
        assert_eq!(p.backoff(1), 64);
        assert_eq!(p.backoff(2), 128);
        assert_eq!(p.backoff(3), 256);
        assert_eq!(p.backoff(10), 256, "capped");
        assert_eq!(p.backoff(200), 256, "shift saturates");
    }

    #[test]
    fn backoff_saturates_at_the_cap_boundary_instead_of_overflowing() {
        // Uncapped policy: the doubling itself must saturate. The top set
        // bit of base=3 is at position 1, so attempt 62 is the last exact
        // shift and 63 is the first that would lose a bit.
        let p = RecoveryPolicy {
            backoff_base_cycles: 3,
            backoff_cap_cycles: u64::MAX,
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.backoff(62), 3u64 << 62, "last exact doubling");
        assert_eq!(p.backoff(63), u64::MAX, "first lossy shift saturates");
        assert_eq!(p.backoff(u32::MAX), u64::MAX, "never wraps");

        // base << attempt exceeding u64 still lands exactly on the cap.
        let p = RecoveryPolicy {
            backoff_base_cycles: 1 << 40,
            backoff_cap_cycles: 1 << 50,
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.backoff(9), 1 << 49);
        assert_eq!(p.backoff(10), 1 << 50, "reaches the cap exactly");
        assert_eq!(p.backoff(11), 1 << 50);
        assert_eq!(p.backoff(64), 1 << 50, "saturated shift is capped");

        // A zero base never backs off, no matter how many retries: the
        // saturation guard must not turn 0 << n into u64::MAX.
        let p = RecoveryPolicy {
            backoff_base_cycles: 0,
            backoff_cap_cycles: u64::MAX,
            ..RecoveryPolicy::default()
        };
        for attempt in [0, 1, 63, 64, 65, u32::MAX] {
            assert_eq!(p.backoff(attempt), 0, "attempt {attempt}");
        }
    }
}
