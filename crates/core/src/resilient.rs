//! Graceful degradation: execute GEMMs tile by tile with fault detection,
//! capped-backoff retry, checksum verification, and per-layer fp32
//! fallback.
//!
//! The pipeline mirrors what a radiation-tolerant deployment of the card
//! would do in firmware:
//!
//! 1. **Verify** — the default [`VerifyMode::Abft`] runs the GEMM on the
//!    checksum-protected packed kernel ([`bfp_arith::AbftPacked`]): every
//!    output chain carries an exact row/column checksum invariant, so any
//!    numeric corruption — including silent DSP/PSU upsets with no ECC
//!    coverage — is detected at chain granularity, and single-element
//!    faults are *corrected algebraically in place* without re-execution.
//!    The legacy [`VerifyMode::Stepped`] instead re-executes tiles whose
//!    injection telemetry reports silent perturbations under
//!    [`Fidelity::Stepped`] and compares bit-for-bit (a full duplication
//!    check, ~2× the cost of the ~25% checksum overhead).
//! 2. **Detect** — after each output block-row ("tile"), read the delta of
//!    the hardware protection counters (ECC/TMR uncorrected events are
//!    hardware-visible) and run the `bfp_arith::guard` numeric guardrails
//!    over the tile's values.
//! 3. **Retry** — a detected-but-uncorrected tile is re-executed after a
//!    capped exponential backoff (transient upsets de-assert;
//!    `nth`-triggered plan entries have already fired, so replays are
//!    clean).
//! 4. **Fall back** — a tile that stays faulty across all retries (a
//!    persistent defect: stuck lane, latched BRAM cell) is recomputed in
//!    fp32 on the vector path, and the degradation is counted.
//!
//! Every action is accounted in a [`FaultReport`], which callers surface
//! through [`crate::GemmReport`] / `SystemStats`. ABFT in-place repairs
//! land in `abft_corrections` — distinct from `fp32_fallbacks`, because a
//! corrected chain never left the bfp8 path.

use bfp_arith::abft::{AbftOptions, AbftPacked};
use bfp_arith::cancel::CancelToken;
use bfp_arith::error::ArithError;
use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_faults::FaultReport;
use bfp_pu::unit::{grid_from_matrix, BlockGrid, Fidelity, ProcessingUnit, UnitConfig};
use bfp_pu::CycleStats;

/// Which verification scheme guards the primary bfp8 execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// No verification beyond the hardware counters and guardrails.
    None,
    /// Re-execute tiles with silent perturbations under
    /// [`Fidelity::Stepped`] and compare bit-for-bit (duplication check).
    Stepped,
    /// Checksum-protected kernel: exact ABFT invariant per output chain
    /// with in-place single-element correction. The default.
    #[default]
    Abft,
}

/// How hard the recovery layer tries before degrading precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Re-executions allowed per tile after a detected fault.
    pub max_retries: u32,
    /// Backoff before the first retry, in cycles.
    pub backoff_base_cycles: u64,
    /// Ceiling for the exponential backoff, in cycles.
    pub backoff_cap_cycles: u64,
    /// Verification scheme for the primary execution (see [`VerifyMode`]).
    pub verify: VerifyMode,
    /// Recompute irrecoverable tiles (and unquantizable layers) in fp32
    /// instead of returning an error.
    pub fp32_fallback: bool,
    /// Fidelity of the primary tile execution.
    pub fidelity: Fidelity,
    /// Largest finite magnitude the guardrails accept in a tile output
    /// before declaring it corrupted (catches exponent-field upsets that
    /// stay finite). `f32::INFINITY` disables the watermark.
    pub overflow_watermark: f32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_base_cycles: 32,
            backoff_cap_cycles: 256,
            verify: VerifyMode::Abft,
            fp32_fallback: true,
            fidelity: Fidelity::Functional,
            overflow_watermark: f32::INFINITY,
        }
    }
}

impl RecoveryPolicy {
    /// No recovery at all: detection still runs, but a detected fault is
    /// immediately a typed error (or an fp32 fallback is never taken).
    pub fn strict() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            verify: VerifyMode::None,
            fp32_fallback: false,
            ..Self::default()
        }
    }

    /// Backoff before retry number `attempt` (zero-based), capped.
    ///
    /// `base << attempt` is computed with explicit saturation: a shift
    /// that would push any set bit out of the u64 yields `u64::MAX` (then
    /// the cap), never a silently wrapped small value — a wrapped backoff
    /// of 0 cycles would turn a capped retry loop into a hot spin.
    pub fn backoff(&self, attempt: u32) -> u64 {
        if self.backoff_base_cycles == 0 {
            // 0 << n is 0 for every n; without this case the saturation
            // guard below would misreport u64::MAX for large attempts.
            return 0;
        }
        // The top set bit of `base` sits at 63 - leading_zeros; shifting
        // by more than leading_zeros loses bits, so saturate there.
        let shifted = if attempt > self.backoff_base_cycles.leading_zeros() {
            u64::MAX
        } else {
            self.backoff_base_cycles << attempt
        };
        shifted.min(self.backoff_cap_cycles)
    }
}

/// Outcome of a resilient GEMM: the (possibly partially degraded) result
/// plus everything that happened along the way.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The output matrix. Tiles that fell back are fp32-exact; healthy
    /// tiles are the usual dequantized bfp8 product.
    pub out: MatF32,
    /// Fault and recovery accounting for the whole GEMM.
    pub report: FaultReport,
    /// Aggregate cycle statistics across all tile executions (retries and
    /// cross-checks included — recovery work costs real cycles).
    pub stats: CycleStats,
}

/// Execute `a × b` in bfp8 with the full detect → retry → cross-check →
/// fall-back pipeline, one output block-row at a time.
///
/// Returns a typed error only when recovery is disabled by `policy` (or
/// for dimension mismatches, which no amount of retrying fixes).
pub fn resilient_matmul(
    a: &MatF32,
    b: &MatF32,
    quantizer: &Quantizer,
    policy: &RecoveryPolicy,
) -> Result<ResilientOutcome, ArithError> {
    resilient_matmul_with(a, b, quantizer, policy, &CancelToken::new())
}

/// [`resilient_matmul`] with a cooperative cancel/deadline token.
///
/// The token is polled at every tile boundary and before every backoff
/// retry — the executor's natural preemption points — so a serving
/// runtime can revoke a GEMM whose deadline has passed (or whose array is
/// being drained for quarantine) without waiting for the whole product.
/// A fired token surfaces as [`ArithError::Cancelled`]; tiles already
/// committed are discarded with the partial output.
pub fn resilient_matmul_with(
    a: &MatF32,
    b: &MatF32,
    quantizer: &Quantizer,
    policy: &RecoveryPolicy,
    cancel: &CancelToken,
) -> Result<ResilientOutcome, ArithError> {
    if a.cols() != b.rows() {
        return Err(ArithError::DimensionMismatch {
            got: format!("lhs {}x{}, rhs {}x{}", a.rows(), a.cols(), b.rows(), b.cols()),
            expected: "lhs cols == rhs rows".into(),
        });
    }

    if policy.verify == VerifyMode::Abft {
        return abft_matmul(a, b, quantizer, policy, cancel);
    }

    let mut report = FaultReport::default();

    // Layer-level degradation: operands the quantizer rejects (non-finite
    // values) can never run on the bfp8 path, so the whole layer falls
    // back to fp32 — the same policy `MixedEngine` applies.
    let (qa, qb) = match (quantizer.quantize(a), quantizer.quantize(b)) {
        (Ok(qa), Ok(qb)) => (qa, qb),
        (ra, rb) => {
            let err = ra.err().or(rb.err()).expect("one side failed");
            if !policy.fp32_fallback {
                return Err(err);
            }
            report.detected += 1;
            report.fp32_fallbacks += 1;
            return Ok(ResilientOutcome {
                out: a.matmul(b),
                report,
                stats: CycleStats::default(),
            });
        }
    };

    let ga = grid_from_matrix(&qa);
    let gb = grid_from_matrix(&qb);
    let mut out = MatF32::zeros(a.rows(), b.cols());
    let mut stats = CycleStats::default();

    for (bi, row) in ga.iter().enumerate() {
        cancel.check()?;
        let tile: BlockGrid = vec![row.clone()];
        let mut attempt = 0u32;
        loop {
            let (values, delta, s) = run_tile(&tile, &gb, policy.fidelity);
            stats.merge(&s);
            report.counters.merge(&delta);

            let mut faulty = delta.uncorrected() > 0 || !tile_clean(&values, policy);

            // Silent events (no ECC/TMR coverage) may or may not have
            // perturbed the numerics; confirm with a cycle-exact replay
            // before paying for a retry.
            if !faulty && delta.silent() > 0 && policy.verify == VerifyMode::Stepped {
                report.stepped_crosschecks += 1;
                let (check, check_delta, cs) = run_tile(&tile, &gb, Fidelity::Stepped);
                stats.merge(&cs);
                report.counters.merge(&check_delta);
                faulty = check != values || check_delta.uncorrected() > 0;
            }

            if !faulty {
                commit_tile(&mut out, bi, &values, b.cols());
                break;
            }

            report.detected += 1;
            if attempt < policy.max_retries {
                // A retry burns backoff cycles; don't start one the
                // deadline can no longer afford.
                cancel.check()?;
                report.retries += 1;
                report.backoff_cycles += policy.backoff(attempt);
                attempt += 1;
                continue;
            }

            // Retries exhausted: persistent defect. Degrade this tile's
            // block-row to fp32 on the vector path.
            if !policy.fp32_fallback {
                return Err(ArithError::AccumulatorOverflow);
            }
            report.fp32_fallbacks += 1;
            let rows = tile_rows(bi, a.rows());
            for i in rows.clone() {
                for j in 0..b.cols() {
                    let mut acc = 0f64;
                    for k in 0..a.cols() {
                        acc += a.get(i, k) as f64 * b.get(k, j) as f64;
                    }
                    out.set(i, j, acc as f32);
                }
            }
            break;
        }
    }

    Ok(ResilientOutcome { out, report, stats })
}

/// The [`VerifyMode::Abft`] execution path: pack both operands with
/// checksum lanes once, then run the checked kernel one output block-row
/// at a time. A chain the kernel corrects in place costs nothing beyond
/// the checksum maintenance already paid; only *uncorrectable* chains (or
/// hardware-flagged uncorrected events, or guardrail violations) enter
/// the retry → fp32-fallback ladder.
fn abft_matmul(
    a: &MatF32,
    b: &MatF32,
    quantizer: &Quantizer,
    policy: &RecoveryPolicy,
    cancel: &CancelToken,
) -> Result<ResilientOutcome, ArithError> {
    let mut report = FaultReport::default();

    // Layer-level degradation, same policy as the legacy path: operands
    // the quantizer rejects can never run on the bfp8 path.
    let (pa, pb) = match (
        AbftPacked::quantize_pack_lhs(quantizer, a),
        AbftPacked::quantize_pack_rhs(quantizer, b),
    ) {
        (Ok(pa), Ok(pb)) => (pa, pb),
        (ra, rb) => {
            let err = ra.err().or_else(|| rb.err()).expect("one side failed");
            if !policy.fp32_fallback {
                return Err(err);
            }
            report.detected += 1;
            report.fp32_fallbacks += 1;
            return Ok(ResilientOutcome {
                out: a.matmul(b),
                report,
                stats: CycleStats::default(),
            });
        }
    };

    let blk = pa.packed().block();
    let (mb, _) = pa.packed().grid();
    let n = b.cols();
    let k = a.cols();
    let mut out = MatF32::zeros(a.rows(), n);
    let mut stats = CycleStats::default();
    let mem = bfp_platform::MemParams::paper_calibrated();

    for bi in 0..mb {
        cancel.check()?;
        let r0 = bi * blk;
        let r1 = ((bi + 1) * blk).min(a.rows());
        let mut attempt = 0u32;
        loop {
            let buf = &mut out.data_mut()[r0 * n..r1 * n];
            let before = bfp_faults::counters();
            let r = pa.matmul_rows_into(&pb, bi, bi + 1, buf, &mut AbftOptions::default());
            let delta = bfp_faults::counters() - before;
            report.counters.merge(&delta);

            // Checksum-layer accounting: every invariant mismatch is a
            // detection; in-place repairs are corrections, reported
            // distinctly from fp32_fallbacks (the chain never degraded).
            report.abft_detections += r.detections;
            report.abft_corrections += r.corrections();
            report.detected += r.detections;
            let hw_uncorrected = delta.uncorrected() > 0;
            if hw_uncorrected && r.detections == 0 {
                // Hardware flagged an event the checksums cannot see
                // (e.g. a shared-exponent double-bit upset perturbs data
                // and checksum paths consistently): still a detection.
                report.detected += 1;
            }

            // Modelled cost of this strip: the plain Eqn. 9 pass plus the
            // checksum-maintenance overhead, prorated to one block-row.
            let strip = crate::scheduler::gemm_cycles_one_array(r1 - r0, k, n, &mem)
                + crate::scheduler::abft_overhead_cycles(r1 - r0, k, n);
            stats.cycles += strip.ceil() as u64;
            stats.bfp_ops += 2 * ((r1 - r0) * k * n) as u64;

            let faulty =
                !r.uncorrected.is_empty() || hw_uncorrected || !rows_clean(buf, policy);
            if !faulty {
                break;
            }

            if attempt < policy.max_retries {
                cancel.check()?;
                report.retries += 1;
                report.backoff_cycles += policy.backoff(attempt);
                attempt += 1;
                continue;
            }

            if !policy.fp32_fallback {
                return Err(ArithError::AccumulatorOverflow);
            }
            report.fp32_fallbacks += 1;
            for i in r0..r1 {
                for j in 0..n {
                    let mut acc = 0f64;
                    for kk in 0..k {
                        acc += a.get(i, kk) as f64 * b.get(kk, j) as f64;
                    }
                    out.set(i, j, acc as f32);
                }
            }
            break;
        }
    }

    Ok(ResilientOutcome { out, report, stats })
}

/// Numeric guardrails over a committed output shard.
fn rows_clean(rows: &[f32], policy: &RecoveryPolicy) -> bool {
    rows.iter()
        .all(|v| v.is_finite() && v.abs() <= policy.overflow_watermark)
}

/// Execute one tile (a block-row strip against all of `y`) on a fresh
/// unit, returning the dequantized values and the fault-counter delta.
fn run_tile(
    x: &BlockGrid,
    y: &BlockGrid,
    fidelity: Fidelity,
) -> (Vec<Vec<f32>>, bfp_faults::FaultCounters, CycleStats) {
    let before = bfp_faults::counters();
    let mut unit = ProcessingUnit::new(UnitConfig {
        fidelity,
        ..UnitConfig::default()
    });
    let wide = unit.matmul_grid(x, y);
    let delta = bfp_faults::counters() - before;

    let nb = wide[0].len();
    let mut values = vec![vec![0f32; nb * 8]; 8];
    for (bj, w) in wide[0].iter().enumerate() {
        let scale = (w.exp as f64).exp2();
        for i in 0..8 {
            for j in 0..8 {
                values[i][bj * 8 + j] = (w.man[i][j] as f64 * scale) as f32;
            }
        }
    }
    (values, delta, unit.take_stats())
}

/// Numeric guardrails over one tile's dequantized values.
fn tile_clean(values: &[Vec<f32>], policy: &RecoveryPolicy) -> bool {
    values
        .iter()
        .flatten()
        .all(|v| v.is_finite() && v.abs() <= policy.overflow_watermark)
}

/// Rows of the output covered by block-row `bi`.
fn tile_rows(bi: usize, rows: usize) -> std::ops::Range<usize> {
    bi * 8..((bi + 1) * 8).min(rows)
}

/// Write a tile's values into the output, clipping grid padding.
fn commit_tile(out: &mut MatF32, bi: usize, values: &[Vec<f32>], cols: usize) {
    let rows = out.rows();
    for i in tile_rows(bi, rows) {
        for j in 0..cols {
            out.set(i, j, values[i - bi * 8][j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| ((i * cols + j) % 13) as f32 - 6.0)
    }

    #[test]
    fn clean_run_matches_plain_quantized_matmul() {
        let a = ramp(24, 16);
        let b = ramp(16, 24);
        let q = Quantizer::paper();
        let got = resilient_matmul(&a, &b, &q, &RecoveryPolicy::default()).unwrap();
        assert!(got.report.is_clean(), "{}", got.report);
        assert_eq!(got.out, a.matmul(&b), "exact integer inputs stay exact");
        assert!(got.stats.cycles > 0);
    }

    #[test]
    fn default_policy_verifies_with_abft_and_strict_disables_verification() {
        assert_eq!(RecoveryPolicy::default().verify, VerifyMode::Abft);
        assert_eq!(RecoveryPolicy::strict().verify, VerifyMode::None);
    }

    #[test]
    fn abft_and_stepped_paths_agree_bitwise_on_healthy_hardware() {
        let a = ramp(24, 16);
        let b = ramp(16, 24);
        let q = Quantizer::paper();
        let abft = resilient_matmul(&a, &b, &q, &RecoveryPolicy::default()).unwrap();
        let stepped = resilient_matmul(
            &a,
            &b,
            &q,
            &RecoveryPolicy {
                verify: VerifyMode::Stepped,
                ..RecoveryPolicy::default()
            },
        )
        .unwrap();
        assert_eq!(abft.out, stepped.out, "same bfp8 semantics on both paths");
        assert!(abft.report.is_clean());
        assert!(stepped.report.is_clean());
    }

    #[test]
    fn abft_path_handles_ragged_shapes() {
        // Partial final block-row and a non-multiple-of-8 N exercise the
        // shard clamping in the checked kernel.
        let a = ramp(13, 24);
        let b = ramp(24, 10);
        let q = Quantizer::paper();
        let got = resilient_matmul(&a, &b, &q, &RecoveryPolicy::default()).unwrap();
        assert!(got.report.is_clean(), "{}", got.report);
        assert_eq!(got.out, a.matmul(&b));
    }

    #[test]
    fn dimension_mismatch_is_typed_not_panicking() {
        let q = Quantizer::paper();
        let err = resilient_matmul(&ramp(8, 8), &ramp(16, 8), &q, &RecoveryPolicy::default())
            .unwrap_err();
        assert!(matches!(err, ArithError::DimensionMismatch { .. }));
    }

    #[test]
    fn non_finite_layer_falls_back_to_fp32() {
        let mut a = ramp(16, 8);
        a.set(0, 0, f32::NAN);
        let b = ramp(8, 8);
        let q = Quantizer::paper();
        let got = resilient_matmul(&a, &b, &q, &RecoveryPolicy::default()).unwrap();
        assert_eq!(got.report.fp32_fallbacks, 1);
        assert_eq!(got.report.detected, 1);
        // Clean rows still compute; the NaN propagates exactly as fp32.
        assert_eq!(got.out.get(8, 0), a.matmul(&b).get(8, 0));
    }

    #[test]
    fn strict_policy_surfaces_the_error_instead() {
        let mut a = ramp(16, 8);
        a.set(0, 0, f32::INFINITY);
        let q = Quantizer::paper();
        let err = resilient_matmul(&a, &ramp(8, 8), &q, &RecoveryPolicy::strict()).unwrap_err();
        assert!(matches!(err, ArithError::NonFinite { at: (0, 0) }));
    }

    #[test]
    fn cancelled_token_aborts_between_tiles() {
        let a = ramp(24, 16);
        let b = ramp(16, 24);
        let q = Quantizer::paper();
        let token = CancelToken::new();
        token.cancel();
        let err = resilient_matmul_with(&a, &b, &q, &RecoveryPolicy::default(), &token)
            .expect_err("cancelled before the first tile");
        assert_eq!(err, ArithError::Cancelled { expired: false });
        // A live token changes nothing.
        let got = resilient_matmul_with(&a, &b, &q, &RecoveryPolicy::default(), &CancelToken::new())
            .unwrap();
        assert_eq!(got.out, a.matmul(&b));
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff(0), 32);
        assert_eq!(p.backoff(1), 64);
        assert_eq!(p.backoff(2), 128);
        assert_eq!(p.backoff(3), 256);
        assert_eq!(p.backoff(10), 256, "capped");
        assert_eq!(p.backoff(200), 256, "shift saturates");
    }

    #[test]
    fn backoff_saturates_at_the_cap_boundary_instead_of_overflowing() {
        // Uncapped policy: the doubling itself must saturate. The top set
        // bit of base=3 is at position 1, so attempt 62 is the last exact
        // shift and 63 is the first that would lose a bit.
        let p = RecoveryPolicy {
            backoff_base_cycles: 3,
            backoff_cap_cycles: u64::MAX,
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.backoff(62), 3u64 << 62, "last exact doubling");
        assert_eq!(p.backoff(63), u64::MAX, "first lossy shift saturates");
        assert_eq!(p.backoff(u32::MAX), u64::MAX, "never wraps");

        // base << attempt exceeding u64 still lands exactly on the cap.
        let p = RecoveryPolicy {
            backoff_base_cycles: 1 << 40,
            backoff_cap_cycles: 1 << 50,
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.backoff(9), 1 << 49);
        assert_eq!(p.backoff(10), 1 << 50, "reaches the cap exactly");
        assert_eq!(p.backoff(11), 1 << 50);
        assert_eq!(p.backoff(64), 1 << 50, "saturated shift is capped");

        // A zero base never backs off, no matter how many retries: the
        // saturation guard must not turn 0 << n into u64::MAX.
        let p = RecoveryPolicy {
            backoff_base_cycles: 0,
            backoff_cap_cycles: u64::MAX,
            ..RecoveryPolicy::default()
        };
        for attempt in [0, 1, 63, 64, 65, u32::MAX] {
            assert_eq!(p.backoff(attempt), 0, "attempt {attempt}");
        }
    }
}
