//! The operator graph: a Transformer forward pass as a DAG of accelerator
//! operations, the input to the [`crate::scheduler`].
//!
//! The paper's conclusion announces "an automatic compilation framework
//! that provides full stack acceleration of Transformer models is
//! underway"; this module and the scheduler are that layer for the encoder
//! workloads the evaluation uses: they lower a [`VitConfig`] into a
//! dependency graph of GEMMs and fp32 vector ops, annotated with enough
//! shape information to cost every node.

use bfp_transformer::VitConfig;

/// What one graph node computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// bfp8 GEMM `m × k × n`.
    MatMul {
        /// Output rows.
        m: usize,
        /// Contraction length.
        k: usize,
        /// Output columns.
        n: usize,
    },
    /// fp32 row-wise softmax over `rows` rows of length `cols`.
    Softmax {
        /// Row count.
        rows: usize,
        /// Row length.
        cols: usize,
    },
    /// fp32 element-wise GELU over `elems` values.
    Gelu {
        /// Element count.
        elems: usize,
    },
    /// fp32 LayerNorm over `rows` rows of length `cols`.
    LayerNorm {
        /// Row count.
        rows: usize,
        /// Row length.
        cols: usize,
    },
    /// Element-wise residual addition (memory-side; zero array cycles but
    /// a real dependency edge).
    Residual {
        /// Element count.
        elems: usize,
    },
}

impl OpKind {
    /// bfp8 operations (2/MAC) of this node, 0 for fp32 nodes.
    pub fn bfp_ops(&self) -> u64 {
        match *self {
            OpKind::MatMul { m, k, n } => 2 * (m * k * n) as u64,
            _ => 0,
        }
    }

    /// fp32 FLOPs of this node (using the VPU kernel cost formulas).
    pub fn fp32_flops(&self) -> u64 {
        use bfp_transformer::vpu::cost;
        match *self {
            OpKind::MatMul { .. } | OpKind::Residual { .. } => 0,
            OpKind::Softmax { rows, cols } => {
                let c = cost::softmax_row(cols as u64);
                (c.fp_mul + c.fp_add) * rows as u64
            }
            OpKind::Gelu { elems } => {
                let c = cost::gelu();
                (c.fp_mul + c.fp_add) * elems as u64
            }
            OpKind::LayerNorm { rows, cols } => {
                let c = cost::layernorm_row(cols as u64);
                (c.fp_mul + c.fp_add) * rows as u64
            }
        }
    }

    /// Human-readable kind label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::MatMul { .. } => "bfp8 MatMul",
            OpKind::Softmax { .. } => "fp32 SoftMax",
            OpKind::Gelu { .. } => "fp32 GELU",
            OpKind::LayerNorm { .. } => "fp32 LayerNorm",
            OpKind::Residual { .. } => "residual",
        }
    }
}

/// A node plus its dependencies (indices into the graph's node list).
#[derive(Debug, Clone)]
pub struct OpNode {
    /// Descriptive name (`blk3.fc1` etc.).
    pub name: String,
    /// The operation.
    pub kind: OpKind,
    /// Nodes that must complete first.
    pub deps: Vec<usize>,
}

/// A forward-pass DAG.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Nodes in a valid topological order (guaranteed by construction).
    pub nodes: Vec<OpNode>,
}

impl Graph {
    fn push(&mut self, name: String, kind: OpKind, deps: Vec<usize>) -> usize {
        debug_assert!(
            deps.iter().all(|&d| d < self.nodes.len()),
            "topological construction"
        );
        self.nodes.push(OpNode { name, kind, deps });
        self.nodes.len() - 1
    }

    /// Total bfp8 ops across the graph.
    pub fn total_bfp_ops(&self) -> u64 {
        self.nodes.iter().map(|n| n.kind.bfp_ops()).sum()
    }

    /// Total fp32 FLOPs across the graph.
    pub fn total_fp32_flops(&self) -> u64 {
        self.nodes.iter().map(|n| n.kind.fp32_flops()).sum()
    }

    /// Verify the stored order is topological (used by tests and the
    /// scheduler's debug assertions).
    pub fn is_topological(&self) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, n)| n.deps.iter().all(|&d| d < i))
    }
}

/// Lower a ViT encoder into its operator DAG.
///
/// Per block: `LN1 → {Q,K,V} → per-head (scores → softmax → context) →
/// proj → residual → LN2 → fc1 → GELU → fc2 → residual`, chained across
/// `depth` blocks.
pub fn lower_vit(cfg: &VitConfig) -> Graph {
    let mut g = Graph::default();
    let s = cfg.seq;
    let d = cfg.dim;
    let hd = cfg.head_dim();
    let mut prev = usize::MAX; // sentinel: no dependency for the first op

    let dep = |prev: usize| {
        if prev == usize::MAX {
            vec![]
        } else {
            vec![prev]
        }
    };

    for b in 0..cfg.depth {
        let ln1 = g.push(
            format!("blk{b}.ln1"),
            OpKind::LayerNorm { rows: s, cols: d },
            dep(prev),
        );
        let q = g.push(
            format!("blk{b}.wq"),
            OpKind::MatMul { m: s, k: d, n: d },
            vec![ln1],
        );
        let k = g.push(
            format!("blk{b}.wk"),
            OpKind::MatMul { m: s, k: d, n: d },
            vec![ln1],
        );
        let v = g.push(
            format!("blk{b}.wv"),
            OpKind::MatMul { m: s, k: d, n: d },
            vec![ln1],
        );
        let mut heads = Vec::with_capacity(cfg.heads);
        for h in 0..cfg.heads {
            let scores = g.push(
                format!("blk{b}.h{h}.scores"),
                OpKind::MatMul { m: s, k: hd, n: s },
                vec![q, k],
            );
            let soft = g.push(
                format!("blk{b}.h{h}.softmax"),
                OpKind::Softmax { rows: s, cols: s },
                vec![scores],
            );
            let ctx = g.push(
                format!("blk{b}.h{h}.ctx"),
                OpKind::MatMul { m: s, k: s, n: hd },
                vec![soft, v],
            );
            heads.push(ctx);
        }
        let proj = g.push(
            format!("blk{b}.wo"),
            OpKind::MatMul { m: s, k: d, n: d },
            heads,
        );
        let res1 = g.push(
            format!("blk{b}.res1"),
            OpKind::Residual { elems: s * d },
            if prev == usize::MAX {
                vec![proj]
            } else {
                vec![proj, prev]
            },
        );
        let ln2 = g.push(
            format!("blk{b}.ln2"),
            OpKind::LayerNorm { rows: s, cols: d },
            vec![res1],
        );
        let fc1 = g.push(
            format!("blk{b}.fc1"),
            OpKind::MatMul {
                m: s,
                k: d,
                n: cfg.hidden(),
            },
            vec![ln2],
        );
        let gelu = g.push(
            format!("blk{b}.gelu"),
            OpKind::Gelu {
                elems: s * cfg.hidden(),
            },
            vec![fc1],
        );
        let fc2 = g.push(
            format!("blk{b}.fc2"),
            OpKind::MatMul {
                m: s,
                k: cfg.hidden(),
                n: d,
            },
            vec![gelu],
        );
        prev = g.push(
            format!("blk{b}.res2"),
            OpKind::Residual { elems: s * d },
            vec![fc2, res1],
        );
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_transformer::analytical_census;

    #[test]
    fn graph_is_topological_and_sized() {
        let cfg = VitConfig::deit_small();
        let g = lower_vit(&cfg);
        assert!(g.is_topological());
        // Per block: ln1 + 3 qkv + heads*3 + wo + res1 + ln2 + fc1 + gelu +
        // fc2 + res2 = 11 + 3*heads nodes; x12 blocks.
        assert_eq!(g.nodes.len(), 12 * (11 + 3 * cfg.heads));
    }

    #[test]
    fn graph_ops_match_the_census() {
        // The DAG's op totals must equal the analytical census that the
        // engine's live counting already validates.
        let cfg = VitConfig::deit_small();
        let g = lower_vit(&cfg);
        let census = analytical_census(&cfg);
        assert_eq!(g.total_bfp_ops(), census.bfp_ops());
        assert_eq!(
            g.total_fp32_flops(),
            census.softmax.flops() + census.gelu.flops() + census.layernorm.flops()
        );
    }

    #[test]
    fn dependencies_encode_the_dataflow() {
        let cfg = VitConfig::tiny_test();
        let g = lower_vit(&cfg);
        // Softmax nodes depend on exactly one scores MatMul.
        for n in &g.nodes {
            if let OpKind::Softmax { .. } = n.kind {
                assert_eq!(n.deps.len(), 1);
                assert!(matches!(g.nodes[n.deps[0]].kind, OpKind::MatMul { .. }));
            }
        }
        // The second block's ln1 depends on the first block's res2.
        let second_ln1 = g.nodes.iter().position(|n| n.name == "blk1.ln1").unwrap();
        let dep = &g.nodes[g.nodes[second_ln1].deps[0]];
        assert_eq!(dep.name, "blk0.res2");
    }

    #[test]
    fn head_parallelism_is_exposed() {
        let cfg = VitConfig::deit_small();
        let g = lower_vit(&cfg);
        // All six scores GEMMs of block 0 share the same dependency set, so
        // a scheduler may run them concurrently.
        let scores: Vec<&OpNode> = g
            .nodes
            .iter()
            .filter(|n| n.name.starts_with("blk0.h") && n.name.ends_with("scores"))
            .collect();
        assert_eq!(scores.len(), 6);
        let first = &scores[0].deps;
        assert!(scores.iter().all(|s| &s.deps == first));
    }
}
