//! Block-row-parallel packed GEMM: the multi-core twin of
//! [`bfp_arith::packed::PackedBfp::matmul`].
//!
//! Every (bi, bj) output tile of the bfp datapath owns an independent
//! exponent-alignment chain — no partial result ever crosses a block-row
//! boundary — so the output grid can be sharded by block-rows across OS
//! threads and recomposed without changing a single bit. This mirrors how
//! [`bfp_platform::System`] shards the *cycle simulation* across modelled
//! arrays; here the same axis parallelises the *fast functional* kernel.
//!
//! Determinism: each shard writes a disjoint slice of the output buffer
//! and shares nothing else, so the result is independent of scheduling
//! and thread count, and identical to the serial kernel. The
//! cross-check proptests at the workspace root pin
//! `parallel == serial == naive == cycle simulator`.

use bfp_arith::error::ArithError;
use bfp_arith::matrix::MatF32;
use bfp_arith::packed::PackedBfp;
use bfp_arith::quant::Quantizer;

/// Below this many scalar MACs the fork/join overhead of scoped threads
/// outweighs the work; the kernel runs single-threaded. (A DeiT-Small
/// projection GEMM is ~29 M MACs — far above; an 8×8 block product is
/// 512 — far below.)
pub const PARALLEL_MAC_THRESHOLD: u64 = 2_000_000;

/// How to shard a packed GEMM across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelPolicy {
    /// Deterministic single-thread execution (the serial kernel, always).
    Serial,
    /// Shard block-rows across up to `n` threads when the shape is large
    /// enough to amortise fork/join; small shapes fall back to serial.
    Threads(usize),
    /// `Threads(available_parallelism())`.
    Auto,
}

impl ParallelPolicy {
    /// The thread budget this policy resolves to on this host.
    pub fn threads(self) -> usize {
        match self {
            ParallelPolicy::Serial => 1,
            ParallelPolicy::Threads(n) => n.max(1),
            ParallelPolicy::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Host hardware thread count (what [`ParallelPolicy::Auto`] resolves to).
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread count [`packed_matmul`] actually uses for a GEMM with `mb`
/// block-rows and `macs` scalar MACs under `policy`: the policy's budget
/// clamped so that (a) no shard falls below [`PARALLEL_MAC_THRESHOLD`]
/// MACs of work, (b) the kernel never runs more threads than the host
/// has cores — an explicit `Threads(n)` larger than the machine only
/// adds context-switch overhead on the same silicon — and (c) at most
/// one thread per block-row.
pub fn effective_threads(policy: ParallelPolicy, mb: usize, macs: u64) -> usize {
    let shard_cap = (macs / PARALLEL_MAC_THRESHOLD).max(1) as usize;
    policy
        .threads()
        .min(host_parallelism())
        .min(shard_cap)
        .min(mb.max(1))
}

/// Packed GEMM with block-row sharding under `policy`. Bit-identical to
/// [`PackedBfp::matmul`] (and therefore to `BfpMatrix::try_matmul` and the
/// cycle simulator) for every policy.
pub fn packed_matmul(
    a: &PackedBfp,
    b: &PackedBfp,
    policy: ParallelPolicy,
) -> Result<MatF32, ArithError> {
    a.check_compatible(b)?;
    let (mb, _) = a.grid();
    let macs = a.rows() as u64 * a.cols() as u64 * b.cols() as u64;
    let threads = effective_threads(policy, mb, macs);
    if threads <= 1 {
        return a.matmul(b);
    }
    // The shard mechanism itself lives next to the kernel in bfp-arith so
    // the transformer engine can reuse it; this layer owns only the policy
    // (thread budget + fork/join threshold).
    a.matmul_parallel(b, threads)
}

/// Quantize two `f32` matrices and multiply them on the packed fast path
/// (the functional counterpart of [`bfp_platform::System::try_matmul_f32`],
/// without cycle accounting).
pub fn fast_matmul_f32(
    q: &Quantizer,
    a: &MatF32,
    b: &MatF32,
    policy: ParallelPolicy,
) -> Result<MatF32, ArithError> {
    let pa = PackedBfp::quantize_lhs(q, a)?;
    let pb = PackedBfp::quantize_rhs(q, b)?;
    packed_matmul(&pa, &pb, policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spiky(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| {
            let base = ((i * 29 + j * 11) % 17) as f32 - 8.0;
            match (i / 8 + j / 8) % 3 {
                0 => base * 512.0,
                1 => base * 0.002,
                _ => base,
            }
        })
    }

    fn assert_bits_eq(a: &MatF32, b: &MatF32) {
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_and_naive() {
        let q = Quantizer::paper();
        // Large enough to clear PARALLEL_MAC_THRESHOLD: 160·128·160 ≈ 3.3 M.
        let a = spiky(160, 128);
        let b = spiky(128, 160);
        let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
        let naive = qa.try_matmul(&qb).unwrap();
        let (pa, pb) = (PackedBfp::pack_lhs(&qa), PackedBfp::pack_rhs(&qb));
        for policy in [
            ParallelPolicy::Serial,
            ParallelPolicy::Threads(2),
            ParallelPolicy::Threads(5),
            ParallelPolicy::Threads(64),
            ParallelPolicy::Auto,
        ] {
            let got = packed_matmul(&pa, &pb, policy).unwrap();
            assert_bits_eq(&got, &naive);
        }
    }

    #[test]
    fn small_shapes_fall_back_to_serial_and_stay_exact() {
        let q = Quantizer::paper();
        let a = spiky(16, 24);
        let b = spiky(24, 8);
        let got = fast_matmul_f32(&q, &a, &b, ParallelPolicy::Auto).unwrap();
        let want = q.quantize(&a).unwrap().matmul(&q.quantize(&b).unwrap());
        assert_bits_eq(&got, &want);
    }

    #[test]
    fn odd_block_row_counts_shard_cleanly() {
        let q = Quantizer::paper();
        // 197 rows -> 25 block rows, not divisible by typical thread counts;
        // also a non-multiple-of-8 logical edge in both dimensions.
        let a = spiky(197, 96);
        let b = spiky(96, 131);
        let got = fast_matmul_f32(&q, &a, &b, ParallelPolicy::Threads(7)).unwrap();
        let want = q
            .quantize(&a)
            .unwrap()
            .try_matmul(&q.quantize(&b).unwrap())
            .unwrap();
        assert_bits_eq(&got, &want);
    }

    #[test]
    fn dimension_errors_are_typed() {
        let q = Quantizer::paper();
        let a = PackedBfp::quantize_lhs(&q, &spiky(16, 16)).unwrap();
        let b = PackedBfp::quantize_rhs(&q, &spiky(8, 8)).unwrap();
        assert!(matches!(
            packed_matmul(&a, &b, ParallelPolicy::Auto),
            Err(ArithError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn policy_thread_budgets() {
        assert_eq!(ParallelPolicy::Serial.threads(), 1);
        assert_eq!(ParallelPolicy::Threads(0).threads(), 1);
        assert_eq!(ParallelPolicy::Threads(6).threads(), 6);
        assert!(ParallelPolicy::Auto.threads() >= 1);
    }

    #[test]
    fn effective_threads_respects_every_clamp() {
        // DeiT-Small projection shape: 197·384·384 ≈ 29 M MACs, 25 block
        // rows. The per-shard minimum caps at 14 threads regardless of the
        // policy budget.
        let macs = 197u64 * 384 * 384;
        let host = ParallelPolicy::Auto.threads();
        let t = effective_threads(ParallelPolicy::Threads(64), 25, macs);
        assert!(t <= 14, "per-shard MAC minimum: {t}");
        assert!(t <= host, "never oversubscribe the host: {t} > {host}");
        assert!(t <= 25, "never more threads than block rows");
        // Below the fork/join threshold everything degenerates to serial,
        // even with an explicit multi-thread budget.
        assert_eq!(effective_threads(ParallelPolicy::Threads(8), 25, 1_000_000), 1);
        assert_eq!(effective_threads(ParallelPolicy::Serial, 25, macs), 1);
        // A shape with a single block row cannot shard.
        assert_eq!(effective_threads(ParallelPolicy::Auto, 1, macs), 1);
    }
}
