//! Batched inference: how a deployment actually feeds the card.
//!
//! Two mapping strategies bracket the design space:
//!
//! * **tile-parallel** — every array cooperates on one image (the
//!   [`crate::scheduler`] schedule): lowest single-image latency, but level
//!   barriers and mode switches leave arrays idle;
//! * **image-parallel** — each array runs a whole image independently:
//!   maximal throughput (no cross-array synchronisation), at the cost of
//!   single-image latency.
//!
//! [`Accelerator::infer_batch`] executes the batch bit-accurately (sharded
//! across OS threads — the simulation itself is parallel) and reports the
//! modelled latency under both strategies.

use bfp_transformer::{DeitModel, Image, MixedEngine, OpCensus};
use parking_lot::Mutex;

use crate::accelerator::Accelerator;
use crate::graph::lower_vit;
use crate::scheduler::schedule;

/// Latency analysis of one batch.
#[derive(Debug, Clone)]
pub struct BatchLatency {
    /// Images in the batch.
    pub batch: usize,
    /// Arrays on the card.
    pub arrays: usize,
    /// Tile-parallel: one image's scheduled makespan (seconds).
    pub tile_parallel_image_s: f64,
    /// Tile-parallel: whole-batch time (images are sequential).
    pub tile_parallel_batch_s: f64,
    /// Image-parallel: one image's serial time on a single array.
    pub image_parallel_image_s: f64,
    /// Image-parallel: whole-batch time (`ceil(B / arrays)` waves).
    pub image_parallel_batch_s: f64,
}

impl BatchLatency {
    /// Throughput (images/s) of the better strategy for this batch size.
    pub fn best_throughput(&self) -> f64 {
        self.batch as f64 / self.tile_parallel_batch_s.min(self.image_parallel_batch_s)
    }

    /// Which strategy finishes the batch first.
    pub fn best_strategy(&self) -> &'static str {
        if self.tile_parallel_batch_s <= self.image_parallel_batch_s {
            "tile-parallel"
        } else {
            "image-parallel"
        }
    }
}

/// Result of a batched inference.
#[derive(Debug)]
pub struct BatchResult {
    /// Top-1 class per image.
    pub predictions: Vec<usize>,
    /// Combined operation census across the batch.
    pub census: OpCensus,
    /// The latency analysis.
    pub latency: BatchLatency,
}

impl Accelerator {
    /// Run a batch of images through the mixed-precision model, sharded
    /// across worker threads, and analyse both batching strategies.
    pub fn infer_batch(&self, model: &DeitModel, images: &[Image]) -> BatchResult {
        let arrays = self.system().cfg.total_arrays().max(1);
        let workers = arrays.min(images.len()).max(1);
        let results = Mutex::new(vec![None; images.len()]);
        let censuses = Mutex::new(Vec::with_capacity(workers));

        crossbeam::thread::scope(|scope| {
            for w in 0..workers {
                let results = &results;
                let censuses = &censuses;
                scope.spawn(move |_| {
                    let mut engine = MixedEngine::new();
                    for (i, img) in images.iter().enumerate() {
                        if i % workers != w {
                            continue;
                        }
                        let pred = model.predict(&mut engine, img);
                        results.lock()[i] = Some(pred);
                    }
                    censuses.lock().push(engine.take_census());
                });
            }
        })
        .expect("batch worker panicked");

        let predictions: Vec<usize> = results
            .into_inner()
            .into_iter()
            .map(|s| s.expect("every image classified"))
            .collect();
        let mut census = OpCensus::default();
        for c in censuses.into_inner() {
            census.merge(&c);
        }

        // Latency analysis from the scheduler's cost models.
        let g = lower_vit(&model.cfg.vit);
        let sched = schedule(&g, self.system());
        let freq = self.system().freq_hz;
        let b = images.len();
        let tile_image = sched.seconds(freq);
        let image_serial = sched.serial_cycles / freq;
        let latency = BatchLatency {
            batch: b,
            arrays,
            tile_parallel_image_s: tile_image,
            tile_parallel_batch_s: tile_image * b as f64,
            image_parallel_image_s: image_serial,
            image_parallel_batch_s: image_serial * (b as f64 / arrays as f64).ceil(),
        };

        BatchResult {
            predictions,
            census,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_transformer::{DeitConfig, RefEngine};

    fn setup() -> (Accelerator, DeitModel, Vec<Image>) {
        let acc = Accelerator::u280();
        let cfg = DeitConfig::tiny_test();
        let model = DeitModel::new_random(cfg, 42);
        let images: Vec<Image> = (0..8)
            .map(|s| Image::synthetic(3, cfg.img, cfg.img, s))
            .collect();
        (acc, model, images)
    }

    #[test]
    fn batch_predictions_match_sequential() {
        let (acc, model, images) = setup();
        let res = acc.infer_batch(&model, &images);
        assert_eq!(res.predictions.len(), 8);
        for (i, img) in images.iter().enumerate() {
            let mut e = MixedEngine::new();
            assert_eq!(res.predictions[i], model.predict(&mut e, img), "image {i}");
        }
    }

    #[test]
    fn batch_census_scales_with_batch_size() {
        let (acc, model, images) = setup();
        let res = acc.infer_batch(&model, &images);
        let mut single = MixedEngine::new();
        let _ = model.predict(&mut single, &images[0]);
        let one = single.take_census();
        assert_eq!(res.census.matmul_macs, 8 * one.matmul_macs);
    }

    #[test]
    fn image_parallel_wins_throughput_tile_parallel_wins_latency() {
        let (acc, model, images) = setup();
        let res = acc.infer_batch(&model, &images);
        let l = &res.latency;
        // Single-image latency: tile-parallel is faster.
        assert!(l.tile_parallel_image_s < l.image_parallel_image_s);
        // At batch >= arrays, image-parallel throughput is at least as good
        // (here batch < arrays, so one wave suffices and it ties or wins).
        assert!(l.image_parallel_batch_s <= l.image_parallel_image_s + 1e-12);
        assert!(l.best_throughput() > 0.0);
        assert!(!l.best_strategy().is_empty());
    }

    #[test]
    fn batch_is_deterministic_regardless_of_thread_interleaving() {
        let (acc, model, images) = setup();
        let a = acc.infer_batch(&model, &images).predictions;
        let b = acc.infer_batch(&model, &images).predictions;
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_batch_tracks_reference_predictions() {
        let (acc, model, images) = setup();
        let res = acc.infer_batch(&model, &images);
        let mut agree = 0;
        for (i, img) in images.iter().enumerate() {
            if res.predictions[i] == model.predict(&mut RefEngine, img) {
                agree += 1;
            }
        }
        assert!(
            agree >= images.len() - 1,
            "agreement {agree}/{}",
            images.len()
        );
    }
}
