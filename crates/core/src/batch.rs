//! Batched inference: how a deployment actually feeds the card.
//!
//! Two mapping strategies bracket the design space:
//!
//! * **tile-parallel** — every array cooperates on one image (the
//!   [`crate::scheduler`] schedule): lowest single-image latency, but level
//!   barriers and mode switches leave arrays idle;
//! * **image-parallel** — each array runs a whole image independently:
//!   maximal throughput (no cross-array synchronisation), at the cost of
//!   single-image latency.
//!
//! [`Accelerator::infer_batch`] executes the batch bit-accurately (sharded
//! across OS threads — the simulation itself is parallel) and reports the
//! modelled latency under both strategies.

use bfp_arith::cancel::CancelToken;
use bfp_arith::error::ArithError;
use bfp_transformer::{DeitModel, Image, MixedEngine, OpCensus};
use parking_lot::Mutex;

use crate::accelerator::Accelerator;
use crate::graph::lower_vit;
use crate::scheduler::schedule;

/// Latency analysis of one batch.
#[derive(Debug, Clone)]
pub struct BatchLatency {
    /// Images in the batch.
    pub batch: usize,
    /// Arrays on the card.
    pub arrays: usize,
    /// Tile-parallel: one image's scheduled makespan (seconds).
    pub tile_parallel_image_s: f64,
    /// Tile-parallel: whole-batch time (images are sequential).
    pub tile_parallel_batch_s: f64,
    /// Image-parallel: one image's serial time on a single array.
    pub image_parallel_image_s: f64,
    /// Image-parallel: whole-batch time (`ceil(B / arrays)` waves).
    pub image_parallel_batch_s: f64,
}

impl BatchLatency {
    /// Throughput (images/s) of the better strategy for this batch size.
    /// An empty batch has zero throughput (not NaN from 0/0).
    pub fn best_throughput(&self) -> f64 {
        let best_s = self.tile_parallel_batch_s.min(self.image_parallel_batch_s);
        if self.batch == 0 || best_s <= 0.0 {
            0.0
        } else {
            self.batch as f64 / best_s
        }
    }

    /// Which strategy finishes the batch first.
    pub fn best_strategy(&self) -> &'static str {
        if self.tile_parallel_batch_s <= self.image_parallel_batch_s {
            "tile-parallel"
        } else {
            "image-parallel"
        }
    }
}

/// Result of a batched inference.
#[derive(Debug)]
pub struct BatchResult {
    /// Top-1 class per image.
    pub predictions: Vec<usize>,
    /// Combined operation census across the batch.
    pub census: OpCensus,
    /// The latency analysis.
    pub latency: BatchLatency,
}

impl Accelerator {
    /// Run a batch of images through the mixed-precision model, sharded
    /// across worker threads, and analyse both batching strategies.
    pub fn infer_batch(&self, model: &DeitModel, images: &[Image]) -> BatchResult {
        self.try_infer_batch(model, images, &CancelToken::new())
            .expect("unbounded token never cancels")
    }

    /// The runtime-driven path of [`Accelerator::infer_batch`]: the same
    /// sharded execution under a cooperative cancel/deadline token. Every
    /// worker polls `cancel` between encoder blocks (via
    /// [`DeitModel::try_predict`]); once it fires the whole batch aborts
    /// with [`ArithError::Cancelled`] instead of finishing inferences
    /// nobody will consume.
    pub fn try_infer_batch(
        &self,
        model: &DeitModel,
        images: &[Image],
        cancel: &CancelToken,
    ) -> Result<BatchResult, ArithError> {
        let arrays = self.system().cfg.total_arrays().max(1);
        let workers = arrays.min(images.len()).max(1);
        let results = Mutex::new(vec![None; images.len()]);
        let censuses = Mutex::new(Vec::with_capacity(workers));
        let first_err: Mutex<Option<ArithError>> = Mutex::new(None);

        crossbeam::thread::scope(|scope| {
            for w in 0..workers {
                let results = &results;
                let censuses = &censuses;
                let first_err = &first_err;
                scope.spawn(move |_| {
                    let mut engine = MixedEngine::new();
                    for (i, img) in images.iter().enumerate() {
                        if i % workers != w {
                            continue;
                        }
                        match model.try_predict(&mut engine, img, cancel) {
                            Ok(pred) => results.lock()[i] = Some(pred),
                            Err(e) => {
                                first_err.lock().get_or_insert(e);
                                break;
                            }
                        }
                    }
                    censuses.lock().push(engine.take_census());
                });
            }
        })
        .expect("batch worker panicked");

        if let Some(e) = first_err.into_inner() {
            return Err(e);
        }
        let predictions: Vec<usize> = results
            .into_inner()
            .into_iter()
            .map(|s| s.expect("every image classified"))
            .collect();
        let mut census = OpCensus::default();
        for c in censuses.into_inner() {
            census.merge(&c);
        }

        // Latency analysis from the scheduler's cost models.
        let g = lower_vit(&model.cfg.vit);
        let sched = schedule(&g, self.system());
        let freq = self.system().freq_hz;
        let b = images.len();
        let tile_image = sched.seconds(freq);
        let image_serial = sched.serial_cycles / freq;
        let latency = BatchLatency {
            batch: b,
            arrays,
            tile_parallel_image_s: tile_image,
            tile_parallel_batch_s: tile_image * b as f64,
            image_parallel_image_s: image_serial,
            image_parallel_batch_s: image_serial * (b as f64 / arrays as f64).ceil(),
        };

        Ok(BatchResult {
            predictions,
            census,
            latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_transformer::{DeitConfig, RefEngine};

    fn setup() -> (Accelerator, DeitModel, Vec<Image>) {
        let acc = Accelerator::u280();
        let cfg = DeitConfig::tiny_test();
        let model = DeitModel::new_random(cfg, 42);
        let images: Vec<Image> = (0..8)
            .map(|s| Image::synthetic(3, cfg.img, cfg.img, s))
            .collect();
        (acc, model, images)
    }

    #[test]
    fn batch_predictions_match_sequential() {
        let (acc, model, images) = setup();
        let res = acc.infer_batch(&model, &images);
        assert_eq!(res.predictions.len(), 8);
        for (i, img) in images.iter().enumerate() {
            let mut e = MixedEngine::new();
            assert_eq!(res.predictions[i], model.predict(&mut e, img), "image {i}");
        }
    }

    #[test]
    fn batch_census_scales_with_batch_size() {
        let (acc, model, images) = setup();
        let res = acc.infer_batch(&model, &images);
        let mut single = MixedEngine::new();
        let _ = model.predict(&mut single, &images[0]);
        let one = single.take_census();
        assert_eq!(res.census.matmul_macs, 8 * one.matmul_macs);
    }

    #[test]
    fn image_parallel_wins_throughput_tile_parallel_wins_latency() {
        let (acc, model, images) = setup();
        let res = acc.infer_batch(&model, &images);
        let l = &res.latency;
        // Single-image latency: tile-parallel is faster.
        assert!(l.tile_parallel_image_s < l.image_parallel_image_s);
        // At batch >= arrays, image-parallel throughput is at least as good
        // (here batch < arrays, so one wave suffices and it ties or wins).
        assert!(l.image_parallel_batch_s <= l.image_parallel_image_s + 1e-12);
        assert!(l.best_throughput() > 0.0);
        assert!(!l.best_strategy().is_empty());
    }

    #[test]
    fn batch_is_deterministic_regardless_of_thread_interleaving() {
        let (acc, model, images) = setup();
        let a = acc.infer_batch(&model, &images).predictions;
        let b = acc.infer_batch(&model, &images).predictions;
        assert_eq!(a, b);
    }

    /// Check the cross-strategy invariants of a [`BatchLatency`] for any
    /// batch size, ragged or not.
    fn assert_latency_invariants(l: &BatchLatency) {
        assert!(l.arrays >= 1);
        // Per-image costs are intrinsic to the schedule: positive and
        // independent of B.
        assert!(l.tile_parallel_image_s > 0.0);
        assert!(l.image_parallel_image_s > 0.0);
        // Tile-parallel is strictly serial over images.
        let want_tile = l.tile_parallel_image_s * l.batch as f64;
        assert!((l.tile_parallel_batch_s - want_tile).abs() <= 1e-12 * want_tile.max(1.0));
        // Image-parallel runs ceil(B / arrays) waves of the serial time.
        let waves = (l.batch as f64 / l.arrays as f64).ceil();
        let want_img = l.image_parallel_image_s * waves;
        assert!((l.image_parallel_batch_s - want_img).abs() <= 1e-12 * want_img.max(1.0));
        // Neither strategy beats its own single-image latency at B >= 1.
        if l.batch >= 1 {
            assert!(l.tile_parallel_batch_s >= l.tile_parallel_image_s - 1e-12);
            assert!(l.image_parallel_batch_s >= l.image_parallel_image_s - 1e-12);
            assert!(l.best_throughput() > 0.0);
        } else {
            assert_eq!(l.tile_parallel_batch_s, 0.0);
            assert_eq!(l.image_parallel_batch_s, 0.0);
            // Empty batch: throughput is defined (0), not NaN.
            assert_eq!(l.best_throughput(), 0.0);
        }
        assert!(!l.best_strategy().is_empty());
    }

    #[test]
    fn empty_batch_is_well_defined() {
        let (acc, model, _) = setup();
        let res = acc.infer_batch(&model, &[]);
        assert!(res.predictions.is_empty());
        assert_eq!(res.census.matmul_macs, 0);
        assert_eq!(res.latency.batch, 0);
        assert_latency_invariants(&res.latency);
    }

    #[test]
    fn singleton_batch_matches_sequential_and_latency_model() {
        let (acc, model, images) = setup();
        let res = acc.infer_batch(&model, &images[..1]);
        let mut e = MixedEngine::new();
        assert_eq!(res.predictions, vec![model.predict(&mut e, &images[0])]);
        let l = &res.latency;
        assert_eq!(l.batch, 1);
        // One image: batch time equals image time under both strategies.
        assert_eq!(l.tile_parallel_batch_s, l.tile_parallel_image_s);
        assert_eq!(l.image_parallel_batch_s, l.image_parallel_image_s);
        assert_latency_invariants(l);
    }

    #[test]
    fn ragged_batches_keep_both_strategies_consistent() {
        // B deliberately not divisible by the array count (u280 has 30
        // arrays; the tiny batches below always leave a partial wave).
        let (acc, model, images) = setup();
        for b in [2usize, 3, 5, 7] {
            let res = acc.infer_batch(&model, &images[..b]);
            assert_eq!(res.predictions.len(), b, "B={b}");
            assert_eq!(res.latency.batch, b, "B={b}");
            assert_ne!(b % res.latency.arrays, 0, "B={b} accidentally even");
            assert_latency_invariants(&res.latency);
            // Sharding must not change the answer for any residue class.
            for (i, img) in images[..b].iter().enumerate() {
                let mut e = MixedEngine::new();
                assert_eq!(res.predictions[i], model.predict(&mut e, img), "B={b} i={i}");
            }
        }
    }

    #[test]
    fn cancelled_token_aborts_batch() {
        let (acc, model, images) = setup();
        let token = CancelToken::new();
        token.cancel();
        let err = acc
            .try_infer_batch(&model, &images[..2], &token)
            .expect_err("cancelled before any inference");
        assert_eq!(err, ArithError::Cancelled { expired: false });
    }

    #[test]
    fn mixed_batch_tracks_reference_predictions() {
        let (acc, model, images) = setup();
        let res = acc.infer_batch(&model, &images);
        let mut agree = 0;
        for (i, img) in images.iter().enumerate() {
            if res.predictions[i] == model.predict(&mut RefEngine, img) {
                agree += 1;
            }
        }
        assert!(
            agree >= images.len() - 1,
            "agreement {agree}/{}",
            images.len()
        );
    }
}
