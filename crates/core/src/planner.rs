//! The fusion planner: pattern-match the lowered operator graph into
//! fused-drain GEMMs and shared packed operands, priced by the roofline
//! model so the fuse-or-not decision per node is a cost comparison, not a
//! heuristic flag.
//!
//! Three patterns are recognised on the [`crate::graph`] IR:
//!
//! * **GEMM → GELU epilogue** — a `MatMul` whose *sole* consumer is a
//!   `Gelu` over exactly its output elements folds the activation into the
//!   GEMM drain: each output tile passes through the VPU while still hot
//!   instead of being materialised, re-read and re-scanned. When that
//!   GELU's own sole consumer is another `MatMul` taking it as the LHS,
//!   the drain re-quantizes straight into the consumer's packed
//!   block-major layout ([`FuseKind::BiasGeluRequant`]) and the f32
//!   intermediate never exists — the consumer's quantize-pack disappears.
//! * **GEMM → residual epilogue** — a `MatMul` whose sole consumer is a
//!   `Residual` folds the skip-add into the drain and saves the
//!   materialise round trip of the projection output.
//! * **Shared packed LHS** — `MatMul`s whose dependency lists are the same
//!   single `LayerNorm` node consume one packed copy of the normalized
//!   activation; a group of size `s` pays one pack instead of `s`.
//!
//! Pricing: fusing moves the epilogue's fp32 work onto the drain path of
//! the arrays running the GEMM, so it inherits the GEMM's parallelism
//! instead of its own. The planner fuses exactly when the pack/materialise
//! cycles saved outweigh any parallelism lost:
//!
//! ```text
//! fuse  ⇔  saved_pack + saved_materialise ≥ epi/min(gemm_par, A) − epi/min(epi_par, A)
//! ```
//!
//! with `A` the array count and cycle terms from [`crate::scheduler`].
//! For encoder shapes a GEMM's pass-group parallelism (`⌈m/8⌉·⌈n/16⌉`)
//! never trails its epilogue's, so the right side is ≤ 0 and every
//! matched edge fuses — but the rule is what the emitted [`FusePlan`]
//! records, and a future VPU-bound epilogue can flip it.
//!
//! The engine cannot see this module (the dependency points core →
//! transformer), so [`FusePlan::compiled_vit_plan`] distills the verdict
//! into the [`CompiledVitPlan`] switch set the
//! [`MixedEngine`](bfp_transformer::MixedEngine) executes.

use std::collections::HashMap;

use bfp_platform::System;
use bfp_transformer::CompiledVitPlan;

use crate::graph::{Graph, OpKind};
use crate::scheduler::{node_cycles, node_parallelism, quantize_pack_cycles, schedule};

/// Which fused drain a [`FuseDecision::FusedGemm`] node carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseKind {
    /// Bias + GELU applied tile-by-tile at the drain; output stays f32.
    BiasGelu,
    /// Bias + GELU at the drain, re-quantized directly into the consumer
    /// GEMM's packed block-major LHS layout (no f32 intermediate).
    BiasGeluRequant,
    /// Bias + elementwise residual add at the drain.
    BiasResidual,
}

/// The planner's verdict for one graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseDecision {
    /// Runs as lowered: own pack (for GEMMs), own pass (for fp32 ops).
    Standalone,
    /// A GEMM executing with a fused drain epilogue.
    FusedGemm(FuseKind),
    /// An fp32/residual node absorbed into the drain of GEMM `usize`
    /// (graph index); it no longer runs as its own pass.
    FusedInto(usize),
    /// A GEMM reading a packed LHS shared with group `usize`; only the
    /// group's first member pays the quantize-pack.
    SharedPack(usize),
}

/// One node of the emitted plan: the decision plus the priced cycles.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// Index into the source graph's node list.
    pub index: usize,
    /// The graph node's name (`blk3.fc1` etc.).
    pub name: String,
    /// What the planner decided.
    pub decision: FuseDecision,
    /// Array cycles of the node's own work under the plan (0 for
    /// [`FuseDecision::FusedInto`] nodes — their work is billed to the
    /// host GEMM's drain).
    pub cycles: f64,
    /// Quantize-pack cycles this node still pays for its LHS under the
    /// plan (0 when eliminated by sharing or an upstream requant drain).
    pub pack_cycles: f64,
}

/// End-to-end cycle pricing of the three schedule variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanTiming {
    /// Every GEMM packs its own LHS, every epilogue runs standalone.
    pub unfused_cycles: f64,
    /// Fused drains + shared packs eliminate their pack cycles.
    pub fused_cycles: f64,
    /// Additionally overlaps the surviving packs with GEMM compute when
    /// the system has ≥ 2 arrays to double-buffer across.
    pub double_buffered_cycles: f64,
}

/// The planner's output: per-node decisions plus aggregate pricing.
#[derive(Debug, Clone)]
pub struct FusePlan {
    /// One entry per graph node, same order as the graph.
    pub nodes: Vec<PlanNode>,
    /// GEMMs carrying a fused drain epilogue.
    pub fused_gemms: usize,
    /// fp32/residual nodes absorbed into a GEMM drain.
    pub absorbed_nodes: usize,
    /// Shared-LHS pack groups (size ≥ 2).
    pub shared_pack_groups: usize,
    /// Quantize-pack cycles every GEMM would pay unfused.
    pub total_pack_cycles: f64,
    /// Pack cycles eliminated by sharing and requantizing drains.
    pub eliminated_pack_cycles: f64,
    /// The priced schedule variants.
    pub timing: PlanTiming,
}

impl FusePlan {
    /// Look up the decision for a node by name.
    pub fn decision(&self, name: &str) -> Option<FuseDecision> {
        self.nodes
            .iter()
            .find(|n| n.name == name)
            .map(|n| n.decision)
    }

    /// Fraction of quantize-pack work the plan eliminates.
    pub fn pack_reduction(&self) -> f64 {
        if self.total_pack_cycles <= 0.0 {
            return 0.0;
        }
        self.eliminated_pack_cycles / self.total_pack_cycles
    }

    /// Distill the per-node verdict into the switch set the transformer
    /// engine executes. The mapping is structural: a residual-fused GEMM
    /// whose dependencies include a `Gelu` is the MLP contraction
    /// (`fc2`), any other is the attention output projection (`wo`).
    /// Weight prefetch engages when the platform has a second array to
    /// hide the pack behind; the engine re-gates it on host threads.
    pub fn compiled_vit_plan(&self, g: &Graph, sys: &System) -> CompiledVitPlan {
        let mut plan = CompiledVitPlan::unfused();
        plan.prefetch_weights = sys.cfg.total_arrays() >= 2;
        for n in &self.nodes {
            match n.decision {
                FuseDecision::SharedPack(_) => plan.fuse_qkv = true,
                FuseDecision::FusedGemm(FuseKind::BiasGelu)
                | FuseDecision::FusedGemm(FuseKind::BiasGeluRequant) => {
                    plan.fuse_fc1_gelu = true;
                }
                FuseDecision::FusedGemm(FuseKind::BiasResidual) => {
                    let feeds_on_gelu = g.nodes[n.index]
                        .deps
                        .iter()
                        .any(|&d| matches!(g.nodes[d].kind, OpKind::Gelu { .. }));
                    if feeds_on_gelu {
                        plan.fuse_fc2_residual = true;
                    } else {
                        plan.fuse_wo_residual = true;
                    }
                }
                _ => {}
            }
        }
        plan
    }
}

/// One streaming pass over `elems` f32 values through the 64-lane pack
/// datapath: the cost of materialising (or re-reading) an intermediate a
/// fused drain keeps on chip.
fn materialize_cycles(elems: usize) -> f64 {
    elems as f64 / 64.0
}

/// Pattern-match `g` and price every fuse candidate against `sys`.
pub fn plan_fusion(g: &Graph, sys: &System) -> FusePlan {
    let arrays = sys.cfg.total_arrays().max(1);
    let mem = &sys.mem;

    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
    for (i, n) in g.nodes.iter().enumerate() {
        for &d in &n.deps {
            consumers[d].push(i);
        }
    }

    let mut decisions = vec![FuseDecision::Standalone; g.nodes.len()];
    // GEMM indices whose LHS pack an upstream requant drain eliminates.
    let mut requant_fed = vec![false; g.nodes.len()];

    // Pass 1: drain epilogues (GEMM → sole-consumer Gelu / Residual).
    for (i, node) in g.nodes.iter().enumerate() {
        let OpKind::MatMul { m, n, .. } = node.kind else {
            continue;
        };
        let [c] = consumers[i][..] else { continue };
        let epi = &g.nodes[c].kind;
        let matches_shape = match *epi {
            OpKind::Gelu { elems } | OpKind::Residual { elems } => elems == m * n,
            _ => false,
        };
        if !matches_shape {
            continue;
        }

        // Roofline pricing: the fused drain inherits the GEMM's array
        // spread; standalone, the epilogue gets its own.
        let epi_cycles = node_cycles(epi, mem);
        let gemm_par = node_parallelism(&node.kind).min(arrays).max(1) as f64;
        let epi_par = node_parallelism(epi).min(arrays).max(1) as f64;
        let parallelism_loss = (epi_cycles / gemm_par - epi_cycles / epi_par).max(0.0);

        // A requant drain additionally kills the consumer GEMM's pack.
        let requant_target = match *epi {
            OpKind::Gelu { .. } => match consumers[c][..] {
                [cc] => match g.nodes[cc].kind {
                    OpKind::MatMul { m: m2, k: k2, .. } if m2 == m && k2 == n => Some(cc),
                    _ => None,
                },
                _ => None,
            },
            _ => None,
        };
        let saved = materialize_cycles(m * n)
            + requant_target.map_or(0.0, |cc| {
                let OpKind::MatMul { m: m2, k: k2, .. } = g.nodes[cc].kind else {
                    unreachable!("requant target is a MatMul");
                };
                quantize_pack_cycles(m2, k2)
            });
        if saved < parallelism_loss {
            continue;
        }

        let kind = match *epi {
            OpKind::Residual { .. } => FuseKind::BiasResidual,
            OpKind::Gelu { .. } if requant_target.is_some() => FuseKind::BiasGeluRequant,
            OpKind::Gelu { .. } => FuseKind::BiasGelu,
            _ => unreachable!("shape-matched epilogue"),
        };
        decisions[i] = FuseDecision::FusedGemm(kind);
        decisions[c] = FuseDecision::FusedInto(i);
        if let Some(cc) = requant_target {
            requant_fed[cc] = true;
        }
    }

    // Pass 2: shared packed LHS — GEMMs whose dependency list is the same
    // single LayerNorm node read one packed activation.
    let mut by_source: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, node) in g.nodes.iter().enumerate() {
        if !matches!(node.kind, OpKind::MatMul { .. }) {
            continue;
        }
        if let [d] = node.deps[..] {
            if matches!(g.nodes[d].kind, OpKind::LayerNorm { .. }) {
                by_source.entry(d).or_default().push(i);
            }
        }
    }
    let mut groups: Vec<(usize, Vec<usize>)> = by_source
        .into_iter()
        .filter(|(_, members)| members.len() >= 2)
        .collect();
    groups.sort_by_key(|(src, _)| *src);
    let mut shared_pack_groups = 0;
    for (gi, (_, members)) in groups.iter().enumerate() {
        // Sharing requires one identical LHS shape across the group.
        let shapes: Vec<(usize, usize)> = members
            .iter()
            .map(|&i| match g.nodes[i].kind {
                OpKind::MatMul { m, k, .. } => (m, k),
                _ => unreachable!("group members are MatMuls"),
            })
            .collect();
        if shapes.windows(2).any(|w| w[0] != w[1]) {
            continue;
        }
        shared_pack_groups += 1;
        for &i in members {
            if decisions[i] == FuseDecision::Standalone {
                decisions[i] = FuseDecision::SharedPack(gi);
            }
        }
    }

    // Per-node pack accounting and aggregates.
    let mut seen_group: HashMap<usize, ()> = HashMap::new();
    let mut total_pack = 0.0;
    let mut eliminated = 0.0;
    let mut fused_gemms = 0;
    let mut absorbed = 0;
    let mut nodes = Vec::with_capacity(g.nodes.len());
    for (i, node) in g.nodes.iter().enumerate() {
        let decision = decisions[i];
        let own_pack = match node.kind {
            OpKind::MatMul { m, k, .. } => quantize_pack_cycles(m, k),
            _ => 0.0,
        };
        total_pack += own_pack;
        let pack_cycles = match decision {
            FuseDecision::SharedPack(gid) if seen_group.insert(gid, ()).is_some() => 0.0,
            _ if requant_fed[i] => 0.0,
            _ => own_pack,
        };
        eliminated += own_pack - pack_cycles;
        let cycles = match decision {
            FuseDecision::FusedInto(_) => {
                absorbed += 1;
                0.0
            }
            FuseDecision::FusedGemm(_) => {
                fused_gemms += 1;
                node_cycles(&node.kind, mem)
            }
            _ => node_cycles(&node.kind, mem),
        };
        nodes.push(PlanNode {
            index: i,
            name: node.name.clone(),
            decision,
            cycles,
            pack_cycles,
        });
    }

    // Price the three schedule variants. The base makespan already covers
    // the array-side work; packing is host/DMA-side and adds serially
    // unless double-buffered behind GEMM compute.
    let base = schedule(g, sys);
    let remaining = total_pack - eliminated;
    let hidden = if arrays >= 2 {
        remaining.min(base.bfp_cycles)
    } else {
        0.0
    };
    let timing = PlanTiming {
        unfused_cycles: base.makespan_cycles + total_pack,
        fused_cycles: base.makespan_cycles + remaining,
        double_buffered_cycles: base.makespan_cycles + remaining - hidden,
    };

    FusePlan {
        nodes,
        fused_gemms,
        absorbed_nodes: absorbed,
        shared_pack_groups,
        total_pack_cycles: total_pack,
        eliminated_pack_cycles: eliminated,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{lower_vit, OpNode};
    use bfp_transformer::VitConfig;

    fn deit_plan() -> (Graph, FusePlan) {
        let g = lower_vit(&VitConfig::deit_small());
        let p = plan_fusion(&g, &System::paper());
        (g, p)
    }

    #[test]
    fn deit_fuses_the_mlp_and_residual_chains() {
        let (g, p) = deit_plan();
        assert_eq!(
            p.decision("blk0.fc1"),
            Some(FuseDecision::FusedGemm(FuseKind::BiasGeluRequant)),
            "fc1 drain re-quantizes into fc2's packed LHS"
        );
        let fc1 = g.nodes.iter().position(|n| n.name == "blk0.fc1").unwrap();
        assert_eq!(p.decision("blk0.gelu"), Some(FuseDecision::FusedInto(fc1)));
        assert_eq!(
            p.decision("blk0.wo"),
            Some(FuseDecision::FusedGemm(FuseKind::BiasResidual))
        );
        assert_eq!(
            p.decision("blk0.fc2"),
            Some(FuseDecision::FusedGemm(FuseKind::BiasResidual))
        );
        // q/k/v share one packed post-LN1 activation.
        let wq = p.decision("blk0.wq").unwrap();
        assert!(matches!(wq, FuseDecision::SharedPack(_)));
        assert_eq!(p.decision("blk0.wk"), Some(wq));
        assert_eq!(p.decision("blk0.wv"), Some(wq));
        // Attention score/context GEMMs stay composed (multi-consumer or
        // softmax-fed — no matched pattern).
        assert_eq!(
            p.decision("blk0.h0.scores"),
            Some(FuseDecision::Standalone)
        );
        assert_eq!(p.decision("blk0.h0.ctx"), Some(FuseDecision::Standalone));
        assert_eq!(p.decision("blk0.ln1"), Some(FuseDecision::Standalone));
    }

    #[test]
    fn fused_gemm_count_matches_the_engine_plan() {
        let cfg = VitConfig::deit_small();
        let (_, p) = deit_plan();
        // Per block: 3 shared-pack projections + wo + fc1 + fc2 = the six
        // fused GEMMs the engine's CompiledVitPlan::fuse_all promises.
        let not_standalone = p
            .nodes
            .iter()
            .filter(|n| {
                matches!(
                    n.decision,
                    FuseDecision::FusedGemm(_) | FuseDecision::SharedPack(_)
                )
            })
            .count();
        let want = CompiledVitPlan::fuse_all().fused_gemms_per_block() as usize * cfg.depth;
        assert_eq!(not_standalone, want);
        assert_eq!(p.fused_gemms, 3 * cfg.depth);
        assert_eq!(p.absorbed_nodes, 3 * cfg.depth, "gelu + res1 + res2");
        assert_eq!(p.shared_pack_groups, cfg.depth);
    }

    #[test]
    fn timing_is_monotone_and_pack_reduction_clears_the_bar() {
        let (_, p) = deit_plan();
        let t = p.timing;
        assert!(t.double_buffered_cycles <= t.fused_cycles);
        assert!(t.fused_cycles < t.unfused_cycles);
        assert!(t.double_buffered_cycles > 0.0);
        assert!(p.eliminated_pack_cycles > 0.0);
        // Shared q/k/v packs (2 of 3) plus fc2's requant-fed LHS remove
        // over 40% of all quantize-pack work.
        assert!(
            p.pack_reduction() >= 0.40,
            "pack reduction {:.3}",
            p.pack_reduction()
        );
        assert!(p.pack_reduction() < 1.0);
    }

    #[test]
    fn bridged_plan_is_fuse_all_for_deit() {
        let g = lower_vit(&VitConfig::deit_small());
        let sys = System::paper();
        let p = plan_fusion(&g, &sys);
        assert_eq!(p.compiled_vit_plan(&g, &sys), CompiledVitPlan::fuse_all());
    }

    #[test]
    fn unmatched_graphs_fuse_nothing() {
        // A lone GEMM and a GEMM feeding a wrong-sized GELU: no pattern.
        let g = Graph {
            nodes: vec![
                OpNode {
                    name: "a".into(),
                    kind: OpKind::MatMul { m: 64, k: 64, n: 64 },
                    deps: vec![],
                },
                OpNode {
                    name: "g".into(),
                    kind: OpKind::Gelu { elems: 7 },
                    deps: vec![0],
                },
            ],
        };
        let sys = System::paper();
        let p = plan_fusion(&g, &sys);
        assert!(p
            .nodes
            .iter()
            .all(|n| n.decision == FuseDecision::Standalone));
        assert_eq!(p.eliminated_pack_cycles, 0.0);
        assert_eq!(p.timing.fused_cycles, p.timing.unfused_cycles);
        let bridged = p.compiled_vit_plan(&g, &sys);
        assert!(!bridged.fuse_qkv && !bridged.fuse_fc1_gelu);
        assert!(!bridged.fuse_wo_residual && !bridged.fuse_fc2_residual);
    }

    #[test]
    fn multi_consumer_gelu_blocks_requant_but_not_fusion() {
        // GEMM → GELU whose output fans out to two consumers: the GELU
        // still fuses into the drain (sole consumer of the GEMM), but the
        // drain cannot requant into a single consumer's layout.
        let g = Graph {
            nodes: vec![
                OpNode {
                    name: "mm".into(),
                    kind: OpKind::MatMul {
                        m: 16,
                        k: 32,
                        n: 24,
                    },
                    deps: vec![],
                },
                OpNode {
                    name: "act".into(),
                    kind: OpKind::Gelu { elems: 16 * 24 },
                    deps: vec![0],
                },
                OpNode {
                    name: "left".into(),
                    kind: OpKind::MatMul {
                        m: 16,
                        k: 24,
                        n: 8,
                    },
                    deps: vec![1],
                },
                OpNode {
                    name: "right".into(),
                    kind: OpKind::Residual { elems: 16 * 8 },
                    deps: vec![1, 2],
                },
            ],
        };
        let p = plan_fusion(&g, &System::paper());
        assert_eq!(
            p.decision("mm"),
            Some(FuseDecision::FusedGemm(FuseKind::BiasGelu))
        );
        assert_eq!(p.decision("act"), Some(FuseDecision::FusedInto(0)));
        // "left" still pays its own pack.
        let left = p.nodes.iter().find(|n| n.name == "left").unwrap();
        assert!(left.pack_cycles > 0.0);
    }

    #[test]
    fn planner_decisions_match_live_engine_fusion_telemetry() {
        // Satellite cross-check: run the engine under the bridged plan and
        // reconcile its fusion counters and per-node spans against the
        // planner's emitted FusePlan.
        use bfp_transformer::{MixedEngine, VitModel};

        let cfg = VitConfig::tiny_test();
        let g = lower_vit(&cfg);
        let sys = System::paper();
        let plan = plan_fusion(&g, &sys);
        let compiled = plan.compiled_vit_plan(&g, &sys);
        assert_eq!(compiled, CompiledVitPlan::fuse_all());

        let model = VitModel::new_random(cfg, 11);
        let x = model.synthetic_input(3);
        let mut e = MixedEngine::new().with_vit_plan(compiled);

        #[cfg(feature = "telemetry")]
        let (tracer, reg) = {
            let reg = bfp_telemetry::Registry::new();
            let tracer = bfp_telemetry::Tracer::new();
            e.attach_telemetry(tracer.clone(), &reg);
            (tracer, reg)
        };

        let _ = model.forward(&mut e, &x);
        let (hits, misses) = e.fusion_stats();

        // Engine fusion hits = planner GEMMs that are not Standalone
        // (fused drains + shared-pack projections with fused bias).
        let planned_fused = plan
            .nodes
            .iter()
            .filter(|n| {
                matches!(
                    n.decision,
                    FuseDecision::FusedGemm(_) | FuseDecision::SharedPack(_)
                )
            })
            .count() as u64;
        assert_eq!(hits, planned_fused);
        // Engine misses = the GEMMs the planner left Standalone
        // (per-head scores/context).
        let planned_composed = plan
            .nodes
            .iter()
            .filter(|n| {
                n.decision == FuseDecision::Standalone
                    && matches!(g.nodes[n.index].kind, OpKind::MatMul { .. })
            })
            .count() as u64;
        assert_eq!(misses, planned_composed);

        #[cfg(feature = "telemetry")]
        {
            assert_eq!(reg.counter("engine_fusion_hits_total").get(), hits);
            // One plan.node.* span per graph node that still runs its own
            // pass — absorbed epilogues ride inside their GEMM's span.
            let spans = tracer
                .drain()
                .iter()
                .filter(|ev| ev.name.starts_with("plan.node."))
                .count();
            let own_pass = plan
                .nodes
                .iter()
                .filter(|n| {
                    !matches!(n.decision, FuseDecision::FusedInto(_))
                        && !matches!(g.nodes[n.index].kind, OpKind::Residual { .. })
                })
                .count();
            assert_eq!(spans, own_pass);
        }
    }
}
