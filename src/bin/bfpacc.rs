//! `bfpacc` — command-line driver for the modelled accelerator.
//!
//! ```text
//! bfpacc gemm <M> <K> <N>          run an MxKxN bfp8 GEMM on the card
//! bfpacc infer <tiny|small|base>   Table-IV style report for a DeiT model
//! bfpacc sweep                     measured-vs-theoretical throughput (Fig. 7)
//! bfpacc trace                     cycle trace of one systolic pass
//! bfpacc info                      system configuration and resources
//! ```

use bfp_core::{fmt_si, Accelerator, LatencyModel, Table};
use bfp_platform::{System, U280};
use bfp_pu::trace::trace_pass;
use bfp_transformer::{analytical_census, VitConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "gemm" => gemm(&args[1..]),
        "infer" => infer(&args[1..]),
        "sweep" => sweep(),
        "trace" => trace(),
        "info" => info(),
        _ => help(),
    }
}

fn help() {
    println!(
        "bfpacc — bfp8/fp32 multi-mode accelerator (modelled Alveo U280)\n\n\
         USAGE:\n  bfpacc gemm <M> <K> <N>          run an MxKxN bfp8 GEMM\n  \
         bfpacc infer <tiny|small|base>   DeiT workload/latency report\n  \
         bfpacc sweep                     Fig. 7 throughput sweeps\n  \
         bfpacc trace                     systolic cycle trace\n  \
         bfpacc info                      system configuration"
    );
}

fn parse_dim(s: Option<&String>, name: &str) -> usize {
    s.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: missing or invalid <{name}>; see `bfpacc help`");
        std::process::exit(2);
    })
}

fn gemm(args: &[String]) {
    use bfp_arith::matrix::MatF32;
    use bfp_arith::stats::ErrorStats;
    let m = parse_dim(args.first(), "M");
    let k = parse_dim(args.get(1), "K");
    let n = parse_dim(args.get(2), "N");
    let a = MatF32::from_fn(m, k, |i, j| {
        ((i as f32 * 0.13 + j as f32 * 0.29).sin()) * 1.5
    });
    let b = MatF32::from_fn(k, n, |i, j| {
        ((i as f32 * 0.17 - j as f32 * 0.11).cos()) * 0.8
    });
    let acc = Accelerator::u280();
    let start = std::time::Instant::now();
    let (out, report) = acc.gemm(&a, &b);
    let wall = start.elapsed().as_secs_f64();
    let mut fidelity = ErrorStats::new();
    fidelity.push_slices(out.data(), a.matmul(&b).data());
    println!("bfp8 GEMM {m}x{k}x{n} on 30 simulated arrays");
    println!("  simulation wall time : {wall:.3} s");
    println!("  modelled device time : {:.3} us", report.seconds * 1e6);
    println!("  modelled throughput  : {:.1} GOPS", report.gops());
    println!("  fidelity vs f32      : {fidelity}");
}

fn infer(args: &[String]) {
    let cfg = match args.first().map(String::as_str) {
        Some("tiny") => VitConfig::deit_tiny(),
        Some("base") => VitConfig::deit_base(),
        _ => VitConfig::deit_small(),
    };
    println!(
        "DeiT (dim {}, depth {}, heads {}, seq {}) — analytical Table IV report\n",
        cfg.dim, cfg.depth, cfg.heads, cfg.seq
    );
    let census = analytical_census(&cfg);
    let b = LatencyModel::paper().breakdown(&census);
    let mut t = Table::new(
        "",
        &["Partition", "OPs/FLOPs", "Ops %", "Latency ms", "Lat %"],
    );
    for (i, row) in b.rows.iter().enumerate() {
        t.row(&[
            row.name.to_string(),
            fmt_si(row.ops),
            format!("{:.3}", b.ops_percent(i)),
            format!("{:.3}", row.latency_s * 1e3),
            format!("{:.3}", b.latency_percent(i)),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nfp32: {:.2}% of ops, {:.2}% of latency; host ops {}; total {:.3} ms",
        b.fp32_ops_percent(),
        b.fp32_latency_percent(),
        fmt_si(b.host_ops),
        b.total_latency_s() * 1e3
    );
}

fn sweep() {
    let sys = System::paper();
    println!("bfp8 MatMul (GOPS, 30 arrays):");
    for nx in [8usize, 16, 32, 64] {
        println!(
            "  N_X={nx:>3}: theoretical {:>7.1}, measured {:>7.1}",
            sys.theoretical_bfp_gops(nx),
            sys.measured_bfp_gops(nx)
        );
    }
    println!("fp32 ops (GFLOPS):");
    for l in [8usize, 32, 128] {
        println!(
            "  L={l:>4}: theoretical {:>6.2}, measured {:>6.2}",
            sys.theoretical_fp32_gflops(l),
            sys.measured_fp32_gflops(l)
        );
    }
}

fn trace() {
    use bfp_arith::bfp::BfpBlock;
    let x = BfpBlock {
        exp: 0,
        man: [[1; 8]; 8],
    };
    let t = trace_pass(&x, &x, &[x]);
    print!("{}", t.render());
}

fn info() {
    let sys = System::paper();
    println!(
        "Modelled platform: AMD Alveo U280 @ {:.0} MHz",
        sys.freq_hz / 1e6
    );
    println!(
        "  processing units : {} x {} arrays = {} arrays",
        sys.cfg.units,
        sys.cfg.arrays_per_unit,
        sys.cfg.total_arrays()
    );
    println!(
        "  device           : {} LUT, {} FF, {} BRAM18, {} DSP",
        U280::LUT,
        U280::FF,
        U280::BRAM18,
        U280::DSP
    );
    println!("  design usage     : {}", sys.resources());
    println!(
        "  headline         : {:.1} GOPS bfp8 measured, {:.2} GFLOPS fp32 theoretical",
        sys.measured_bfp_gops(64),
        sys.theoretical_fp32_gflops(128)
    );
}
