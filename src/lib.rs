//! # bfp-repro — workspace facade
//!
//! Umbrella crate for the reproduction of *"A Case for Low Bitwidth
//! Floating Point Arithmetic on FPGA for Transformer Based DNN Inference"*
//! (IPDPS-W 2024). Re-exports every member crate so the examples and
//! integration tests (and downstream experiments) can reach the whole
//! system through one dependency.
//!
//! See `README.md` for the tour and `DESIGN.md`/`EXPERIMENTS.md` for the
//! reproduction methodology and results.

pub use bfp_arith as arith;
pub use bfp_core as core_api;
pub use bfp_dsp48 as dsp48;
pub use bfp_platform as platform;
pub use bfp_pu as pu;
pub use bfp_transformer as transformer;

/// The paper's headline configuration in one call: a modelled U280 with 15
/// dual-array units at 300 MHz.
pub fn accelerator() -> bfp_core::Accelerator {
    bfp_core::Accelerator::u280()
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_builds_the_paper_system() {
        let acc = super::accelerator();
        assert_eq!(acc.system().cfg.total_arrays(), 30);
        assert_eq!(acc.system().freq_hz, 300.0e6);
    }
}
